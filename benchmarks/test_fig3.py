"""Figure 3 -- full-block-scan time CDFs for 1-4 observers."""

from repro.experiments import fig3

from conftest import assert_shapes, run_once


def test_fig3(benchmark):
    result = run_once(benchmark, fig3.run, n_blocks=150, seed=26)
    assert_shapes(result, fig3.format_report(result))
