"""S2.6 future work -- workplace-vs-home network classification."""

from repro.experiments import network_types

from conftest import assert_shapes, run_once


def test_network_types(benchmark):
    result = run_once(benchmark, network_types.run)
    assert_shapes(result, network_types.format_report(result))
