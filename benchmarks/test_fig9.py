"""Figure 9 -- Wuhan and Beijing gridcell trends (S4.2).

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig9

from conftest import assert_shapes, run_once


def test_fig9(benchmark, covid):
    result = run_once(benchmark, fig9.run, covid)
    assert_shapes(result, fig9.format_report(result))
