"""S3.2.3 -- under-probed block selection and additional probing."""

from repro.experiments import additional_probing

from conftest import assert_shapes, run_once


def test_additional_probing(benchmark):
    result = run_once(benchmark, additional_probing.run, n_blocks=130, seed=30)
    assert_shapes(result, additional_probing.format_report(result))
