"""Appendix E -- Indiana University spring break detection."""

from repro.experiments import appendix_e

from conftest import assert_shapes, run_once


def test_appendix_e(benchmark):
    result = run_once(benchmark, appendix_e.run)
    assert_shapes(result, appendix_e.format_report(result))
