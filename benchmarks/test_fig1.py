"""Figure 1 -- the USC example block end to end."""

from repro.experiments import fig1

from conftest import assert_shapes, run_once


def test_fig1(benchmark):
    result = run_once(benchmark, fig1.run)
    assert_shapes(result, fig1.format_report(result))
