"""S3.3 ablation -- the classification funnel without/with 1-loss repair."""

from repro.experiments import ablation_repair

from conftest import assert_shapes, run_once


def test_ablation_repair(benchmark):
    result = run_once(benchmark, ablation_repair.run)
    assert_shapes(result, ablation_repair.format_report(result))
