"""Shared fixtures for the paper-reproduction benchmarks.

The geographic experiments (Tables 4, Figures 7-10, 12-14, §3.7) share
one expensive analysis campaign per scenario; it is built once per
session here so each benchmark measures its own analysis step, not the
shared simulation.

Scale: REPRO_SCALE controls the simulated world size (default 1600
routed blocks ~ 1/3000 of the paper's 5.2M).  Reduce it for quicker,
noisier runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import control_campaign, covid_campaign


def run_once(benchmark, func, *args, **kwargs):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def assert_shapes(result, report: str) -> None:
    """Print the experiment report and fail on any unmet shape check."""
    print()
    print(report)
    failed = [name for name, ok in result.shape_checks().items() if not ok]
    assert not failed, f"shape checks failed: {failed}"


@pytest.fixture(scope="session")
def covid():
    """The 2020h1 campaign (baseline 2020m1-ejnw, detection 2020h1-ejnw)."""
    return covid_campaign()


@pytest.fixture(scope="session")
def control():
    """The 2023q1 control campaign."""
    return control_campaign()
