"""Table 3 -- reconstruction validation against survey ground truth."""

from repro.experiments import table3

from conftest import assert_shapes, run_once


def test_table3(benchmark):
    result = run_once(benchmark, table3.run, n_blocks=170, seed=22)
    assert_shapes(result, table3.format_report(result))
