"""Figure 7 -- change-sensitive blocks by gridcell and continent.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig7

from conftest import assert_shapes, run_once


def test_fig7(benchmark, covid):
    result = run_once(benchmark, fig7.run, covid)
    assert_shapes(result, fig7.format_report(result))
