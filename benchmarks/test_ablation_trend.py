"""S2.5 ablation -- STL vs naive decomposition under outliers."""

from repro.experiments import ablation_trend

from conftest import assert_shapes, run_once


def test_ablation_trend(benchmark):
    result = run_once(benchmark, ablation_trend.run)
    assert_shapes(result, ablation_trend.format_report(result))
