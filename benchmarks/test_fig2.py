"""Figure 2 -- the toy reconstruction table."""

from repro.experiments import fig2

from conftest import assert_shapes, run_once


def test_fig2(benchmark):
    result = run_once(benchmark, fig2.run)
    assert_shapes(result, fig2.format_report(result))
