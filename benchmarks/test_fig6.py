"""Figure 6 -- 1-loss repair of a congested observer."""

from repro.experiments import fig6

from conftest import assert_shapes, run_once


def test_fig6(benchmark):
    result = run_once(benchmark, fig6.run)
    assert_shapes(result, fig6.format_report(result))
