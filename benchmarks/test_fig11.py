"""Figure 11 (B.1) -- representative lockdown and renumbering blocks."""

from repro.experiments import fig11

from conftest import assert_shapes, run_once


def test_fig11(benchmark):
    result = run_once(benchmark, fig11.run)
    assert_shapes(result, fig11.format_report(result))
