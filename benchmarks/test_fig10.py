"""Figure 10 -- the New Delhi gridcell, riots and curfew (S4.3).

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig10

from conftest import assert_shapes, run_once


def test_fig10(benchmark, covid):
    result = run_once(benchmark, fig10.run, covid)
    assert_shapes(result, fig10.format_report(result))
