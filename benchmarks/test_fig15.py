"""Figure 15 (B.2) -- the migrated VPN block."""

from repro.experiments import fig15

from conftest import assert_shapes, run_once


def test_fig15(benchmark):
    result = run_once(benchmark, fig15.run)
    assert_shapes(result, fig15.format_report(result))
