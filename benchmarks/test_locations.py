"""S3.7 -- location validation at the UAE and Slovenia gridcells.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import locations

from conftest import assert_shapes, run_once


def test_locations(benchmark, covid):
    result = run_once(benchmark, locations.run, covid)
    assert_shapes(result, locations.format_report(result))
