"""Figure 8 -- daily downward fractions per continent, 2020h1.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig8

from conftest import assert_shapes, run_once


def test_fig8(benchmark, covid):
    result = run_once(benchmark, fig8.run, covid)
    assert_shapes(result, fig8.format_report(result))
