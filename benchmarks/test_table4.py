"""Table 4 -- geographic coverage of change detection.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import table4

from conftest import assert_shapes, run_once


def test_table4(benchmark, covid):
    result = run_once(benchmark, table4.run, covid)
    assert_shapes(result, table4.format_report(result))
