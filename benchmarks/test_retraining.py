"""S3.4 ongoing work -- quarterly target-list retraining."""

from repro.experiments import retraining

from conftest import assert_shapes, run_once


def test_retraining(benchmark):
    result = run_once(benchmark, retraining.run)
    assert_shapes(result, retraining.format_report(result))
