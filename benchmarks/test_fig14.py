"""Figure 14 (Appendix D) -- coverage vs gridcell thresholds.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig14

from conftest import assert_shapes, run_once


def test_fig14(benchmark, covid):
    result = run_once(benchmark, fig14.run, covid)
    assert_shapes(result, fig14.format_report(result))
