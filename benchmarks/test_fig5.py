"""Figure 5 -- reconstruction failures by scan time x size."""

from repro.experiments import fig5

from conftest import assert_shapes, run_once


def test_fig5(benchmark):
    result = run_once(benchmark, fig5.run, seed=28)
    assert_shapes(result, fig5.format_report(result))
