"""Figure 4 -- reconstruction vs ground truth correlations."""

from repro.experiments import fig4

from conftest import assert_shapes, run_once


def test_fig4(benchmark):
    result = run_once(benchmark, fig4.run)
    assert_shapes(result, fig4.format_report(result))
