"""Table 5 -- sampled-block precision/recall against WFH dates."""

from repro.experiments import table5

from conftest import assert_shapes, run_once


def test_table5(benchmark):
    result = run_once(benchmark, table5.run, n_blocks=260, seed=25)
    assert_shapes(result, table5.format_report(result))
