"""Table 2 -- the block-filtering funnel across seven dataset windows."""

from repro.experiments import table2

from conftest import assert_shapes, run_once


def test_table2(benchmark):
    result = run_once(benchmark, table2.run, n_blocks=150, seed=21)
    assert_shapes(result, table2.format_report(result))
