"""Figures 12/13 (B.3-B.4) -- the 2023q1 control quarter.

Shares the session-scoped analysis campaign; the benchmark measures the
experiment's own aggregation step.
"""

from repro.experiments import fig12_13

from conftest import assert_shapes, run_once


def test_fig12_13(benchmark, control):
    result = run_once(benchmark, fig12_13.run, control)
    assert_shapes(result, fig12_13.format_report(result))
