"""Component micro-benchmarks: throughput of the pipeline's hot paths.

Unlike the experiment benchmarks (single deterministic runs that
regenerate paper tables), these measure the per-call cost of the core
algorithms over realistic quarter-length inputs, plus the campaign
engine's serial vs. parallel throughput over a whole world (with the
per-stage timing breakdown printed for both).

The measurement cores and fixtures live in :mod:`repro.bench` so that
``repro bench`` (the trajectory recorder) and these artifact tests time
exactly the same code; here they only refresh the *latest* sections of
``BENCH_kernels.json`` via :func:`repro.bench.merge_latest_section` —
trajectory history records are appended solely by explicit ``repro
bench`` invocations.
"""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.bench import (
    BENCH_FILE,
    measure_batched_kernels,
    measure_cusum_scaling,
    measure_kernels,
    merge_latest_section,
    count_matrix_fixture,
    quarter_block_fixture,
)
from repro.core.reconstruction import full_scan_durations, reconstruct
from repro.core.repair import one_loss_repair
from repro.core.trend import TrendExtractor
from repro.datasets.builder import DatasetBuilder
from repro.experiments.common import bench_scale
from repro.net.prober import TrinocularObserver
from repro.net.world import WorldModel, scenario_covid2020
from repro.runtime import AnalysisCache, CampaignEngine, ParallelExecutor, SerialExecutor
from repro.timeseries.detect import detect_cusum, detect_cusum_reference
from repro.timeseries.stl import stl_decompose

ENGINE_DATASET = "2020it89-match-ejnw"  # two weeks, four observers


@pytest.fixture(scope="module")
def quarter_block():
    return quarter_block_fixture()


def test_prober_quarter(benchmark, quarter_block):
    """Adaptive probing of one block for a quarter (the simulation's hot loop)."""
    truth, order, _ = quarter_block

    def probe():
        return TrinocularObserver("e").observe(
            truth, order, rng=np.random.default_rng(1)
        )

    log = benchmark(probe)
    assert len(log) > 10_000


def test_reconstruction_quarter(benchmark, quarter_block):
    """Hold-last-state reconstruction over a quarter of probes."""
    truth, _, log = quarter_block
    recon = benchmark(reconstruct, log, truth.addresses, truth.col_times)
    assert recon.is_complete


def test_one_loss_repair_quarter(benchmark, quarter_block):
    """1-loss repair over a quarter of probes."""
    _, _, log = quarter_block
    repaired = benchmark(one_loss_repair, log)
    assert len(repaired) == len(log)


def test_stl_quarter_hourly(benchmark):
    """STL decomposition of a quarter-length hourly series."""
    rng = np.random.default_rng(2)
    n = 24 * 84
    t = np.arange(n)
    y = 12 + 5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.5, n)
    result = benchmark(stl_decompose, y, 24)
    assert np.isfinite(result.trend).all()


def test_cusum_quarter_hourly(benchmark):
    """CUSUM over a quarter-length hourly trend."""
    rng = np.random.default_rng(3)
    y = np.concatenate([np.zeros(1000), np.full(1016, -3.0)]) + rng.normal(0, 0.1, 2016)
    result = benchmark(detect_cusum, y, 1.0, 0.0055)
    assert len(result.downward) >= 1


def test_trend_extraction_quarter(benchmark, quarter_block):
    """Full trend extraction (resample + interpolate + robust STL)."""
    truth, _, log = quarter_block
    recon = reconstruct(log, truth.addresses, truth.col_times)
    result = benchmark(TrendExtractor().extract, recon.counts)
    assert np.isfinite(result.trend.values).all()


# ---------------------------------------------------------------------------
# vectorized kernels vs their scalar reference oracles
# ---------------------------------------------------------------------------
def test_prober_quarter_reference(benchmark, quarter_block):
    """The scalar-loop oracle, for comparison with test_prober_quarter."""
    truth, order, _ = quarter_block

    def probe():
        return TrinocularObserver("e").observe_reference(
            truth, order, rng=np.random.default_rng(1)
        )

    log = benchmark(probe)
    assert len(log) > 10_000


def test_full_scan_quarter(benchmark, quarter_block):
    """Vectorized Figure 3 statistic over a quarter of probes."""
    truth, _, log = quarter_block
    durations = benchmark(full_scan_durations, log, truth.addresses)
    assert durations.size > 0


def test_full_scan_quarter_reference(benchmark, quarter_block):
    """The occurrence-dict oracle, for comparison with test_full_scan_quarter."""
    from repro.core.reconstruction import full_scan_durations_reference

    truth, _, log = quarter_block
    durations = benchmark(full_scan_durations_reference, log, truth.addresses)
    assert durations.size > 0


def test_cusum_quarter_hourly_reference(benchmark):
    """The scalar-recursion oracle, same input as test_cusum_quarter_hourly."""
    rng = np.random.default_rng(3)
    y = np.concatenate([np.zeros(1000), np.full(1016, -3.0)]) + rng.normal(0, 0.1, 2016)
    result = benchmark(detect_cusum_reference, y, 1.0, 0.0055)
    assert len(result.downward) >= 1


def test_kernel_speedups_artifact(quarter_block):
    """Record vectorized-vs-reference speedups in BENCH_kernels.json.

    The artifact is the acceptance record (CI uploads it); the assertion
    bound is looser than the >=3x the quarter fixture shows on idle
    hardware so noisy shared runners don't flake.
    """
    kernels = measure_kernels(quarter_block)
    merge_latest_section(BENCH_FILE, "kernels", kernels)
    print()
    for name, stats in kernels.items():
        print(
            f"  {name}: {stats['reference_s'] * 1e3:.1f}ms -> "
            f"{stats['vectorized_s'] * 1e3:.1f}ms ({stats['speedup']:.1f}x)"
        )
    assert kernels["prober"]["speedup"] > 1.5
    assert kernels["full_scan_durations"]["speedup"] > 1.5
    assert kernels["cusum"]["speedup"] > 1.5


# ---------------------------------------------------------------------------
# batched columnar kernels vs per-block scalar loops
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def count_matrix():
    """256 plausible two-week count series sharing one round grid."""
    return count_matrix_fixture()


def test_batched_speedups_artifact(count_matrix):
    """Record batched-vs-scalar speedups in BENCH_kernels.json.

    The trend stage carries the acceptance bound: the batched kernel
    must clear 3x over the per-block loop at the 256-block batch.
    """
    batched = measure_batched_kernels(count_matrix)
    merge_latest_section(BENCH_FILE, "batched", batched)
    print()
    for name, stats in batched.items():
        print(
            f"  {name}: {stats['scalar_s'] * 1e3:.1f}ms -> "
            f"{stats['batched_s'] * 1e3:.1f}ms ({stats['speedup']:.1f}x)"
        )
    assert batched["trend"]["speedup"] > 3.0
    assert batched["classify"]["speedup"] > 1.5
    # per-row CUSUM is already vectorized; batching only drops call
    # overhead, so just require it not to regress materially
    assert batched["cusum_rows"]["speedup"] > 0.8


def test_cusum_rows_scaling_artifact():
    """Record the cusum_rows batch-size sweep in BENCH_kernels.json.

    The sweep answers "is the ~1.2x cusum_rows speedup a batch-size
    artifact?": no — ``detect_cusum_batch`` hoists only the NaN
    forward-fill across rows and still runs the per-row segmented-cumsum
    passes in a Python loop (each row's alarm structure differs), so the
    speedup stays roughly flat in B.  See docs/algorithms.md §14.
    """
    scaling = measure_cusum_scaling()
    merge_latest_section(BENCH_FILE, "cusum_rows_scaling", scaling)
    print()
    for b, stats in scaling.items():
        print(
            f"  B={b}: {stats['scalar_s'] * 1e3:.1f}ms -> "
            f"{stats['batched_s'] * 1e3:.1f}ms ({stats['speedup']:.2f}x, "
            f"{stats['rows_per_sec_batched']:.0f} rows/s)"
        )
    for stats in scaling.values():
        # flat-in-B is the documented expectation; only guard against a
        # real regression where batching becomes materially slower
        assert stats["speedup"] > 0.6


# ---------------------------------------------------------------------------
# campaign engine: serial vs parallel over a whole world
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_world():
    """A 200-block world (REPRO_SCALE overrides) for engine benchmarks."""
    return WorldModel(scenario_covid2020(), n_blocks=bench_scale(200), seed=11)


def _engine_analyze(world, executor):
    engine = CampaignEngine(executor)
    result = DatasetBuilder(world).analyze(ENGINE_DATASET, engine=engine)
    print()
    print(result.metrics.report())  # the per-stage timing breakdown
    return result


@pytest.fixture(scope="module")
def serial_reference(engine_world):
    """Serial engine results the parallel benchmark is checked against."""
    return _engine_analyze(engine_world, SerialExecutor())


def test_engine_serial_world(benchmark, engine_world):
    """Whole-world analysis through the engine, one process."""
    result = benchmark.pedantic(
        _engine_analyze, args=(engine_world, SerialExecutor()), rounds=1, iterations=1
    )
    assert result.funnel().routed == engine_world.n_blocks


def test_engine_parallel_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis through a 2-worker pool; byte-identical to serial."""
    result = benchmark.pedantic(
        _engine_analyze,
        args=(engine_world, ParallelExecutor(workers=2)),
        rounds=1,
        iterations=1,
    )
    assert result.metrics.fallback is None
    assert list(result.analyses) == list(serial_reference.analyses)
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"parallel analysis diverged from serial for {cidr}"


def test_engine_traced_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis with full telemetry on: spans + metric shipping.

    The delta against ``test_engine_serial_world`` is the tracing
    overhead (span records, per-task registry swaps, snapshot merging);
    it should stay in the low single-digit percent of run wall time.
    """
    from repro.obs.trace import Tracer, use_tracer

    def traced():
        with use_tracer(Tracer()) as tracer:
            result = _engine_analyze(engine_world, SerialExecutor())
        print(f"  ({len(tracer.finished)} spans recorded)")
        return result

    result = benchmark.pedantic(traced, rounds=1, iterations=1)
    assert result.metrics.meters is not None
    assert result.metrics.meters["engine.tasks"]["value"] == engine_world.n_blocks
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"traced analysis diverged from untraced for {cidr}"


# ---------------------------------------------------------------------------
# analysis cache: cold run vs warm (all-hits) run of a full experiment
# ---------------------------------------------------------------------------
def test_fig3_cache_cold_vs_warm(benchmark, tmp_path):
    """Figure 3 with a disk cache: the warm rerun must be all hits.

    A fresh engine per run (sharing only the cache directory) models
    separate CLI invocations with ``--cache``; the benchmark measures
    the warm path, which skips simulation entirely.
    """
    from repro.experiments import fig3
    from repro.runtime import drain_run_log

    def run_cached():
        engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        result = fig3.run(engine=engine)
        return result, drain_run_log()

    drain_run_log()  # isolate from engine runs earlier in the session
    t0 = time.perf_counter()
    cold, cold_runs = run_cached()
    cold_s = time.perf_counter() - t0

    warm, warm_runs = benchmark.pedantic(run_cached, rounds=1, iterations=1)
    warm_s = sum(m.wall_s for m in warm_runs)
    print(f"\n  cold {cold_s:.2f}s -> warm {warm_s:.3f}s (engine wall)")

    assert all(m.cache and m.cache["hits"] == 0 for m in cold_runs)
    assert all(
        m.cache and m.cache["misses"] == 0 and m.cache["stores"] == 0
        for m in warm_runs
    ), "warm fig3 run was not 100% cache hits"
    assert pickle.dumps(warm) == pickle.dumps(cold)
    assert fig3.format_report(warm) == fig3.format_report(cold)
