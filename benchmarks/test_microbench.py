"""Component micro-benchmarks: throughput of the pipeline's hot paths.

Unlike the experiment benchmarks (single deterministic runs that
regenerate paper tables), these measure the per-call cost of the core
algorithms over realistic quarter-length inputs, plus the campaign
engine's serial vs. parallel throughput over a whole world (with the
per-stage timing breakdown printed for both).
"""

from __future__ import annotations

import pickle
from datetime import datetime

import numpy as np
import pytest

from repro.core.reconstruction import reconstruct
from repro.core.repair import one_loss_repair
from repro.core.trend import TrendExtractor
from repro.datasets.builder import DatasetBuilder
from repro.experiments.common import bench_scale
from repro.net.events import Calendar
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import WorkplaceUsage, round_grid
from repro.net.world import WorldModel, scenario_covid2020
from repro.runtime import CampaignEngine, ParallelExecutor, SerialExecutor
from repro.timeseries.detect import detect_cusum
from repro.timeseries.stl import stl_decompose

QUARTER_S = 84 * 86_400.0

ENGINE_DATASET = "2020it89-match-ejnw"  # two weeks, four observers


@pytest.fixture(scope="module")
def quarter_block():
    calendar = Calendar(epoch=datetime(2020, 1, 1), tz_hours=0.0)
    usage = WorkplaceUsage(n_desktops=60, n_servers=2)
    truth = usage.generate(np.random.default_rng(5), round_grid(QUARTER_S), calendar)
    order = probe_order(truth.n_addresses, 5)
    log = TrinocularObserver("e").observe(truth, order, rng=np.random.default_rng(6))
    return truth, order, log


def test_prober_quarter(benchmark, quarter_block):
    """Adaptive probing of one block for a quarter (the simulation's hot loop)."""
    truth, order, _ = quarter_block

    def probe():
        return TrinocularObserver("e").observe(
            truth, order, rng=np.random.default_rng(1)
        )

    log = benchmark(probe)
    assert len(log) > 10_000


def test_reconstruction_quarter(benchmark, quarter_block):
    """Hold-last-state reconstruction over a quarter of probes."""
    truth, _, log = quarter_block
    recon = benchmark(reconstruct, log, truth.addresses, truth.col_times)
    assert recon.is_complete


def test_one_loss_repair_quarter(benchmark, quarter_block):
    """1-loss repair over a quarter of probes."""
    _, _, log = quarter_block
    repaired = benchmark(one_loss_repair, log)
    assert len(repaired) == len(log)


def test_stl_quarter_hourly(benchmark):
    """STL decomposition of a quarter-length hourly series."""
    rng = np.random.default_rng(2)
    n = 24 * 84
    t = np.arange(n)
    y = 12 + 5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.5, n)
    result = benchmark(stl_decompose, y, 24)
    assert np.isfinite(result.trend).all()


def test_cusum_quarter_hourly(benchmark):
    """CUSUM over a quarter-length hourly trend."""
    rng = np.random.default_rng(3)
    y = np.concatenate([np.zeros(1000), np.full(1016, -3.0)]) + rng.normal(0, 0.1, 2016)
    result = benchmark(detect_cusum, y, 1.0, 0.0055)
    assert len(result.downward) >= 1


def test_trend_extraction_quarter(benchmark, quarter_block):
    """Full trend extraction (resample + interpolate + robust STL)."""
    truth, _, log = quarter_block
    recon = reconstruct(log, truth.addresses, truth.col_times)
    result = benchmark(TrendExtractor().extract, recon.counts)
    assert np.isfinite(result.trend.values).all()


# ---------------------------------------------------------------------------
# campaign engine: serial vs parallel over a whole world
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_world():
    """A 200-block world (REPRO_SCALE overrides) for engine benchmarks."""
    return WorldModel(scenario_covid2020(), n_blocks=bench_scale(200), seed=11)


def _engine_analyze(world, executor):
    engine = CampaignEngine(executor)
    result = DatasetBuilder(world).analyze(ENGINE_DATASET, engine=engine)
    print()
    print(result.metrics.report())  # the per-stage timing breakdown
    return result


@pytest.fixture(scope="module")
def serial_reference(engine_world):
    """Serial engine results the parallel benchmark is checked against."""
    return _engine_analyze(engine_world, SerialExecutor())


def test_engine_serial_world(benchmark, engine_world):
    """Whole-world analysis through the engine, one process."""
    result = benchmark.pedantic(
        _engine_analyze, args=(engine_world, SerialExecutor()), rounds=1, iterations=1
    )
    assert result.funnel().routed == engine_world.n_blocks


def test_engine_parallel_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis through a 2-worker pool; byte-identical to serial."""
    result = benchmark.pedantic(
        _engine_analyze,
        args=(engine_world, ParallelExecutor(workers=2)),
        rounds=1,
        iterations=1,
    )
    assert result.metrics.fallback is None
    assert list(result.analyses) == list(serial_reference.analyses)
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"parallel analysis diverged from serial for {cidr}"


def test_engine_traced_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis with full telemetry on: spans + metric shipping.

    The delta against ``test_engine_serial_world`` is the tracing
    overhead (span records, per-task registry swaps, snapshot merging);
    it should stay in the low single-digit percent of run wall time.
    """
    from repro.obs.trace import Tracer, use_tracer

    def traced():
        with use_tracer(Tracer()) as tracer:
            result = _engine_analyze(engine_world, SerialExecutor())
        print(f"  ({len(tracer.finished)} spans recorded)")
        return result

    result = benchmark.pedantic(traced, rounds=1, iterations=1)
    assert result.metrics.meters is not None
    assert result.metrics.meters["engine.tasks"]["value"] == engine_world.n_blocks
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"traced analysis diverged from untraced for {cidr}"
