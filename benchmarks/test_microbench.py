"""Component micro-benchmarks: throughput of the pipeline's hot paths.

Unlike the experiment benchmarks (single deterministic runs that
regenerate paper tables), these measure the per-call cost of the core
algorithms over realistic quarter-length inputs, plus the campaign
engine's serial vs. parallel throughput over a whole world (with the
per-stage timing breakdown printed for both).
"""

from __future__ import annotations

import json
import pickle
import time
from datetime import datetime
from pathlib import Path

import numpy as np
import pytest

from repro.core.reconstruction import (
    full_scan_durations,
    full_scan_durations_reference,
    reconstruct,
)
from repro.core.repair import one_loss_repair
from repro.core.trend import TrendExtractor
from repro.datasets.builder import DatasetBuilder
from repro.experiments.common import bench_scale
from repro.net.events import Calendar
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import WorkplaceUsage, round_grid
from repro.net.world import WorldModel, scenario_covid2020
from repro.runtime import AnalysisCache, CampaignEngine, ParallelExecutor, SerialExecutor
from repro.timeseries.detect import detect_cusum, detect_cusum_reference
from repro.timeseries.stl import stl_decompose

QUARTER_S = 84 * 86_400.0

ENGINE_DATASET = "2020it89-match-ejnw"  # two weeks, four observers


@pytest.fixture(scope="module")
def quarter_block():
    calendar = Calendar(epoch=datetime(2020, 1, 1), tz_hours=0.0)
    usage = WorkplaceUsage(n_desktops=60, n_servers=2)
    truth = usage.generate(np.random.default_rng(5), round_grid(QUARTER_S), calendar)
    order = probe_order(truth.n_addresses, 5)
    log = TrinocularObserver("e").observe(truth, order, rng=np.random.default_rng(6))
    return truth, order, log


def test_prober_quarter(benchmark, quarter_block):
    """Adaptive probing of one block for a quarter (the simulation's hot loop)."""
    truth, order, _ = quarter_block

    def probe():
        return TrinocularObserver("e").observe(
            truth, order, rng=np.random.default_rng(1)
        )

    log = benchmark(probe)
    assert len(log) > 10_000


def test_reconstruction_quarter(benchmark, quarter_block):
    """Hold-last-state reconstruction over a quarter of probes."""
    truth, _, log = quarter_block
    recon = benchmark(reconstruct, log, truth.addresses, truth.col_times)
    assert recon.is_complete


def test_one_loss_repair_quarter(benchmark, quarter_block):
    """1-loss repair over a quarter of probes."""
    _, _, log = quarter_block
    repaired = benchmark(one_loss_repair, log)
    assert len(repaired) == len(log)


def test_stl_quarter_hourly(benchmark):
    """STL decomposition of a quarter-length hourly series."""
    rng = np.random.default_rng(2)
    n = 24 * 84
    t = np.arange(n)
    y = 12 + 5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.5, n)
    result = benchmark(stl_decompose, y, 24)
    assert np.isfinite(result.trend).all()


def test_cusum_quarter_hourly(benchmark):
    """CUSUM over a quarter-length hourly trend."""
    rng = np.random.default_rng(3)
    y = np.concatenate([np.zeros(1000), np.full(1016, -3.0)]) + rng.normal(0, 0.1, 2016)
    result = benchmark(detect_cusum, y, 1.0, 0.0055)
    assert len(result.downward) >= 1


def test_trend_extraction_quarter(benchmark, quarter_block):
    """Full trend extraction (resample + interpolate + robust STL)."""
    truth, _, log = quarter_block
    recon = reconstruct(log, truth.addresses, truth.col_times)
    result = benchmark(TrendExtractor().extract, recon.counts)
    assert np.isfinite(result.trend.values).all()


# ---------------------------------------------------------------------------
# vectorized kernels vs their scalar reference oracles
# ---------------------------------------------------------------------------
def _best_of(fn, *args, repeats=3, **kwargs):
    """(best wall seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _kernel_speedups(quarter_block) -> dict[str, dict[str, float]]:
    """Measure vectorized-vs-reference speedups on the quarter fixture."""
    truth, order, log = quarter_block
    obs = TrinocularObserver("e")

    fast_s, fast_log = _best_of(
        lambda: obs.observe(truth, order, rng=np.random.default_rng(1))
    )
    ref_s, ref_log = _best_of(
        lambda: obs.observe_reference(truth, order, rng=np.random.default_rng(1))
    )
    assert np.array_equal(fast_log.times, ref_log.times)
    prober = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    fast_s, fast_d = _best_of(full_scan_durations, log, truth.addresses)
    ref_s, ref_d = _best_of(full_scan_durations_reference, log, truth.addresses)
    assert np.array_equal(fast_d, ref_d)
    recon = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    # the pipeline's shape: a long z-scored trend with a few level shifts
    rng = np.random.default_rng(3)
    steps = np.repeat([0.0, -3.0, -0.5, 2.5, 0.0], 10_000)
    y = steps + rng.normal(0.0, 0.1, steps.size)
    fast_s, fast_c = _best_of(detect_cusum, y, 1.0, 0.0055)
    ref_s, ref_c = _best_of(detect_cusum_reference, y, 1.0, 0.0055)
    assert fast_c.alarms == ref_c.alarms
    cusum = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    return {"prober": prober, "full_scan_durations": recon, "cusum": cusum}


def test_prober_quarter_reference(benchmark, quarter_block):
    """The scalar-loop oracle, for comparison with test_prober_quarter."""
    truth, order, _ = quarter_block

    def probe():
        return TrinocularObserver("e").observe_reference(
            truth, order, rng=np.random.default_rng(1)
        )

    log = benchmark(probe)
    assert len(log) > 10_000


def test_full_scan_quarter(benchmark, quarter_block):
    """Vectorized Figure 3 statistic over a quarter of probes."""
    truth, _, log = quarter_block
    durations = benchmark(full_scan_durations, log, truth.addresses)
    assert durations.size > 0


def test_full_scan_quarter_reference(benchmark, quarter_block):
    """The occurrence-dict oracle, for comparison with test_full_scan_quarter."""
    truth, _, log = quarter_block
    durations = benchmark(full_scan_durations_reference, log, truth.addresses)
    assert durations.size > 0


def test_cusum_quarter_hourly_reference(benchmark):
    """The scalar-recursion oracle, same input as test_cusum_quarter_hourly."""
    rng = np.random.default_rng(3)
    y = np.concatenate([np.zeros(1000), np.full(1016, -3.0)]) + rng.normal(0, 0.1, 2016)
    result = benchmark(detect_cusum_reference, y, 1.0, 0.0055)
    assert len(result.downward) >= 1


def _merge_artifact(section: str, payload) -> None:
    """Read-modify-write one section of BENCH_kernels.json."""
    out = Path("BENCH_kernels.json")
    try:
        doc = json.loads(out.read_text())
    except (OSError, json.JSONDecodeError):
        doc = {}
    doc[section] = payload
    out.write_text(json.dumps(doc, indent=2) + "\n")


def test_kernel_speedups_artifact(quarter_block):
    """Record vectorized-vs-reference speedups in BENCH_kernels.json.

    The artifact is the acceptance record (CI uploads it); the assertion
    bound is looser than the >=3x the quarter fixture shows on idle
    hardware so noisy shared runners don't flake.
    """
    kernels = _kernel_speedups(quarter_block)
    _merge_artifact("kernels", kernels)
    print()
    for name, stats in kernels.items():
        print(
            f"  {name}: {stats['reference_s'] * 1e3:.1f}ms -> "
            f"{stats['vectorized_s'] * 1e3:.1f}ms ({stats['speedup']:.1f}x)"
        )
    assert kernels["prober"]["speedup"] > 1.5
    assert kernels["full_scan_durations"]["speedup"] > 1.5
    assert kernels["cusum"]["speedup"] > 1.5


# ---------------------------------------------------------------------------
# batched columnar kernels vs per-block scalar loops
# ---------------------------------------------------------------------------
BATCH_BLOCKS = 256  # the acceptance-scale campaign batch


@pytest.fixture(scope="module")
def count_matrix():
    """256 plausible two-week count series sharing one round grid."""
    from repro.timeseries.series import BlockMatrix, TimeSeries

    rng = np.random.default_rng(17)
    n = int(14 * 86_400.0 / 660.0)  # two weeks of 11-minute rounds
    times = np.arange(n) * 660.0
    series = []
    for _ in range(BATCH_BLOCKS):
        level = rng.uniform(8.0, 60.0)
        amp = rng.uniform(0.1, 0.5) * level
        values = level + amp * np.sin(2 * np.pi * times / 86_400.0)
        values += rng.normal(0.0, 0.05 * level, n)
        series.append(TimeSeries(times, values))
    return series, BlockMatrix.from_series(series)


def _batched_speedups(count_matrix) -> dict[str, dict[str, float]]:
    """Batched-vs-scalar-loop wall times over the 256-block batch.

    Every pair is asserted byte-identical before it is timed into the
    artifact — a speedup over a kernel that disagrees is meaningless.
    """
    from repro.core.sensitivity import SensitivityClassifier
    from repro.timeseries.detect import detect_cusum_batch, zscore_rows
    from repro.timeseries.series import BlockMatrix

    series, matrix = count_matrix
    out: dict[str, dict[str, float]] = {}

    extractor = TrendExtractor()
    batch_s, batch_trends = _best_of(extractor.extract_batch, matrix)
    loop_s, loop_trends = _best_of(lambda: [extractor.extract(s) for s in series])
    for b, l in zip(batch_trends, loop_trends):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["trend"] = {
        "batched_s": batch_s,
        "scalar_s": loop_s,
        "speedup": loop_s / batch_s,
    }

    classifier = SensitivityClassifier()
    batch_s, batch_cls = _best_of(classifier.classify_batch, matrix)
    loop_s, loop_cls = _best_of(lambda: [classifier.classify(s) for s in series])
    for b, l in zip(batch_cls, loop_cls):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["classify"] = {
        "batched_s": batch_s,
        "scalar_s": loop_s,
        "speedup": loop_s / batch_s,
    }

    trends = BlockMatrix(
        batch_trends[0].trend.times,
        zscore_rows(
            np.stack([t.trend.values for t in batch_trends]),
            min_abs_scale=0.5,
            min_rel_scale=0.02,
        ),
    )
    batch_s, batch_cusum = _best_of(detect_cusum_batch, trends.values, 1.0, 0.0055)
    loop_s, loop_cusum = _best_of(
        lambda: [detect_cusum(row, 1.0, 0.0055) for row in trends.values]
    )
    for b, l in zip(batch_cusum, loop_cusum):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["cusum_rows"] = {
        "batched_s": batch_s,
        "scalar_s": loop_s,
        "speedup": loop_s / batch_s,
    }
    return out


def test_batched_speedups_artifact(count_matrix):
    """Record batched-vs-scalar speedups in BENCH_kernels.json.

    The trend stage carries the acceptance bound: the batched kernel
    must clear 3x over the per-block loop at the 256-block batch.
    """
    batched = _batched_speedups(count_matrix)
    _merge_artifact("batched", batched)
    print()
    for name, stats in batched.items():
        print(
            f"  {name}: {stats['scalar_s'] * 1e3:.1f}ms -> "
            f"{stats['batched_s'] * 1e3:.1f}ms ({stats['speedup']:.1f}x)"
        )
    assert batched["trend"]["speedup"] > 3.0
    assert batched["classify"]["speedup"] > 1.5
    # per-row CUSUM is already vectorized; batching only drops call
    # overhead, so just require it not to regress materially
    assert batched["cusum_rows"]["speedup"] > 0.8


# ---------------------------------------------------------------------------
# campaign engine: serial vs parallel over a whole world
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_world():
    """A 200-block world (REPRO_SCALE overrides) for engine benchmarks."""
    return WorldModel(scenario_covid2020(), n_blocks=bench_scale(200), seed=11)


def _engine_analyze(world, executor):
    engine = CampaignEngine(executor)
    result = DatasetBuilder(world).analyze(ENGINE_DATASET, engine=engine)
    print()
    print(result.metrics.report())  # the per-stage timing breakdown
    return result


@pytest.fixture(scope="module")
def serial_reference(engine_world):
    """Serial engine results the parallel benchmark is checked against."""
    return _engine_analyze(engine_world, SerialExecutor())


def test_engine_serial_world(benchmark, engine_world):
    """Whole-world analysis through the engine, one process."""
    result = benchmark.pedantic(
        _engine_analyze, args=(engine_world, SerialExecutor()), rounds=1, iterations=1
    )
    assert result.funnel().routed == engine_world.n_blocks


def test_engine_parallel_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis through a 2-worker pool; byte-identical to serial."""
    result = benchmark.pedantic(
        _engine_analyze,
        args=(engine_world, ParallelExecutor(workers=2)),
        rounds=1,
        iterations=1,
    )
    assert result.metrics.fallback is None
    assert list(result.analyses) == list(serial_reference.analyses)
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"parallel analysis diverged from serial for {cidr}"


def test_engine_traced_world(benchmark, engine_world, serial_reference):
    """Whole-world analysis with full telemetry on: spans + metric shipping.

    The delta against ``test_engine_serial_world`` is the tracing
    overhead (span records, per-task registry swaps, snapshot merging);
    it should stay in the low single-digit percent of run wall time.
    """
    from repro.obs.trace import Tracer, use_tracer

    def traced():
        with use_tracer(Tracer()) as tracer:
            result = _engine_analyze(engine_world, SerialExecutor())
        print(f"  ({len(tracer.finished)} spans recorded)")
        return result

    result = benchmark.pedantic(traced, rounds=1, iterations=1)
    assert result.metrics.meters is not None
    assert result.metrics.meters["engine.tasks"]["value"] == engine_world.n_blocks
    for cidr, analysis in result.analyses.items():
        assert pickle.dumps(analysis) == pickle.dumps(
            serial_reference.analyses[cidr]
        ), f"traced analysis diverged from untraced for {cidr}"


# ---------------------------------------------------------------------------
# analysis cache: cold run vs warm (all-hits) run of a full experiment
# ---------------------------------------------------------------------------
def test_fig3_cache_cold_vs_warm(benchmark, tmp_path):
    """Figure 3 with a disk cache: the warm rerun must be all hits.

    A fresh engine per run (sharing only the cache directory) models
    separate CLI invocations with ``--cache``; the benchmark measures
    the warm path, which skips simulation entirely.
    """
    from repro.experiments import fig3
    from repro.runtime import drain_run_log

    def run_cached():
        engine = CampaignEngine(SerialExecutor(), AnalysisCache(tmp_path))
        result = fig3.run(engine=engine)
        return result, drain_run_log()

    drain_run_log()  # isolate from engine runs earlier in the session
    t0 = time.perf_counter()
    cold, cold_runs = run_cached()
    cold_s = time.perf_counter() - t0

    warm, warm_runs = benchmark.pedantic(run_cached, rounds=1, iterations=1)
    warm_s = sum(m.wall_s for m in warm_runs)
    print(f"\n  cold {cold_s:.2f}s -> warm {warm_s:.3f}s (engine wall)")

    assert all(m.cache and m.cache["hits"] == 0 for m in cold_runs)
    assert all(
        m.cache and m.cache["misses"] == 0 and m.cache["stores"] == 0
        for m in warm_runs
    ), "warm fig3 run was not 100% cache hits"
    assert pickle.dumps(warm) == pickle.dumps(cold)
    assert fig3.format_report(warm) == fig3.format_report(cold)
