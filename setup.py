"""Legacy setup shim: this offline environment lacks the `wheel` package,
so PEP 660 editable installs fail; pip falls back to `setup.py develop`."""
from setuptools import setup

setup()
