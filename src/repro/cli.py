"""Command-line entry point: run any paper experiment.

::

    repro list                 # show available experiments
    repro fig1                 # run one experiment, print its report
    repro all                  # run everything (slow at full scale)
    repro export [directory]   # write campaign results as CSV/GeoJSON (S2.9)
    REPRO_SCALE=200 repro fig8 # scale the simulated world down/up
    repro --workers 4 table2   # fan block analysis out over 4 processes
    repro --workers 4 --shm fig3 # zero-copy shared-memory dispatch tier
    repro --shards 8 fig3      # stream 8 shards, spilling results to disk
    repro --cache .cache fig3  # reuse per-block results across invocations
    repro --metrics fig3       # print per-stage engine instrumentation
    repro --trace out/ fig3    # also write spans.jsonl/metrics.jsonl/run.json
    repro --progress out/ fig3 # append live heartbeats to out/progress.jsonl
    repro report out/          # re-render a saved run from disk (no rerun)
    repro lint                 # statically check repo invariants (REP001-REP008)
    repro lint --format json   # machine-diffable report (CI artifact)
    repro profile fig3         # run one experiment under cProfile
    repro bench                # append a record to the BENCH_kernels.json trajectory
    repro bench --check        # fail on a regression against that trajectory
"""

from __future__ import annotations

import argparse
import sys

from .experiments import REGISTRY
from .runtime import envconfig

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Inferring Changes in Daily Human Activity from "
            "Internet Response' (IMC 2023)."
        ),
        epilog=envconfig.env_help(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name (see 'repro list'), 'list', 'all', 'export', "
            "'report', 'lint' (static invariant checks), 'profile' "
            "(cProfile one experiment), or 'bench' (kernel/engine "
            "benchmark trajectory); each subcommand has its own --help"
        ),
    )
    parser.add_argument(
        "destination",
        nargs="?",
        default="repro_results",
        help=(
            "output directory for 'export' (default: repro_results); "
            "trace directory to read for 'report'"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "processes for per-block analysis (sets REPRO_WORKERS; "
            "1 = serial, the default)"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stream each campaign through N contiguous block shards, "
            "spilling completed shards to a memory-mapped on-disk layout "
            "between them (sets REPRO_SHARDS; 1 = unsharded, the "
            "default).  Bounds coordinator RSS for paper-scale worlds; "
            "results are byte-identical to the unsharded run.  "
            "REPRO_SPILL_DIR picks the spill parent directory"
        ),
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed per-block result cache rooted at DIR "
            "(sets REPRO_CACHE); repeated runs over unchanged worlds "
            "reuse stored analyses instead of re-simulating"
        ),
    )
    parser.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "columnar batched dispatch of the analysis tail (sets "
            "REPRO_BATCHED; on by default, results are identical either "
            "way — use --no-batched to force per-block dispatch)"
        ),
    )
    parser.add_argument(
        "--shm",
        action=argparse.BooleanOptionalAction,
        default=None,
        help=(
            "zero-copy shared-memory dispatch (sets REPRO_SHM; off by "
            "default, needs --workers > 1): arrays are published once "
            "into shm segments and workers attach read-only views, with "
            "one persistent pool reused across dispatches — results are "
            "byte-identical to every other path"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print per-stage engine instrumentation after the run",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help=(
            "record hierarchical spans and write DIR/spans.jsonl, "
            "DIR/metrics.jsonl and the DIR/run.json manifest after the run"
        ),
    )
    parser.add_argument(
        "--progress",
        default=None,
        metavar="DIR",
        help=(
            "append live heartbeat records (blocks done, blocks/sec, ETA, "
            "RSS, cache hit-rate) to DIR/progress.jsonl while campaigns "
            "run (sets REPRO_PROGRESS; REPRO_PROGRESS_INTERVAL rate-limits "
            "mid-run ticks, default 2s)"
        ),
    )
    return parser


def _export(destination: str) -> int:
    """Write the covid campaign's results like the paper's website (§2.9)."""
    from pathlib import Path

    from .experiments.common import covid_campaign
    from .export import blocks_csv, gridcell_csv, gridcell_geojson

    out = Path(destination)
    out.mkdir(parents=True, exist_ok=True)
    campaign = covid_campaign()
    aggregator = campaign.aggregator()
    n_rows = gridcell_csv(
        aggregator,
        out / "gridcell_daily.csv",
        first_day=campaign.first_day,
        n_days=campaign.n_days,
    )
    n_cells = gridcell_geojson(aggregator, out / "change_sensitive_map.geojson")
    n_blocks = blocks_csv(list(campaign.records), out / "blocks.csv")
    print(f"wrote {n_rows} gridcell-day rows, {n_cells} map cells, {n_blocks} blocks to {out}/")
    return 0


def _print_metrics() -> None:
    """Print instrumentation for every engine run since the last drain."""
    from .runtime import drain_run_log

    runs = drain_run_log()
    if not runs:
        print("(no engine runs recorded)", file=sys.stderr)
        return
    print("\n--- engine metrics ---", file=sys.stderr)
    for metrics in runs:
        print(metrics.report(), file=sys.stderr)


def _report(directory: str) -> int:
    """Re-render a saved traced run (stage tables + funnel) from disk."""
    from .obs.sinks import load_run, render_report

    try:
        saved = load_run(directory)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render_report(saved))
    return 0


def _write_trace(directory: str, tracer, experiment: str) -> None:
    """Persist the run's spans, per-run metrics, and manifest."""
    from .obs.metrics import get_registry
    from .obs.sinks import write_run
    from .runtime import peek_run_log

    out = write_run(
        directory,
        tracer=tracer,
        runs=peek_run_log(),
        label=experiment,
        meters=get_registry().snapshot(),
    )
    print(f"trace written to {out}/", file=sys.stderr)


def _dispatch(name: str, args: argparse.Namespace) -> int:
    """Run one experiment / 'all' / 'export'; returns the exit code."""
    if name == "export":
        return _export(args.destination)

    if name == "all":
        failures = []
        for key, module in REGISTRY.items():
            print(f"=== {key} ===")
            try:
                module.main()
            except Exception as exc:  # surface which experiment broke
                failures.append(key)
                print(f"experiment {key} failed: {exc}", file=sys.stderr)
            print()
        if failures:
            print(f"failed experiments: {', '.join(failures)}", file=sys.stderr)
            return 1
        return 0

    module = REGISTRY.get(name)
    if module is None:
        print(f"unknown experiment {name!r}; try 'repro list'", file=sys.stderr)
        return 2
    module.main()
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "lint":
        # lint owns its flags (--format, --update-fingerprint, ...), so it
        # gets the remaining argv before the experiment parser sees it
        from .lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "profile":
        from .obs.profiling import main as profile_main

        return profile_main(argv[1:])
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    args = _build_parser().parse_args(argv)
    name = args.experiment

    if args.workers is not None:
        # default_engine() reads this; one env var reaches every
        # experiment without threading an engine through each main().
        envconfig.set_env("REPRO_WORKERS", str(args.workers))
    if args.shards is not None:
        envconfig.set_env("REPRO_SHARDS", str(args.shards))
    if args.cache is not None:
        envconfig.set_env("REPRO_CACHE", args.cache)
    if args.batched is not None:
        envconfig.set_env("REPRO_BATCHED", "1" if args.batched else "0")
    if args.shm is not None:
        envconfig.set_env("REPRO_SHM", "1" if args.shm else "0")
    if args.metrics or args.trace is not None:
        # these runs print/persist the pool payload section, so turn the
        # (re-pickling) payload accounting on unless explicitly set
        envconfig.setdefault_env("REPRO_PAYLOAD_ACCOUNTING", "1")
    if args.progress is not None:
        envconfig.set_env("REPRO_PROGRESS", args.progress)
    if envconfig.raw("REPRO_PROGRESS"):
        from .obs.progress import default_progress, set_progress

        set_progress(default_progress())

    from .obs.resources import maybe_start_tracemalloc

    maybe_start_tracemalloc()  # REPRO_TRACEMALLOC=1 adds allocator deltas

    if name == "list":
        print("available experiments:")
        for key, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:20s} {doc}")
        return 0

    if name == "report":
        return _report(args.destination)

    tracer = None
    if args.trace is not None:
        from .obs.trace import NOOP, Tracer, set_tracer

        tracer = Tracer()
        set_tracer(tracer)

    try:
        if tracer is not None:
            with tracer.span(
                "run", attrs={"experiment": name, "argv": " ".join(argv or sys.argv[1:])}
            ):
                return _dispatch(name, args)
        return _dispatch(name, args)
    finally:
        if tracer is not None:
            set_tracer(NOOP)
            _write_trace(args.trace, tracer, name)
        if args.metrics:
            _print_metrics()


if __name__ == "__main__":
    raise SystemExit(main())
