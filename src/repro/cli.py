"""Command-line entry point: run any paper experiment.

::

    repro list                 # show available experiments
    repro fig1                 # run one experiment, print its report
    repro all                  # run everything (slow at full scale)
    repro export [directory]   # write campaign results as CSV/GeoJSON (S2.9)
    REPRO_SCALE=200 repro fig8 # scale the simulated world down/up
    repro --workers 4 table2   # fan block analysis out over 4 processes
    repro --metrics fig3       # print per-stage engine instrumentation
"""

from __future__ import annotations

import argparse
import os
import sys

from .experiments import REGISTRY

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Inferring Changes in Daily Human Activity from "
            "Internet Response' (IMC 2023)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name (see 'repro list'), 'list', 'all', or 'export'",
    )
    parser.add_argument(
        "destination",
        nargs="?",
        default="repro_results",
        help="output directory for 'export' (default: repro_results)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "processes for per-block analysis (sets REPRO_WORKERS; "
            "1 = serial, the default)"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print per-stage engine instrumentation after the run",
    )
    return parser


def _export(destination: str) -> int:
    """Write the covid campaign's results like the paper's website (§2.9)."""
    from pathlib import Path

    from .experiments.common import covid_campaign
    from .export import blocks_csv, gridcell_csv, gridcell_geojson

    out = Path(destination)
    out.mkdir(parents=True, exist_ok=True)
    campaign = covid_campaign()
    aggregator = campaign.aggregator()
    n_rows = gridcell_csv(
        aggregator,
        out / "gridcell_daily.csv",
        first_day=campaign.first_day,
        n_days=campaign.n_days,
    )
    n_cells = gridcell_geojson(aggregator, out / "change_sensitive_map.geojson")
    n_blocks = blocks_csv(list(campaign.records), out / "blocks.csv")
    print(f"wrote {n_rows} gridcell-day rows, {n_cells} map cells, {n_blocks} blocks to {out}/")
    return 0


def _print_metrics() -> None:
    """Print instrumentation for every engine run since the last drain."""
    from .runtime import drain_run_log

    runs = drain_run_log()
    if not runs:
        print("(no engine runs recorded)", file=sys.stderr)
        return
    print("\n--- engine metrics ---", file=sys.stderr)
    for metrics in runs:
        print(metrics.report(), file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    name = args.experiment

    if args.workers is not None:
        # default_engine() reads this; one env var reaches every
        # experiment without threading an engine through each main().
        os.environ["REPRO_WORKERS"] = str(args.workers)

    if name == "list":
        print("available experiments:")
        for key, module in REGISTRY.items():
            doc = (module.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:20s} {doc}")
        return 0

    try:
        if name == "export":
            return _export(args.destination)

        if name == "all":
            failures = []
            for key, module in REGISTRY.items():
                print(f"=== {key} ===")
                try:
                    module.main()
                except Exception as exc:  # surface which experiment broke
                    failures.append(key)
                    print(f"experiment {key} failed: {exc}", file=sys.stderr)
                print()
            if failures:
                print(f"failed experiments: {', '.join(failures)}", file=sys.stderr)
                return 1
            return 0

        module = REGISTRY.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; try 'repro list'", file=sys.stderr)
            return 2
        module.main()
        return 0
    finally:
        if args.metrics:
            _print_metrics()


if __name__ == "__main__":
    raise SystemExit(main())
