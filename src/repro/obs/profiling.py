"""Deterministic cProfile wrapping for campaigns (``repro profile``).

Wraps any callable in :mod:`cProfile` and renders two artifacts whose
*shape* is deterministic (timings vary run to run, ordering and labels
do not):

``top-N table``
    Rows sorted by cumulative time (ties broken by label), function
    labels as ``basename.py:name`` — no absolute paths, so output from
    two machines diffs cleanly.
``collapsed stacks``
    ``root;child;leaf <count>`` lines (flamegraph.pl / speedscope
    format).  pstats stores a call *graph*, not stack samples, so the
    stacks are reconstructed by walking callers->callees from the
    roots and attributing each function's cumulative time down the
    tree proportionally; recursion is cut by skipping a child already
    on the stack.  Counts are integer microseconds.

The ``repro profile <experiment>`` subcommand (see :mod:`repro.cli`)
runs a registered experiment under this wrapper and writes
``profile.pstats`` (for ``snakeviz``/``pstats`` digging) plus
``profile.collapsed`` next to the printed table.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "collapsed_stacks",
    "profile_call",
    "top_table",
    "write_profile",
]

_MAX_DEPTH = 48


def profile_call(fn: Callable[[], Any]) -> tuple[Any, pstats.Stats]:
    """Run ``fn()`` under cProfile; returns (result, stats)."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def _label(func: tuple[str, int, str]) -> str:
    """Stable, machine-independent label for a pstats function key."""
    filename, lineno, name = func
    if filename == "~":  # built-ins have no file
        return name
    return f"{os.path.basename(filename)}:{name}"


def top_table(stats: pstats.Stats, n: int = 30) -> str:
    """Aligned top-``n`` functions by cumulative time (deterministic order)."""
    rows: list[tuple[float, str, int, int, float, float]] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append((-ct, _label(func), nc, cc, tt, ct))
    rows.sort()
    header = ["ncalls", "tottime", "cumtime", "function"]
    table = [header, ["-" * len(h) for h in header]]
    for _neg_ct, label, nc, cc, tt, ct in rows[:n]:
        ncalls = str(nc) if nc == cc else f"{nc}/{cc}"
        table.append([ncalls, f"{tt:.4f}", f"{ct:.4f}", label])
    widths = [max(len(r[i]) for r in table) for i in range(3)]
    lines: list[str] = []
    for row in table:
        lines.append(
            "  ".join(c.rjust(w) for c, w in zip(row[:3], widths)) + "  " + row[3]
        )
    return "\n".join(lines)


def collapsed_stacks(stats: pstats.Stats, max_depth: int = _MAX_DEPTH) -> list[str]:
    """Flamegraph-ready ``a;b;c <microseconds>`` lines from a call graph.

    Time attribution is proportional: a function reached from several
    callers splits its cumulative time across them by each edge's share,
    and its own (``tottime``) share lands on its stack line.  Lines are
    sorted, so equal profiles collapse to equal output.
    """
    raw: dict[tuple[str, int, str], tuple[int, int, float, float, dict]] = (
        stats.stats  # type: ignore[attr-defined]
    )
    children: dict[tuple[str, int, str], list[tuple[str, int, str]]] = {}
    roots: list[tuple[str, int, str]] = []
    for func, (_cc, _nc, _tt, _ct, callers) in raw.items():
        if not callers:
            roots.append(func)
        for caller in callers:
            children.setdefault(caller, []).append(func)

    lines: dict[str, float] = {}

    def descend(func: tuple[str, int, str], stack: list[str], budget: float) -> None:
        if budget <= 0:
            return
        _cc, _nc, _tt, ct, _callers = raw[func]
        label = _label(func)
        if label in stack or len(stack) >= max_depth:
            return  # recursion / runaway depth: charge nothing further
        stack = stack + [label]
        scale = (budget / ct) if ct > 0 else 0.0
        kids = sorted(children.get(func, ()), key=_label)
        edges: list[tuple[tuple[str, int, str], float]] = []
        child_budget = 0.0
        for kid in kids:
            # edge stats: (cc, nc, tt, ct) of calls made from ``func``
            edge = raw[kid][4].get(func)
            edge_ct = edge[3] if isinstance(edge, tuple) else 0.0
            edges.append((kid, edge_ct))
            child_budget += max(edge_ct, 0.0)
        # whatever the children don't explain is this frame's own time
        self_time = max(budget - scale * child_budget, 0.0)
        key = ";".join(stack)
        if self_time > 0:
            lines[key] = lines.get(key, 0.0) + self_time
        for kid, edge_ct in edges:
            descend(kid, stack, scale * edge_ct)

    for root in sorted(roots, key=_label):
        ct = raw[root][3]
        descend(root, [], ct)

    out: list[str] = []
    for key in sorted(lines):
        micros = int(round(lines[key] * 1e6))
        if micros > 0:
            out.append(f"{key} {micros}")
    return out


def write_profile(
    stats: pstats.Stats, directory: "str | os.PathLike[str]"
) -> Path:
    """Dump ``profile.pstats`` and ``profile.collapsed`` into ``directory``."""
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    stats.dump_stats(str(out / "profile.pstats"))
    collapsed = collapsed_stacks(stats)
    with open(out / "profile.collapsed", "w", encoding="utf-8") as fh:
        fh.write("\n".join(collapsed) + ("\n" if collapsed else ""))
    return out


def main(argv: list[str] | None = None) -> int:
    """``repro profile <experiment>``: run a campaign under cProfile."""
    from ..experiments import REGISTRY

    parser = argparse.ArgumentParser(
        prog="repro profile",
        description=(
            "Run one experiment under cProfile; prints a deterministic "
            "top-N table and writes profile.pstats + profile.collapsed "
            "(flamegraph-ready) to the output directory."
        ),
    )
    parser.add_argument("experiment", choices=sorted(REGISTRY), help="experiment to profile")
    parser.add_argument(
        "-o",
        "--output",
        default="profile_out",
        help="directory for profile.pstats / profile.collapsed (default: %(default)s)",
    )
    parser.add_argument(
        "--top", type=int, default=30, help="rows in the printed table (default: %(default)s)"
    )
    args = parser.parse_args(argv)

    spec = REGISTRY[args.experiment]
    _result, stats = profile_call(spec.main)
    out = write_profile(stats, args.output)
    print(top_table(stats, n=args.top))
    print(f"\nprofile artifacts: {out / 'profile.pstats'}, {out / 'profile.collapsed'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
