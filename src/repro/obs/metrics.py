"""A small metrics registry: counters, gauges, fixed-bucket histograms.

Instruments are named get-or-create (``registry.counter("probes.sent")``)
so instrumentation points stay one-liners.  The registry's unit of
exchange is the *snapshot*: a plain JSON-friendly dict that pickles
cheaply, ships back from pool workers, merges into another registry
(:meth:`MetricsRegistry.merge`), and lands verbatim in run manifests.

Worker isolation uses :func:`scoped_registry`: the engine's traced task
wrapper swaps a fresh registry in around each task (in the worker
process — or in-process for the serial executor, which keeps the two
paths identical), snapshots it, and ships the delta home.  Increments
are a dict lookup plus an int add, so the instruments stay on
unconditionally; only the shipping is gated on tracing.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MaxGauge",
    "MetricsRegistry",
    "get_registry",
    "scoped_registry",
    "set_registry",
]

#: Seconds; tuned for per-stage latencies (sub-ms repair to multi-s simulate).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_dict(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins float (pool sizes, chunk sizes, scales)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def as_dict(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class MaxGauge:
    """A high-water mark: ``set`` keeps the maximum ever seen.

    Unlike :class:`Gauge` (last write wins), merging snapshots takes the
    max of the two values — the right semantics for RSS high-water marks
    shipped back from any number of pool workers.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = max(self.value, float(value))

    def as_dict(self) -> dict[str, Any]:
        return {"type": "max", "value": self.value}


class Histogram:
    """Cumulative-style histogram over fixed, sorted bucket boundaries.

    Bucket ``i`` counts observations ``v <= bounds[i]``; one overflow
    bucket catches the rest.  Fixed boundaries make worker snapshots
    mergeable by plain element-wise addition.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile from bucket counts."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for bound, n in zip(self.bounds, self.counts):
            seen += n
            if seen >= target:
                return bound
        return self.bounds[-1]  # in the overflow bucket: clamp to the last bound

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments with snapshot / reset / merge semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | MaxGauge | Histogram] = {}

    def _get(self, name: str, cls: type, factory: "Callable[[], Any]") -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def max_gauge(self, name: str) -> MaxGauge:
        return self._get(name, MaxGauge, MaxGauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(buckets))

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-friendly state of every instrument, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def reset(self) -> dict[str, dict[str, Any]]:
        """Snapshot, then drop every instrument; returns the snapshot."""
        snap = self.snapshot()
        self._metrics.clear()
        return snap

    def merge(self, snapshot: dict[str, dict[str, Any]]) -> None:
        """Fold a snapshot (e.g. shipped from a worker) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value.  Histogram boundaries must match exactly — mismatched
        buckets cannot be combined and raise ``ValueError``.
        """
        for name, data in snapshot.items():
            kind = data["type"]
            if kind == "counter":
                self.counter(name).inc(data["value"])
            elif kind == "gauge":
                self.gauge(name).set(data["value"])
            elif kind == "max":
                self.max_gauge(name).set(data["value"])
            elif kind == "histogram":
                hist = self.histogram(name, buckets=data["bounds"])
                if list(hist.bounds) != [float(b) for b in data["bounds"]]:
                    raise ValueError(
                        f"histogram {name!r} bucket mismatch: "
                        f"{list(hist.bounds)} != {data['bounds']}"
                    )
                hist.counts = [a + b for a, b in zip(hist.counts, data["counts"])]
                hist.sum += data["sum"]
                hist.count += data["count"]
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")


#: Process-wide registry the instrumentation points report into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


@contextmanager
def scoped_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) registry for the duration of the block."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
