"""Process resource sampling: RSS, CPU time, and tracemalloc deltas.

The paper's pipeline only works at 5.2M-block scale if memory stays
bounded and CPU is actually spent in kernels rather than in dispatch
overhead.  This module is the single place the repo reads those numbers
from the OS, so every consumer (per-stage accounting in
``core.stages``, per-run summaries in ``runtime.engine``, the progress
heartbeat) agrees on units and sources:

* current RSS from ``/proc/self/statm`` (falls back to the high-water
  mark on platforms without procfs);
* RSS high-water from ``resource.getrusage`` — note ``ru_maxrss`` is
  kilobytes on Linux and bytes on macOS, normalised here once;
* CPU seconds from ``time.process_time`` (whole process) and
  ``time.thread_time`` (calling thread, used for per-stage splits);
* optional Python-heap deltas from :mod:`tracemalloc`, sampled only
  when tracing is already active (``REPRO_TRACEMALLOC=1`` turns it on
  via :func:`maybe_start_tracemalloc` — it costs 2-4x on allocation
  heavy code, so it is never enabled implicitly).

Everything returned here is plain ints/floats so snapshots pickle
cheaply through the worker metric-shipping machinery.
"""

from __future__ import annotations

import os
import resource
import sys
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ResourceSnapshot",
    "ResourceTracker",
    "cpu_seconds",
    "format_bytes",
    "maybe_start_tracemalloc",
    "peak_rss_bytes",
    "rss_bytes",
    "thread_cpu_seconds",
]

#: ``ru_maxrss`` unit: kilobytes everywhere except macOS (bytes).
_RU_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def peak_rss_bytes() -> int:
    """Process RSS high-water mark in bytes (monotonic within a process)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_UNIT


def rss_bytes() -> int:
    """Current resident set size in bytes; peak RSS where procfs is absent."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return peak_rss_bytes()


def cpu_seconds() -> float:
    """CPU seconds (user+system) consumed by the whole process."""
    return time.process_time()


def thread_cpu_seconds() -> float:
    """CPU seconds consumed by the calling thread (per-stage attribution)."""
    return time.thread_time()


def maybe_start_tracemalloc() -> bool:
    """Start tracemalloc when ``REPRO_TRACEMALLOC`` is set; returns active state.

    Deliberately opt-in: tracing slows allocation-heavy code severely,
    so campaigns only pay for it when explicitly asked.
    """
    # lazy: obs is imported by core, so a module-level runtime import
    # would re-enter repro.runtime mid-initialisation
    from ..runtime import envconfig

    if tracemalloc.is_tracing():
        return True
    if not envconfig.get_bool("REPRO_TRACEMALLOC", False):
        return False
    tracemalloc.start()
    return True


@dataclass(frozen=True)
class ResourceSnapshot:
    """Point-in-time resource reading; all byte fields are bytes."""

    wall_s: float
    cpu_s: float
    rss_bytes: int
    rss_peak_bytes: int
    tracemalloc_current: int = 0
    tracemalloc_peak: int = 0

    @classmethod
    def now(cls) -> "ResourceSnapshot":
        current, peak = (
            tracemalloc.get_traced_memory() if tracemalloc.is_tracing() else (0, 0)
        )
        return cls(
            wall_s=time.perf_counter(),
            cpu_s=cpu_seconds(),
            rss_bytes=rss_bytes(),
            rss_peak_bytes=peak_rss_bytes(),
            tracemalloc_current=current,
            tracemalloc_peak=peak,
        )


class ResourceTracker:
    """Bracket a region of work and summarise what it cost.

    Usable as a context manager or via explicit :meth:`stop`; the
    summary is a JSON-friendly dict shaped for ``RunMetrics.resources``.
    """

    def __init__(self) -> None:
        self.start = ResourceSnapshot.now()
        self.end: ResourceSnapshot | None = None

    def __enter__(self) -> "ResourceTracker":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def stop(self) -> ResourceSnapshot:
        if self.end is None:
            self.end = ResourceSnapshot.now()
        return self.end

    def summary(self) -> dict[str, Any]:
        end = self.stop()
        wall_s = max(end.wall_s - self.start.wall_s, 0.0)
        cpu_s = max(end.cpu_s - self.start.cpu_s, 0.0)
        out: dict[str, Any] = {
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "cpu_utilization": (cpu_s / wall_s) if wall_s > 0 else 0.0,
            "rss_bytes": end.rss_bytes,
            "rss_peak_bytes": end.rss_peak_bytes,
            "rss_peak_delta_bytes": max(
                end.rss_peak_bytes - self.start.rss_peak_bytes, 0
            ),
        }
        if tracemalloc.is_tracing():
            out["tracemalloc"] = {
                "current_bytes": end.tracemalloc_current,
                "peak_bytes": end.tracemalloc_peak,
                "delta_bytes": end.tracemalloc_current - self.start.tracemalloc_current,
            }
        return out


def format_bytes(n: float) -> str:
    """Human-readable byte count (binary units, one decimal)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.0f} {unit}" if unit == "B" else f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TiB"
