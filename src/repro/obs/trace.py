"""Hierarchical tracing: spans for run -> campaign -> block -> stage.

A :class:`Tracer` records one :class:`SpanRecord` per closed span with a
process-unique id, its parent's id, a wall-clock start timestamp, and a
monotonic duration.  Nesting is ambient: ``tracer.span(...)`` uses the
innermost open span as the parent, so instrumentation points (the
engine, :class:`~repro.core.stages.StageContext`, jobs) never thread
span handles through call signatures — they ask :func:`get_tracer` for
the process-wide tracer, which is the zero-cost :data:`NOOP` singleton
unless a caller (the CLI's ``--trace``, a test) installed a real one.

Cross-process propagation: worker processes cannot append to the parent
tracer, so the engine wraps each task to build a *fragment* tracer whose
``root_parent_id`` is the campaign span; the fragment's finished spans
are shipped back with the result (they are frozen dataclasses, cheap to
pickle) and re-attached via :meth:`Tracer.adopt`.  Span ids are random,
so fragments from any number of workers merge without collisions.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "NOOP",
    "NoopTracer",
    "SpanRecord",
    "Tracer",
    "annotate",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanRecord:
    """One closed span; picklable and JSON-friendly via :meth:`as_dict`."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start_unix: float  # wall-clock epoch seconds at open
    wall_s: float  # monotonic duration
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_unix": self.start_unix,
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SpanRecord":
        return cls(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
            name=d["name"],
            start_unix=d["start_unix"],
            wall_s=d["wall_s"],
            attrs=dict(d.get("attrs") or {}),
        )


class _OpenSpan:
    """Mutable handle for a span that is still running."""

    __slots__ = ("span_id", "attrs")

    def __init__(self, span_id: str) -> None:
        self.span_id = span_id
        self.attrs: dict[str, Any] = {}

    def set(self, **attrs: Any) -> None:
        """Attach attributes; recorded when the span closes."""
        self.attrs.update(attrs)


class Tracer:
    """Records hierarchical spans for one trace (one process at a time).

    Parameters
    ----------
    trace_id:
        Shared id of every span in the trace; generated when omitted.
    root_parent_id:
        Parent id given to spans opened with no enclosing span — how a
        worker-side fragment attaches under the parent process's tree.
    """

    enabled = True

    def __init__(self, trace_id: str | None = None, root_parent_id: str | None = None) -> None:
        self.trace_id = trace_id or _new_id()
        self.root_parent_id = root_parent_id
        self.finished: list[SpanRecord] = []
        self._stack: list[_OpenSpan] = []
        self._tags: dict[str, Any] = {}

    @contextmanager
    def span(self, name: str, attrs: dict[str, Any] | None = None) -> Iterator[_OpenSpan]:
        """Open a child of the innermost open span (or the fragment root)."""
        parent = self._stack[-1].span_id if self._stack else self.root_parent_id
        open_span = _OpenSpan(_new_id())
        if attrs:
            open_span.attrs.update(attrs)
        self._stack.append(open_span)
        start_unix = time.time()
        start = time.perf_counter()
        try:
            yield open_span
        finally:
            wall_s = time.perf_counter() - start
            self._stack.pop()
            merged = dict(self._tags)
            merged.update(open_span.attrs)
            self.finished.append(
                SpanRecord(
                    trace_id=self.trace_id,
                    span_id=open_span.span_id,
                    parent_id=parent,
                    name=name,
                    start_unix=start_unix,
                    wall_s=wall_s,
                    attrs=merged,
                )
            )

    @contextmanager
    def tagged(self, **tags: Any) -> Iterator[None]:
        """Attach ``tags`` to every span closed inside the block.

        This is how experiment protocols label the campaign spans the
        engine opens on their behalf without threading attrs through.
        """
        saved = dict(self._tags)
        self._tags.update(tags)
        try:
            yield
        finally:
            self._tags = saved

    def annotate(self, **attrs: Any) -> None:
        """Set attributes on the innermost open span (no-op if none)."""
        if self._stack:
            self._stack[-1].set(**attrs)

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        """Attach spans recorded elsewhere (worker fragments) to this trace."""
        self.finished.extend(records)

    def emit(
        self, name: str, *, wall_s: float, attrs: dict[str, Any] | None = None
    ) -> None:
        """Record an already-measured span under the innermost open span.

        Batched stages run one computation for many blocks; each block
        emits its share of the measured wall time as a synthetic span so
        the span tree keeps its per-block shape (and per-stage span sums
        still match the recorded stage totals).
        """
        parent = self._stack[-1].span_id if self._stack else self.root_parent_id
        merged = dict(self._tags)
        if attrs:
            merged.update(attrs)
        self.finished.append(
            SpanRecord(
                trace_id=self.trace_id,
                span_id=_new_id(),
                parent_id=parent,
                name=name,
                start_unix=time.time() - wall_s,
                wall_s=wall_s,
                attrs=merged,
            )
        )

    @property
    def current_span_id(self) -> str | None:
        return self._stack[-1].span_id if self._stack else None


class _NoopSpanContext:
    """Singleton reusable context manager yielding a do-nothing handle."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpanContext":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpanContext()


class NoopTracer:
    """The disabled tracer: every operation is a constant-time no-op."""

    enabled = False
    trace_id = ""
    root_parent_id = None
    finished: tuple[SpanRecord, ...] = ()
    current_span_id = None

    def span(self, name: str, attrs: dict[str, Any] | None = None) -> _NoopSpanContext:
        return _NOOP_SPAN

    def tagged(self, **tags: Any) -> _NoopSpanContext:
        return _NOOP_SPAN

    def annotate(self, **attrs: Any) -> None:
        pass

    def adopt(self, records: Iterable[SpanRecord]) -> None:
        pass

    def emit(
        self, name: str, *, wall_s: float, attrs: dict[str, Any] | None = None
    ) -> None:
        pass


#: Process-wide default: tracing is off unless somebody installs a Tracer.
NOOP = NoopTracer()
_TRACER: Tracer | NoopTracer = NOOP


def get_tracer() -> Tracer | NoopTracer:
    """The ambient tracer instrumentation points report into."""
    return _TRACER


def set_tracer(tracer: Tracer | NoopTracer) -> Tracer | NoopTracer:
    """Install ``tracer`` process-wide; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer | NoopTracer) -> Iterator[Tracer | NoopTracer]:
    """Scoped :func:`set_tracer` (restores the previous tracer on exit)."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def annotate(**attrs: Any) -> None:
    """Set attributes on the ambient tracer's innermost open span."""
    _TRACER.annotate(**attrs)
