"""Telemetry for the campaign engine: tracing, metrics, durable sinks.

Three pillars (see docs/algorithms.md, "Observability"):

* :mod:`repro.obs.trace` — hierarchical spans
  (run -> campaign -> block -> stage) recorded by an ambient
  :class:`~repro.obs.trace.Tracer`; the default is a zero-cost no-op,
  and worker-process span fragments ship home with task results;
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms with
  snapshot / reset / merge semantics (worker snapshots fold into the
  parent's registry);
* :mod:`repro.obs.sinks` — JSONL span/metrics writers plus a ``run.json``
  manifest so any experiment run is reconstructable after the fact
  (``repro --trace DIR`` to write, ``repro report DIR`` to re-render).
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MaxGauge,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from .progress import (
    NoopProgress,
    ProgressEmitter,
    default_progress,
    get_progress,
    set_progress,
    use_progress,
)
from .resources import (
    ResourceSnapshot,
    ResourceTracker,
    cpu_seconds,
    format_bytes,
    maybe_start_tracemalloc,
    peak_rss_bytes,
    rss_bytes,
    thread_cpu_seconds,
)
from .trace import (
    NOOP,
    NoopTracer,
    SpanRecord,
    Tracer,
    annotate,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .sinks import SavedRun, git_describe, load_run, render_report, write_run

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MaxGauge",
    "MetricsRegistry",
    "NOOP",
    "NoopProgress",
    "NoopTracer",
    "ProgressEmitter",
    "ResourceSnapshot",
    "ResourceTracker",
    "SavedRun",
    "SpanRecord",
    "Tracer",
    "annotate",
    "cpu_seconds",
    "default_progress",
    "format_bytes",
    "get_progress",
    "get_registry",
    "get_tracer",
    "git_describe",
    "load_run",
    "maybe_start_tracemalloc",
    "peak_rss_bytes",
    "render_report",
    "rss_bytes",
    "scoped_registry",
    "set_progress",
    "set_registry",
    "set_tracer",
    "thread_cpu_seconds",
    "use_progress",
    "use_tracer",
    "write_run",
]
