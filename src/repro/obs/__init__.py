"""Telemetry for the campaign engine: tracing, metrics, durable sinks.

Three pillars (see docs/algorithms.md, "Observability"):

* :mod:`repro.obs.trace` — hierarchical spans
  (run -> campaign -> block -> stage) recorded by an ambient
  :class:`~repro.obs.trace.Tracer`; the default is a zero-cost no-op,
  and worker-process span fragments ship home with task results;
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges, and fixed-bucket histograms with
  snapshot / reset / merge semantics (worker snapshots fold into the
  parent's registry);
* :mod:`repro.obs.sinks` — JSONL span/metrics writers plus a ``run.json``
  manifest so any experiment run is reconstructable after the fact
  (``repro --trace DIR`` to write, ``repro report DIR`` to re-render).
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    scoped_registry,
    set_registry,
)
from .trace import (
    NOOP,
    NoopTracer,
    SpanRecord,
    Tracer,
    annotate,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .sinks import SavedRun, git_describe, load_run, render_report, write_run

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NoopTracer",
    "SavedRun",
    "SpanRecord",
    "Tracer",
    "annotate",
    "get_registry",
    "get_tracer",
    "git_describe",
    "load_run",
    "render_report",
    "scoped_registry",
    "set_registry",
    "set_tracer",
    "use_tracer",
    "write_run",
]
