"""Durable telemetry: JSONL span/metrics files plus a run manifest.

One traced run writes three files into its trace directory:

``spans.jsonl``
    One :class:`~repro.obs.trace.SpanRecord` per line, the whole span
    tree (run -> campaign -> block -> stage) in completion order.
``metrics.jsonl``
    One :class:`~repro.runtime.engine.RunMetrics` dict per engine run,
    in run order — everything ``repro --metrics`` prints, durably.
``run.json``
    The manifest: what ran, at what scale, on which code (git describe),
    how long it took, and the merged funnel — enough to reconstruct the
    experiment setup without re-running anything.

:func:`load_run` reads all three back; :func:`render_report` re-renders
the saved stage tables and funnels from disk (``repro report DIR``).
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

from .trace import SpanRecord, Tracer

if TYPE_CHECKING:  # runtime.engine imports obs.*; keep the cycle type-only
    from ..runtime.engine import RunMetrics

__all__ = [
    "MANIFEST_FILE",
    "METRICS_FILE",
    "SPANS_FILE",
    "SavedRun",
    "git_describe",
    "load_run",
    "render_report",
    "write_run",
]

SPANS_FILE = "spans.jsonl"
METRICS_FILE = "metrics.jsonl"
MANIFEST_FILE = "run.json"

#: Sink failures warn once per process: a campaign that outlives its
#: trace directory (unmounted disk, cleaned tmpdir) must keep running,
#: and repeating the warning per record would bury the real output.
_SINK_WARNED = False


def _warn_sink_failure(path: Path, exc: OSError) -> None:
    global _SINK_WARNED
    if _SINK_WARNED:
        return
    _SINK_WARNED = True
    warnings.warn(
        f"trace sink {path} unwritable ({exc}); telemetry for this run is incomplete",
        RuntimeWarning,
        stacklevel=3,
    )


def _write_jsonl(path: Path, records: Iterable[dict[str, Any]], *, sort_keys: bool) -> None:
    """Write one JSON object per line, flushing per record.

    Per-record flushes mean a crash mid-write loses at most the line in
    flight, and an external tail sees records as they land.
    """
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=sort_keys) + "\n")
            fh.flush()


def git_describe(cwd: str | Path | None = None) -> str | None:
    """``git describe --always --dirty`` of the source tree, or ``None``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=str(cwd) if cwd is not None else os.path.dirname(__file__),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def _merged_funnel(runs: list["RunMetrics"]) -> dict[str, int]:
    """Key-wise sum of per-run funnels (runs without a funnel contribute 0)."""
    funnel: dict[str, int] = {}
    for metrics in runs:
        for key, n in metrics.funnel.items():
            funnel[key] = funnel.get(key, 0) + n
    return funnel


def write_run(
    directory: str | Path,
    *,
    tracer: Tracer,
    runs: list["RunMetrics"],
    label: str,
    meters: dict[str, Any] | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write spans, per-run metrics, and the manifest; returns the dir.

    Best-effort: an unwritable or removed directory warns once per
    process and returns (the campaign's results matter more than its
    telemetry); the manifest is written atomically (tmp + rename) so a
    reader never sees a truncated ``run.json``.
    """
    out = Path(directory)
    try:
        out.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        _warn_sink_failure(out, exc)
        return out

    try:
        _write_jsonl(
            out / SPANS_FILE,
            (span.as_dict() for span in tracer.finished),
            sort_keys=True,
        )
        # no sort_keys here: funnel/stage dict order is the display order,
        # and a reloaded report must render byte-identically to the live one
        _write_jsonl(
            out / METRICS_FILE,
            (metrics.as_dict() for metrics in runs),
            sort_keys=False,
        )
    except OSError as exc:
        _warn_sink_failure(out, exc)
        return out

    # lazy: obs is imported by core, so a module-level runtime import
    # would re-enter repro.runtime mid-initialisation
    from ..runtime import envconfig

    manifest: dict[str, Any] = {
        "label": label,
        "created_unix": time.time(),
        "trace_id": tracer.trace_id,
        "git": git_describe(),
        "env": {
            "REPRO_SCALE": envconfig.peek("REPRO_SCALE"),
            "REPRO_WORKERS": envconfig.peek("REPRO_WORKERS"),
        },
        "executors": sorted({m.executor for m in runs}),
        "wall_s": sum(m.wall_s for m in runs),
        "n_engine_runs": len(runs),
        "n_spans": len(tracer.finished),
        "funnel": _merged_funnel(runs),
        "runs": [
            {
                "label": m.label,
                "executor": m.executor,
                "n_tasks": m.n_tasks,
                "wall_s": m.wall_s,
                "funnel": dict(m.funnel),
            }
            for m in runs
        ],
        "meters": meters or {},
    }
    if extra:
        manifest.update(extra)
    try:
        fd, tmp = tempfile.mkstemp(dir=out, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(manifest, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, out / MANIFEST_FILE)  # atomic publish
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except OSError as exc:
        _warn_sink_failure(out, exc)
    return out


@dataclass
class SavedRun:
    """A traced run loaded back from disk."""

    directory: Path
    manifest: dict[str, Any]
    spans: list[SpanRecord] = field(default_factory=list)
    runs: list["RunMetrics"] = field(default_factory=list)

    def span_children(self) -> dict[str | None, list[SpanRecord]]:
        """Spans grouped by parent id (``None`` holds the roots)."""
        children: dict[str | None, list[SpanRecord]] = {}
        for span in self.spans:
            children.setdefault(span.parent_id, []).append(span)
        return children


def load_run(directory: str | Path) -> SavedRun:
    """Read a trace directory back into memory.

    The manifest is required; span and metrics files are optional (an
    interrupted run may have written only some of them).
    """
    from ..runtime.engine import RunMetrics  # deferred: engine imports obs

    out = Path(directory)
    manifest_path = out / MANIFEST_FILE
    if not manifest_path.is_file():
        raise FileNotFoundError(f"no {MANIFEST_FILE} in {out}/ — not a trace directory")
    with open(manifest_path, encoding="utf-8") as fh:
        manifest = json.load(fh)

    saved = SavedRun(directory=out, manifest=manifest)
    spans_path = out / SPANS_FILE
    if spans_path.is_file():
        with open(spans_path, encoding="utf-8") as fh:
            saved.spans = [SpanRecord.from_dict(json.loads(line)) for line in fh if line.strip()]
    metrics_path = out / METRICS_FILE
    if metrics_path.is_file():
        with open(metrics_path, encoding="utf-8") as fh:
            saved.runs = [RunMetrics.from_dict(json.loads(line)) for line in fh if line.strip()]
    return saved


def render_report(saved: SavedRun) -> str:
    """Re-render a saved run: manifest header, then each stage table.

    The tables come from the reconstructed
    :class:`~repro.runtime.engine.RunMetrics`, so they are identical to
    what ``--metrics`` printed live — no recomputation happens here.
    """
    m = saved.manifest
    env = m.get("env") or {}
    header = [
        f"run {m.get('label')!r}  trace={m.get('trace_id')}",
        "  "
        + "  ".join(
            f"{key}={value}"
            for key, value in (
                ("git", m.get("git") or "?"),
                ("REPRO_SCALE", env.get("REPRO_SCALE") or "-"),
                ("REPRO_WORKERS", env.get("REPRO_WORKERS") or "-"),
                ("wall_s", f"{m.get('wall_s', 0.0):.2f}"),
                ("spans", m.get("n_spans", len(saved.spans))),
            )
        ),
    ]
    if m.get("funnel"):
        header.append(
            "  funnel: " + "  ".join(f"{k}={v}" for k, v in m["funnel"].items())
        )
    blocks = ["\n".join(header)]
    blocks.extend(metrics.report() for metrics in saved.runs)
    return "\n\n".join(blocks)
