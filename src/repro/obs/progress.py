"""Live campaign heartbeat: periodic ``progress.jsonl`` records.

Long campaigns (the paper's is 5.2M blocks) are opaque while running:
``--metrics`` reports only after the fact.  The progress plane appends
one JSON object per heartbeat to ``DIR/progress.jsonl`` so an operator
(or a supervisor process) can tail throughput, ETA, and memory without
attaching to the process:

``{"t_unix": ..., "event": "start|tick|finish", "label": "fig3",
  "done": 120, "total": 512, "blocks_per_sec": 41.2, "eta_s": 9.5,
  "rss_bytes": ..., "rss_peak_bytes": ..., "cache_hit_rate": 0.25}``

Design constraints, in order:

* **Never break the campaign.**  Any ``OSError`` on the sink disables
  the emitter after a single warning; records are best-effort.
* **Never touch result bytes.**  The emitter observes completion counts
  only; serial/parallel/batched byte-identity is unaffected.
* **Cheap when off.**  The ambient default is :class:`NoopProgress`
  whose methods are empty; the per-result hook is one attribute call.

The ambient emitter mirrors the tracer pattern (:func:`get_progress` /
:func:`set_progress` / :func:`use_progress`); the CLI installs one from
``--progress DIR`` or ``REPRO_PROGRESS`` via :func:`default_progress`.
``REPRO_PROGRESS_INTERVAL`` (seconds, default 2) rate-limits mid-run
ticks; start and finish records always emit, so every engine run leaves
at least two heartbeats.

Sharded campaigns (``--shards N``) wrap their per-shard sub-runs in
:meth:`ProgressEmitter.campaign_scope` / :meth:`~ProgressEmitter.shard_scope`,
so every record inside carries ``shard``/``shards`` plus campaign-global
``campaign_done``/``campaign_total`` and a campaign-rate ETA — the
per-shard ``done``/``total`` alone would otherwise make throughput look
like it reset at each shard boundary.  Each shard's force-emitted finish
record doubles as the per-shard completion marker.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .resources import peak_rss_bytes, rss_bytes

__all__ = [
    "NoopProgress",
    "ProgressEmitter",
    "default_progress",
    "get_progress",
    "set_progress",
    "use_progress",
]


class NoopProgress:
    """Inert emitter: the ambient default writes nothing, ever."""

    def begin(
        self,
        label: str,
        total: int,
        *,
        done: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        pass

    def tick(self, weight: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass

    @contextmanager
    def campaign_scope(self, label: str, *, total: int, n_shards: int) -> Iterator[None]:
        yield

    @contextmanager
    def shard_scope(self, index: int, done_offset: int) -> Iterator[None]:
        yield


class ProgressEmitter(NoopProgress):
    """Append heartbeat records to ``directory/progress.jsonl``.

    One emitter instance serves consecutive engine runs (a fig3 campaign
    runs two); each run brackets itself with :meth:`begin`/:meth:`finish`
    and reports per-result completion through :meth:`tick`.  Emission
    uses open-append-close per record so a crash never loses more than
    the in-flight line and external rotation of the file is safe.
    """

    def __init__(self, directory: "str | os.PathLike[str]", *, interval_s: float = 2.0) -> None:
        self.directory = Path(directory)
        self.interval_s = max(float(interval_s), 0.0)
        self._disabled = False
        self._label = ""
        self._total = 0
        self._done = 0
        self._started_at = 0.0
        self._started_done = 0
        self._last_emit = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._campaign: dict[str, Any] | None = None
        self._shard: int | None = None
        self._shard_offset = 0

    @property
    def path(self) -> Path:
        return self.directory / "progress.jsonl"

    # -- engine-facing hooks ---------------------------------------------
    def begin(
        self,
        label: str,
        total: int,
        *,
        done: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        self._label = label
        self._total = int(total)
        self._done = int(done)
        self._started_at = time.perf_counter()
        self._started_done = self._done
        self._cache_hits = int(cache_hits)
        self._cache_misses = int(cache_misses)
        self._emit("start", force=True)

    def tick(self, weight: int = 1) -> None:
        if weight:
            self._done += int(weight)
        self._emit("tick")

    def finish(self) -> None:
        self._emit("finish", force=True)

    @contextmanager
    def campaign_scope(self, label: str, *, total: int, n_shards: int) -> Iterator[None]:
        """Bracket a sharded campaign so per-shard runs report globally.

        Inside the scope, every record carries the shard id plus
        campaign-wide ``campaign_done``/``campaign_total`` and a
        campaign-rate ETA, so tailing operators see truthful global
        throughput even though each shard brackets its own sub-run.
        """
        self._campaign = {
            "label": label,
            "total": int(total),
            "shards": int(n_shards),
            "started": time.perf_counter(),
        }
        try:
            yield
        finally:
            self._campaign = None
            self._shard = None
            self._shard_offset = 0

    @contextmanager
    def shard_scope(self, index: int, done_offset: int) -> Iterator[None]:
        """Tag records with the active shard; ``done_offset`` is the
        count of tasks completed by all earlier shards."""
        self._shard = int(index)
        self._shard_offset = int(done_offset)
        try:
            yield
        finally:
            self._shard = None

    # -- internals -------------------------------------------------------
    def _record(self, event: str) -> dict[str, Any]:
        elapsed = time.perf_counter() - self._started_at
        completed = self._done - self._started_done
        rate = (completed / elapsed) if elapsed > 0 else 0.0
        remaining = max(self._total - self._done, 0)
        consulted = self._cache_hits + self._cache_misses
        record = {
            "t_unix": time.time(),
            "event": event,
            "label": self._label,
            "done": self._done,
            "total": self._total,
            "blocks_per_sec": round(rate, 3),
            "eta_s": round(remaining / rate, 3) if rate > 0 else None,
            "rss_bytes": rss_bytes(),
            "rss_peak_bytes": peak_rss_bytes(),
            "cache_hit_rate": round(self._cache_hits / consulted, 4) if consulted else None,
        }
        if self._campaign is not None:
            campaign_done = self._shard_offset + self._done
            campaign_total = self._campaign["total"]
            campaign_elapsed = time.perf_counter() - self._campaign["started"]
            campaign_rate = campaign_done / campaign_elapsed if campaign_elapsed > 0 else 0.0
            campaign_left = max(campaign_total - campaign_done, 0)
            record["shard"] = self._shard
            record["shards"] = self._campaign["shards"]
            record["campaign_done"] = campaign_done
            record["campaign_total"] = campaign_total
            record["campaign_blocks_per_sec"] = round(campaign_rate, 3)
            record["campaign_eta_s"] = (
                round(campaign_left / campaign_rate, 3) if campaign_rate > 0 else None
            )
        return record

    def _emit(self, event: str, *, force: bool = False) -> None:
        if self._disabled:
            return
        now = time.perf_counter()
        if not force and (now - self._last_emit) < self.interval_s:
            return
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(self._record(event)) + "\n")
                fh.flush()
        except OSError as exc:
            self._disabled = True
            warnings.warn(
                f"progress sink {self.path} unwritable ({exc}); "
                "heartbeats disabled for the rest of this run",
                RuntimeWarning,
                stacklevel=3,
            )
            return
        self._last_emit = now


#: Ambient emitter the engine reports through; a no-op unless installed.
_PROGRESS: NoopProgress = NoopProgress()


def get_progress() -> NoopProgress:
    return _PROGRESS


def set_progress(emitter: NoopProgress) -> NoopProgress:
    """Install ``emitter`` process-wide; returns the previous one."""
    global _PROGRESS
    previous = _PROGRESS
    _PROGRESS = emitter
    return previous


@contextmanager
def use_progress(emitter: NoopProgress) -> Iterator[NoopProgress]:
    previous = set_progress(emitter)
    try:
        yield emitter
    finally:
        set_progress(previous)


def default_progress() -> NoopProgress:
    """Emitter selected by the environment: ``REPRO_PROGRESS`` names the
    sink directory, ``REPRO_PROGRESS_INTERVAL`` the tick period."""
    # lazy: obs is imported by core, so a module-level runtime import
    # would re-enter repro.runtime mid-initialisation
    from ..runtime import envconfig

    raw = envconfig.raw("REPRO_PROGRESS")
    if not raw:
        return NoopProgress()
    interval = envconfig.get_float("REPRO_PROGRESS_INTERVAL", 2.0)
    return ProgressEmitter(raw, interval_s=interval)
