"""Central registry of metric instrument names (REP005).

Every ``counter``/``gauge``/``histogram`` call site in ``src/repro``
must name its instrument with either

* a **literal string** listed in :data:`METRICS`, or
* a call to :func:`metric_name` whose first argument is a literal
  family from :data:`METRIC_FAMILIES`.

The ``repro lint`` rule REP005 enforces this statically by parsing this
module, so a new instrument is a one-line registration here — and a
typo'd or ad-hoc f-string name fails CI instead of silently forking a
metric family.  Keeping the names in one place is what makes dashboards
and the run-manifest schema greppable: ``git grep probes.sent`` finds
the producer, this registry, and every consumer.
"""

from __future__ import annotations

__all__ = ["METRICS", "METRIC_FAMILIES", "metric_name"]

#: Every statically-named instrument in the codebase.  Sorted; one name
#: per line so diffs stay reviewable.
METRICS = frozenset(
    {
        "blocks.analyzed",
        "blocks.firewalled",
        "cache.bytes.at_rest",
        "cache.bytes.hit",
        "cache.bytes.store",
        "cache.hit",
        "cache.miss",
        "cache.store",
        "engine.batched.blocks",
        "engine.batched.chunks",
        "engine.batched.groups",
        "engine.run_wall_s",
        "engine.shards",
        "engine.tasks",
        "executor.chunk_size",
        "executor.fallbacks",
        "executor.payload.result_bytes",
        "executor.payload.shm_bytes",
        "executor.payload.task_bytes",
        "executor.pool_spawns",
        "executor.pool_workers",
        "resources.cpu_s",
        "resources.rss_peak_bytes",
        "resources.worker.cpu_s",
        "resources.worker.rss_peak_bytes",
        "spill.bytes.written",
    }
)

#: Dotted prefixes of instruments whose tail is data-dependent (an
#: observer letter, a pipeline stage, a funnel key).  Dynamic names are
#: built through :func:`metric_name` so the family itself stays a
#: checked literal.
METRIC_FAMILIES = frozenset(
    {
        "funnel",
        "probes.positive",
        "probes.sent",
        "stage",
    }
)


def metric_name(family: str, *parts: str) -> str:
    """Build ``family.part[.part...]`` after checking the family is registered.

    Raises ``ValueError`` for an unregistered family or an empty tail, so
    a name that would dodge the static check also fails at runtime.
    """
    if family not in METRIC_FAMILIES:
        raise ValueError(
            f"metric family {family!r} is not registered in repro.obs.names"
        )
    if not parts:
        raise ValueError(f"metric family {family!r} used without a tail")
    return ".".join((family, *parts))
