"""The per-block end-to-end pipeline (paper Table 1).

``probe logs -> 1-loss repair -> merge -> reconstruction ->
change-sensitivity -> STL trend -> CUSUM changes``.

:class:`BlockPipeline` is the public entry point a downstream user calls
with per-observer probe logs; every stage is configurable and all stage
outputs are kept on the result for inspection (the example scripts and
the Figure 1 experiment print them).

Each stage is individually invokable (``stage_repair`` ...
``stage_detect``) and reports wall time, input/output sizes, and skip
reasons into an optional :class:`~repro.core.stages.StageContext`;
:meth:`BlockPipeline.analyze` is the canonical composition of the six
stages and the runtime's :class:`~repro.runtime.engine.CampaignEngine`
aggregates the per-stage records across blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

import numpy as np

from ..net.observations import ObservationSeries
from ..net.usage import ROUND_SECONDS
from ..obs.resources import peak_rss_bytes, thread_cpu_seconds
from ..timeseries.detect import zscore_rows
from ..timeseries.series import BlockMatrix, TimeSeries, group_block_matrices
from .changes import ChangeDetector, ChangeReport
from .combine import combine_observers
from .outages import OutageDetector, corroborate_changes
from .reconstruction import Reconstruction, reconstruct
from .repair import one_loss_repair
from .sensitivity import BlockClassification, SensitivityClassifier
from .stages import StageContext
from .trend import MIN_ABS_SCALE, MIN_REL_SCALE, TrendExtractor, TrendResult

__all__ = ["BlockAnalysis", "BlockPipeline"]


class _StageShares(NamedTuple):
    """One block's even share of a batched stage's measured cost."""

    wall_s: float
    cpu_s: float
    rss_delta: int


class _BatchMeter:
    """Wall/CPU/RSS-high-water cost of one batched stage, split per block.

    The batched path attributes an even ``1/n`` share of the batch's
    cost to every member block so aggregated stage totals stay shaped
    like the per-block path's (where each block is measured directly).
    """

    __slots__ = ("_rss", "_cpu", "_wall")

    def __init__(self) -> None:
        self._rss = peak_rss_bytes()
        self._cpu = thread_cpu_seconds()
        self._wall = time.perf_counter()

    def shares(self, n: int) -> _StageShares:
        wall = time.perf_counter() - self._wall
        cpu = thread_cpu_seconds() - self._cpu
        rss = max(peak_rss_bytes() - self._rss, 0)
        return _StageShares(wall_s=wall / n, cpu_s=cpu / n, rss_delta=rss // n)


@dataclass(frozen=True)
class BlockAnalysis:
    """Everything the pipeline learned about one block."""

    reconstruction: Reconstruction
    classification: BlockClassification
    trend: TrendResult | None
    changes: ChangeReport | None

    @property
    def is_change_sensitive(self) -> bool:
        return self.classification.is_change_sensitive

    @property
    def counts(self) -> TimeSeries:
        return self.reconstruction.counts

    def downward_change_days(self) -> tuple[int, ...]:
        """UTC days with human-candidate downward changes."""
        if self.changes is None:
            return ()
        return tuple(e.day for e in self.changes.human_candidates if e.is_downward)

    def upward_change_days(self) -> tuple[int, ...]:
        if self.changes is None:
            return ()
        return tuple(e.day for e in self.changes.human_candidates if not e.is_downward)


@dataclass(frozen=True)
class BlockPipeline:
    """Configured analysis pipeline for /24 blocks.

    Parameters
    ----------
    apply_repair:
        Run 1-loss repair on each observer's log before merging (§2.3).
    classifier, trend_extractor, detector:
        The three analysis stages; defaults follow the paper.
    detect_on_all:
        When False (the paper's behaviour) trend extraction and change
        detection run only on change-sensitive blocks; True forces them
        on every responsive block (useful for validation studies).
    corroborate_outages:
        Run the §2.6 cross-check: detect outages on the reconstructed
        counts and re-label overlapping change events as
        "outage-confirmed".  Off by default — the paired down/up filter
        already covers most cases; turn it on when the outage evidence
        should be explicit.
    sample_seconds:
        Grid step for the reconstructed count series.
    """

    apply_repair: bool = True
    classifier: SensitivityClassifier = field(default_factory=SensitivityClassifier)
    trend_extractor: TrendExtractor = field(default_factory=TrendExtractor)
    detector: ChangeDetector = field(default_factory=ChangeDetector)
    outage_detector: OutageDetector = field(default_factory=OutageDetector)
    detect_on_all: bool = False
    corroborate_outages: bool = False
    sample_seconds: float = ROUND_SECONDS

    # -- stages ------------------------------------------------------------
    # Each stage can be called on its own (validation studies poke at
    # intermediate products) and records itself into ``ctx`` when given.

    def stage_repair(
        self, per_observer: list[ObservationSeries], ctx: StageContext | None = None
    ) -> list[ObservationSeries]:
        """1-loss repair of each observer's probe log (§2.3)."""
        ctx = ctx if ctx is not None else StageContext()
        n_in = sum(len(s) for s in per_observer)
        if not self.apply_repair:
            ctx.skip("repair", "disabled", n_in=n_in)
            return per_observer
        with ctx.stage("repair", n_in=n_in) as active:
            repaired = [one_loss_repair(s) for s in per_observer]
            active.n_out = sum(len(s) for s in repaired)
        return repaired

    def stage_combine(
        self, per_observer: list[ObservationSeries], ctx: StageContext | None = None
    ) -> ObservationSeries:
        """Merge per-observer logs into one time-ordered stream (§2.4)."""
        ctx = ctx if ctx is not None else StageContext()
        with ctx.stage("combine", n_in=sum(len(s) for s in per_observer)) as active:
            merged = combine_observers(per_observer)
            active.n_out = len(merged)
        return merged

    def stage_reconstruct(
        self,
        merged: ObservationSeries,
        eb_addresses: np.ndarray,
        sample_times: np.ndarray | None = None,
        ctx: StageContext | None = None,
    ) -> Reconstruction:
        """Hold-last-state count reconstruction over E(b) (§2.3)."""
        ctx = ctx if ctx is not None else StageContext()
        with ctx.stage("reconstruct", n_in=len(merged)) as active:
            if sample_times is None:
                sample_times = self._default_grid(merged)
            recon = reconstruct(merged, eb_addresses, sample_times)
            active.n_out = len(recon.counts)
        return recon

    def stage_classify(
        self, recon: Reconstruction, ctx: StageContext | None = None
    ) -> BlockClassification:
        """Change-sensitivity funnel: responsive -> diurnal -> wide swing."""
        ctx = ctx if ctx is not None else StageContext()
        with ctx.stage("classify", n_in=len(recon.counts)) as active:
            classification = self.classifier.classify(recon.counts)
            active.n_out = int(classification.is_change_sensitive)
        return classification

    def stage_trend(
        self,
        recon: Reconstruction,
        classification: BlockClassification,
        ctx: StageContext | None = None,
    ) -> TrendResult | None:
        """STL trend extraction (§2.5) for blocks that pass the funnel."""
        ctx = ctx if ctx is not None else StageContext()
        n_in = len(recon.counts)
        if not self._should_detect(classification):
            reason = (
                "not-responsive"
                if not classification.responsive
                else "not-change-sensitive"
            )
            ctx.skip("trend", reason, n_in=n_in)
            return None
        with ctx.stage("trend", n_in=n_in) as active:
            try:
                trend = self.trend_extractor.extract(recon.counts)
            except ValueError:
                trend = None
            active.n_out = len(trend.trend) if trend is not None else 0
        return trend

    def stage_detect(
        self,
        recon: Reconstruction,
        trend: TrendResult | None,
        ctx: StageContext | None = None,
    ) -> ChangeReport | None:
        """CUSUM change detection (§2.6) on the normalized trend."""
        ctx = ctx if ctx is not None else StageContext()
        if trend is None:
            ctx.skip("detect", "no-trend")
            return None
        with ctx.stage("detect", n_in=len(trend.normalized_trend)) as active:
            changes = self.detector.detect(trend.normalized_trend)
            if self.corroborate_outages and changes is not None:
                outages = self.outage_detector.detect(recon.counts)
                changes = ChangeReport(
                    events=corroborate_changes(changes.events, outages),
                    cusum=changes.cusum,
                    normalized_trend=changes.normalized_trend,
                )
            active.n_out = len(changes.events) if changes is not None else 0
        return changes

    # -- composition -------------------------------------------------------
    def analyze(
        self,
        per_observer: list[ObservationSeries],
        eb_addresses: np.ndarray,
        *,
        sample_times: np.ndarray | None = None,
        ctx: StageContext | None = None,
    ) -> BlockAnalysis:
        """Run the full pipeline over one block's per-observer probe logs."""
        ctx = ctx if ctx is not None else StageContext()
        per_observer = self.stage_repair(per_observer, ctx)
        merged = self.stage_combine(per_observer, ctx)
        recon = self.stage_reconstruct(merged, eb_addresses, sample_times, ctx)
        return self.analyze_tail(recon, ctx)

    def analyze_tail(
        self, recon: Reconstruction, ctx: StageContext | None = None
    ) -> BlockAnalysis:
        """Run the analysis stages (classify/trend/detect) on a reconstruction."""
        ctx = ctx if ctx is not None else StageContext()
        classification = self.stage_classify(recon, ctx)
        trend = self.stage_trend(recon, classification, ctx)
        changes = self.stage_detect(recon, trend, ctx)
        return BlockAnalysis(
            reconstruction=recon,
            classification=classification,
            trend=trend,
            changes=changes,
        )

    def analyze_tail_batch(
        self,
        recons: Sequence[Reconstruction],
        ctxs: Sequence[StageContext] | None = None,
    ) -> list[BlockAnalysis]:
        """Batched classify/trend/detect across many reconstructions.

        Blocks are grouped by shared sample grid into :class:`BlockMatrix`
        batches; every analysis stage then runs once per batch through the
        batched kernels, which are per-row bit-identical to the scalar
        path, so each returned :class:`BlockAnalysis` equals
        ``analyze_tail(recons[i])`` byte for byte.  Per-block stage records
        carry the block's true input/output sizes and an even share of the
        batch wall time (``batch_wall / B``), keeping aggregated stage
        totals, skip counters, and traced span accounting shaped exactly
        like the per-block path's.
        """
        if ctxs is None:
            ctxs = [StageContext() for _ in recons]
        if len(ctxs) != len(recons):
            raise ValueError("need one StageContext per reconstruction")
        analyses: list[BlockAnalysis | None] = [None] * len(recons)
        for indices, matrix in group_block_matrices([r.counts for r in recons]):
            n_batch = len(indices)
            meter = _BatchMeter()
            classifications = self.classifier.classify_batch(matrix)
            share = meter.shares(n_batch)
            for pos, i in enumerate(indices):
                ctxs[i].record_batched(
                    "classify",
                    wall_s=share.wall_s,
                    n_in=matrix.n_samples,
                    n_out=int(classifications[pos].is_change_sensitive),
                    n_batch=n_batch,
                    cpu_s=share.cpu_s,
                    rss_delta=share.rss_delta,
                )

            selected = [
                pos
                for pos in range(n_batch)
                if self._should_detect(classifications[pos])
            ]
            selected_set = set(selected)
            trends: list[TrendResult | None] = [None] * n_batch
            for pos in range(n_batch):
                if pos in selected_set:
                    continue
                reason = (
                    "not-responsive"
                    if not classifications[pos].responsive
                    else "not-change-sensitive"
                )
                ctxs[indices[pos]].skip("trend", reason, n_in=matrix.n_samples)
            if selected:
                meter = _BatchMeter()
                extracted = self.trend_extractor.extract_batch(matrix.take(selected))
                share = meter.shares(len(selected))
                for k, pos in enumerate(selected):
                    trends[pos] = extracted[k]
                    ctxs[indices[pos]].record_batched(
                        "trend",
                        wall_s=share.wall_s,
                        n_in=matrix.n_samples,
                        n_out=len(extracted[k].trend) if extracted[k] is not None else 0,
                        n_batch=len(selected),
                        cpu_s=share.cpu_s,
                        rss_delta=share.rss_delta,
                    )

            with_trend = [pos for pos in selected if trends[pos] is not None]
            changes: list[ChangeReport | None] = [None] * n_batch
            for pos in range(n_batch):
                if trends[pos] is None:
                    ctxs[indices[pos]].skip("detect", "no-trend")
            if with_trend:
                meter = _BatchMeter()
                stacked = np.stack([trends[pos].trend.values for pos in with_trend])
                normalized = BlockMatrix(
                    trends[with_trend[0]].trend.times,
                    zscore_rows(
                        stacked,
                        min_abs_scale=MIN_ABS_SCALE,
                        min_rel_scale=MIN_REL_SCALE,
                    ),
                )
                reports = self.detector.detect_batch(normalized)
                if self.corroborate_outages:
                    reports = [
                        ChangeReport(
                            events=corroborate_changes(
                                report.events,
                                self.outage_detector.detect(
                                    recons[indices[pos]].counts
                                ),
                            ),
                            cusum=report.cusum,
                            normalized_trend=report.normalized_trend,
                        )
                        for pos, report in zip(with_trend, reports)
                    ]
                share = meter.shares(len(with_trend))
                for k, pos in enumerate(with_trend):
                    changes[pos] = reports[k]
                    ctxs[indices[pos]].record_batched(
                        "detect",
                        wall_s=share.wall_s,
                        n_in=len(reports[k].normalized_trend),
                        n_out=len(reports[k].events),
                        n_batch=len(with_trend),
                        cpu_s=share.cpu_s,
                        rss_delta=share.rss_delta,
                    )

            for pos, i in enumerate(indices):
                analyses[i] = BlockAnalysis(
                    reconstruction=recons[i],
                    classification=classifications[pos],
                    trend=trends[pos],
                    changes=changes[pos],
                )
        return analyses  # every index was covered by exactly one grid group

    def _should_detect(self, classification: BlockClassification) -> bool:
        return classification.is_change_sensitive or (
            self.detect_on_all and classification.responsive
        )

    def _default_grid(self, merged: ObservationSeries) -> np.ndarray:
        if merged.is_empty:
            return np.array([], dtype=np.float64)
        start = float(merged.times[0]) - (float(merged.times[0]) % self.sample_seconds)
        stop = float(merged.times[-1])
        # A single-observation merge (or a degenerate log) can make the
        # span zero or negative; clamp so the grid always has at least one
        # step and always reaches past the last observation.
        span = max(stop - start, 0.0)
        n = max(int(np.ceil(span / self.sample_seconds)), 1)
        grid = start + np.arange(n + 1) * self.sample_seconds
        if grid[-1] < stop:  # float rounding on long windows
            grid = np.append(grid, grid[-1] + self.sample_seconds)
        return grid
