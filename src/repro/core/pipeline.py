"""The per-block end-to-end pipeline (paper Table 1).

``probe logs -> 1-loss repair -> merge -> reconstruction ->
change-sensitivity -> STL trend -> CUSUM changes``.

:class:`BlockPipeline` is the public entry point a downstream user calls
with per-observer probe logs; every stage is configurable and all stage
outputs are kept on the result for inspection (the example scripts and
the Figure 1 experiment print them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..net.observations import ObservationSeries
from ..net.usage import ROUND_SECONDS
from ..timeseries.series import TimeSeries
from .changes import ChangeDetector, ChangeReport
from .combine import combine_observers
from .outages import OutageDetector, corroborate_changes
from .reconstruction import Reconstruction, reconstruct
from .repair import one_loss_repair
from .sensitivity import BlockClassification, SensitivityClassifier
from .trend import TrendExtractor, TrendResult

__all__ = ["BlockAnalysis", "BlockPipeline"]


@dataclass(frozen=True)
class BlockAnalysis:
    """Everything the pipeline learned about one block."""

    reconstruction: Reconstruction
    classification: BlockClassification
    trend: TrendResult | None
    changes: ChangeReport | None

    @property
    def is_change_sensitive(self) -> bool:
        return self.classification.is_change_sensitive

    @property
    def counts(self) -> TimeSeries:
        return self.reconstruction.counts

    def downward_change_days(self) -> tuple[int, ...]:
        """UTC days with human-candidate downward changes."""
        if self.changes is None:
            return ()
        return tuple(e.day for e in self.changes.human_candidates if e.is_downward)

    def upward_change_days(self) -> tuple[int, ...]:
        if self.changes is None:
            return ()
        return tuple(e.day for e in self.changes.human_candidates if not e.is_downward)


@dataclass(frozen=True)
class BlockPipeline:
    """Configured analysis pipeline for /24 blocks.

    Parameters
    ----------
    apply_repair:
        Run 1-loss repair on each observer's log before merging (§2.3).
    classifier, trend_extractor, detector:
        The three analysis stages; defaults follow the paper.
    detect_on_all:
        When False (the paper's behaviour) trend extraction and change
        detection run only on change-sensitive blocks; True forces them
        on every responsive block (useful for validation studies).
    corroborate_outages:
        Run the §2.6 cross-check: detect outages on the reconstructed
        counts and re-label overlapping change events as
        "outage-confirmed".  Off by default — the paired down/up filter
        already covers most cases; turn it on when the outage evidence
        should be explicit.
    sample_seconds:
        Grid step for the reconstructed count series.
    """

    apply_repair: bool = True
    classifier: SensitivityClassifier = field(default_factory=SensitivityClassifier)
    trend_extractor: TrendExtractor = field(default_factory=TrendExtractor)
    detector: ChangeDetector = field(default_factory=ChangeDetector)
    outage_detector: OutageDetector = field(default_factory=OutageDetector)
    detect_on_all: bool = False
    corroborate_outages: bool = False
    sample_seconds: float = ROUND_SECONDS

    def analyze(
        self,
        per_observer: list[ObservationSeries],
        eb_addresses: np.ndarray,
        *,
        sample_times: np.ndarray | None = None,
    ) -> BlockAnalysis:
        """Run the full pipeline over one block's per-observer probe logs."""
        if self.apply_repair:
            per_observer = [one_loss_repair(s) for s in per_observer]
        merged = combine_observers(per_observer)

        if sample_times is None:
            sample_times = self._default_grid(merged)
        recon = reconstruct(merged, eb_addresses, sample_times)
        classification = self.classifier.classify(recon.counts)

        trend: TrendResult | None = None
        changes: ChangeReport | None = None
        should_detect = classification.is_change_sensitive or (
            self.detect_on_all and classification.responsive
        )
        if should_detect:
            try:
                trend = self.trend_extractor.extract(recon.counts)
            except ValueError:
                trend = None
            if trend is not None:
                changes = self.detector.detect(trend.normalized_trend)
                if self.corroborate_outages and changes is not None:
                    outages = self.outage_detector.detect(recon.counts)
                    changes = ChangeReport(
                        events=corroborate_changes(changes.events, outages),
                        cusum=changes.cusum,
                        normalized_trend=changes.normalized_trend,
                    )
        return BlockAnalysis(
            reconstruction=recon,
            classification=classification,
            trend=trend,
            changes=changes,
        )

    def _default_grid(self, merged: ObservationSeries) -> np.ndarray:
        if merged.is_empty:
            return np.array([], dtype=np.float64)
        start = float(merged.times[0]) - (float(merged.times[0]) % self.sample_seconds)
        stop = float(merged.times[-1])
        n = max(int(np.ceil((stop - start) / self.sample_seconds)), 1)
        return start + np.arange(n + 1) * self.sample_seconds
