"""Change detection on the extracted trend (§2.6).

CUSUM (threshold 1, drift 0.001) runs on the z-normalized STL trend and
flags upward/downward baseline shifts.  Downward changes in
change-sensitive blocks are the human-activity signal; closely paired
down/up changes are re-labelled as outages or ISP renumbering and
excluded from human-activity analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.detect import CusumResult, detect_cusum, detect_cusum_batch
from ..timeseries.series import SECONDS_PER_DAY, BlockMatrix, TimeSeries

__all__ = ["ChangeEvent", "ChangeDetector", "ChangeReport"]


@dataclass(frozen=True)
class ChangeEvent:
    """One detected baseline change, in epoch seconds."""

    time_s: float  # alarm time
    start_s: float  # estimated change onset
    end_s: float  # estimated change ending
    direction: int  # +1 up, -1 down
    magnitude: float  # z-units of the normalized trend
    cause: str = "unclassified"  # "human-candidate" | "outage-like"

    @property
    def day(self) -> int:
        """UTC day index of the change onset-to-alarm midpoint."""
        return int((self.start_s + self.time_s) / 2 // SECONDS_PER_DAY)

    @property
    def alarm_day(self) -> int:
        return int(self.time_s // SECONDS_PER_DAY)

    @property
    def is_downward(self) -> bool:
        return self.direction < 0

    def with_cause(self, cause: str) -> "ChangeEvent":
        return ChangeEvent(
            time_s=self.time_s,
            start_s=self.start_s,
            end_s=self.end_s,
            direction=self.direction,
            magnitude=self.magnitude,
            cause=cause,
        )


@dataclass(frozen=True)
class ChangeReport:
    """All changes of one block plus the CUSUM traces for plotting."""

    events: tuple[ChangeEvent, ...]
    cusum: CusumResult
    normalized_trend: TimeSeries

    @property
    def human_candidates(self) -> tuple[ChangeEvent, ...]:
        return tuple(e for e in self.events if e.cause == "human-candidate")

    @property
    def downward(self) -> tuple[ChangeEvent, ...]:
        return tuple(e for e in self.events if e.is_downward)

    def downward_on_day(self, day: int) -> bool:
        return any(e.is_downward and e.cause == "human-candidate" and e.day == day for e in self.events)


@dataclass(frozen=True)
class ChangeDetector:
    """CUSUM-based change detection with outage filtering.

    ``max_outage_gap_s`` controls the §2.6 filter: a downward change
    followed by an upward change within this gap (or vice versa — ISP
    anti-disruptions) is labelled outage-like rather than human.
    """

    threshold: float = 1.0
    #: the paper's drift of 0.001 applies to 11-minute samples; on the
    #: hourly trend grid the same z-per-day suppression is 0.001 * 60/11
    drift: float = 0.0055
    max_outage_gap_s: float = 3 * SECONDS_PER_DAY
    filter_outages: bool = True
    #: alarms this close to either end of the series are boundary
    #: transients — STL edge bias at the start of a quarter, exactly the
    #: artifact that made the paper discard events at quarter changes.
    #: The daily-period STL trend smoother spans ~2 days, so 3 days of
    #: guard covers its edge bias.
    guard_days: float = 3.0

    def detect(self, normalized_trend: TimeSeries) -> ChangeReport:
        """Run CUSUM over a z-scored trend series."""
        result = detect_cusum(
            normalized_trend.values, self.threshold, self.drift, estimate_ending=True
        )
        return self._report(result, normalized_trend)

    def detect_batch(self, normalized_trends: BlockMatrix) -> list[ChangeReport]:
        """Row-wise :meth:`detect` over a matrix of z-scored trends.

        The NaN filling of the CUSUM pass is batched across rows; event
        assembly and cause classification are shared with the scalar path,
        so row ``i`` equals ``detect(normalized_trends.row(i))``.
        """
        results = detect_cusum_batch(
            normalized_trends.values, self.threshold, self.drift, estimate_ending=True
        )
        return [
            self._report(result, normalized_trends.row(i))
            for i, result in enumerate(results)
        ]

    def _report(self, result: CusumResult, normalized_trend: TimeSeries) -> ChangeReport:
        """Turn raw CUSUM alarms into a classified change report."""
        times = normalized_trend.times
        events = tuple(
            ChangeEvent(
                time_s=float(times[a.alarm]),
                start_s=float(times[a.start]),
                end_s=float(times[min(a.end, times.size - 1)]),
                direction=a.direction,
                magnitude=a.amplitude,
            )
            for a in result.alarms
        )
        events = self._mark_boundary_transients(events, times)
        if self.filter_outages:
            events = self._classify_causes(events)
        else:
            events = tuple(
                e.with_cause("human-candidate") if e.cause == "unclassified" else e
                for e in events
            )
        return ChangeReport(events=events, cusum=result, normalized_trend=normalized_trend)

    def _mark_boundary_transients(
        self, events: tuple[ChangeEvent, ...], times: np.ndarray
    ) -> tuple[ChangeEvent, ...]:
        if times.size == 0 or not events:
            return events
        guard = self.guard_days * SECONDS_PER_DAY
        lo = float(times[0]) + guard
        hi = float(times[-1]) - guard
        return tuple(
            e.with_cause("boundary-transient") if (e.time_s < lo or e.time_s > hi) else e
            for e in events
        )

    def _classify_causes(
        self, events: tuple[ChangeEvent, ...]
    ) -> tuple[ChangeEvent, ...]:
        """Label closely paired opposite-direction changes as outage-like.

        A sharp outage (or ISP renumbering) makes CUSUM emit a cluster of
        downward alarms followed closely by a cluster of upward alarms, so
        any opposite-direction pair within ``max_outage_gap_s`` marks both
        members — not only adjacent events.
        """
        causes = [e.cause for e in events]
        interior = [i for i, c in enumerate(causes) if c == "unclassified"]
        for a_pos, i in enumerate(interior):
            for j in interior[a_pos + 1 :]:
                a, b = events[i], events[j]
                if b.start_s - a.time_s > self.max_outage_gap_s:
                    break
                if a.direction == -b.direction:
                    causes[i] = "outage-like"
                    causes[j] = "outage-like"
        return tuple(
            e.with_cause("human-candidate" if c == "unclassified" else c)
            for e, c in zip(events, causes)
        )
