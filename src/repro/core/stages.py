"""Per-stage instrumentation for the block pipeline.

The paper's Table 1 pipeline is a fixed chain of six stages
(``repair -> combine -> reconstruct -> classify -> trend -> detect``).
:class:`StageContext` is the lightweight recorder each stage reports
into: one :class:`StageRecord` per invocation with wall time, input and
output sizes, and (when a stage did not run) a skip reason.

Records are plain frozen dataclasses so they pickle cheaply and can be
shipped back from worker processes; the runtime engine aggregates them
into per-campaign :class:`~repro.runtime.engine.RunMetrics`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PIPELINE_STAGES", "StageContext", "StageRecord"]

#: Canonical stage order of :meth:`repro.core.pipeline.BlockPipeline.analyze`.
#: Extra ad-hoc stages (e.g. the builder's ``simulate``) may appear in a
#: context as well; this tuple is the pipeline's own contract.
PIPELINE_STAGES = ("repair", "combine", "reconstruct", "classify", "trend", "detect")


@dataclass(frozen=True)
class StageRecord:
    """One stage invocation: how long it took and what flowed through it."""

    name: str
    wall_s: float = 0.0
    n_in: int = 0
    n_out: int = 0
    skipped: str | None = None  # reason the stage did not run, None = it ran

    @property
    def ran(self) -> bool:
        return self.skipped is None


class _ActiveStage:
    """Mutable handle a running stage uses to report its output size."""

    __slots__ = ("n_out",)

    def __init__(self, n_out: int = 0) -> None:
        self.n_out = n_out


@dataclass
class StageContext:
    """Collects :class:`StageRecord` entries for one block analysis."""

    records: list[StageRecord] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str, *, n_in: int = 0) -> Iterator[_ActiveStage]:
        """Time a stage body; set ``.n_out`` on the yielded handle."""
        active = _ActiveStage()
        start = time.perf_counter()
        try:
            yield active
        finally:
            self.records.append(
                StageRecord(
                    name=name,
                    wall_s=time.perf_counter() - start,
                    n_in=n_in,
                    n_out=active.n_out,
                )
            )

    def skip(self, name: str, reason: str, *, n_in: int = 0) -> None:
        """Record that a stage was not run and why."""
        self.records.append(StageRecord(name=name, n_in=n_in, skipped=reason))

    # -- inspection helpers -------------------------------------------------
    def by_name(self, name: str) -> list[StageRecord]:
        return [r for r in self.records if r.name == name]

    def last(self, name: str) -> StageRecord | None:
        for record in reversed(self.records):
            if record.name == name:
                return record
        return None

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Last record per stage name, as plain dicts (JSON-friendly)."""
        out: dict[str, dict[str, object]] = {}
        for r in self.records:
            out[r.name] = {
                "wall_s": r.wall_s,
                "n_in": r.n_in,
                "n_out": r.n_out,
                "skipped": r.skipped,
            }
        return out
