"""Per-stage instrumentation for the block pipeline.

The paper's Table 1 pipeline is a fixed chain of six stages
(``repair -> combine -> reconstruct -> classify -> trend -> detect``).
:class:`StageContext` is the lightweight recorder each stage reports
into: one :class:`StageRecord` per invocation with wall time, input and
output sizes, and (when a stage did not run) a skip reason.

Records are plain frozen dataclasses so they pickle cheaply and can be
shipped back from worker processes; the runtime engine aggregates them
into per-campaign :class:`~repro.runtime.engine.RunMetrics`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from ..obs.metrics import get_registry
from ..obs.names import metric_name
from ..obs.resources import peak_rss_bytes, thread_cpu_seconds
from ..obs.trace import get_tracer

__all__ = ["PIPELINE_STAGES", "StageContext", "StageRecord"]

#: Canonical stage order of :meth:`repro.core.pipeline.BlockPipeline.analyze`.
#: Extra ad-hoc stages (e.g. the builder's ``simulate``) may appear in a
#: context as well; this tuple is the pipeline's own contract.
PIPELINE_STAGES = ("repair", "combine", "reconstruct", "classify", "trend", "detect")


@dataclass(frozen=True)
class StageRecord:
    """One stage invocation: how long it took and what flowed through it.

    ``cpu_s`` is thread CPU time consumed by the stage body and
    ``rss_delta`` the rise in the process RSS high-water mark (bytes)
    across it — both zero for skipped stages, and both excluded from
    byte-identity comparisons (like ``wall_s``, they are measurements,
    not results).
    """

    name: str
    wall_s: float = 0.0
    n_in: int = 0
    n_out: int = 0
    skipped: str | None = None  # reason the stage did not run, None = it ran
    cpu_s: float = 0.0
    rss_delta: int = 0

    @property
    def ran(self) -> bool:
        return self.skipped is None


class _ActiveStage:
    """Mutable handle a running stage uses to report its output size."""

    __slots__ = ("n_out",)

    def __init__(self, n_out: int = 0) -> None:
        self.n_out = n_out


@dataclass
class StageContext:
    """Collects :class:`StageRecord` entries for one block analysis."""

    records: list[StageRecord] = field(default_factory=list)

    @contextmanager
    def stage(self, name: str, *, n_in: int = 0) -> Iterator[_ActiveStage]:
        """Time a stage body; set ``.n_out`` on the yielded handle.

        Besides the :class:`StageRecord`, every invocation feeds the
        stage's latency histogram in the ambient metrics registry and —
        when tracing is enabled — closes a ``stage:<name>`` span under
        the enclosing block span.
        """
        active = _ActiveStage()
        tracer = get_tracer()
        span_cm = tracer.span(f"stage:{name}") if tracer.enabled else None
        span = span_cm.__enter__() if span_cm is not None else None
        rss_before = peak_rss_bytes()
        cpu_start = thread_cpu_seconds()
        start = time.perf_counter()
        try:
            yield active
        finally:
            wall_s = time.perf_counter() - start
            cpu_s = thread_cpu_seconds() - cpu_start
            rss_delta = max(peak_rss_bytes() - rss_before, 0)
            self.records.append(
                StageRecord(
                    name=name,
                    wall_s=wall_s,
                    n_in=n_in,
                    n_out=active.n_out,
                    cpu_s=cpu_s,
                    rss_delta=rss_delta,
                )
            )
            get_registry().histogram(metric_name("stage", name, "wall_s")).observe(wall_s)
            if span_cm is not None:
                span.set(n_in=n_in, n_out=active.n_out)
                span_cm.__exit__(None, None, None)

    def skip(self, name: str, reason: str, *, n_in: int = 0) -> None:
        """Record that a stage was not run and why."""
        self.records.append(StageRecord(name=name, n_in=n_in, skipped=reason))
        get_registry().counter(metric_name("stage", name, "skips", reason)).inc()

    def record_batched(
        self,
        name: str,
        *,
        wall_s: float,
        n_in: int = 0,
        n_out: int = 0,
        n_batch: int = 1,
        cpu_s: float = 0.0,
        rss_delta: int = 0,
    ) -> None:
        """Record one block's share of a batched stage execution.

        ``wall_s`` is the block's slice of the batch wall time (the batched
        pipeline attributes ``batch_wall / n_batch`` to each member), and
        ``cpu_s``/``rss_delta`` the analogous CPU and RSS high-water
        shares, while ``n_in``/``n_out`` are the block's true sizes.  The
        record feeds the same latency histogram as :meth:`stage`, and —
        when tracing — emits a synthetic ``stage:<name>`` span under the
        enclosing span so per-block span accounting stays intact.
        """
        self.records.append(
            StageRecord(
                name=name,
                wall_s=wall_s,
                n_in=n_in,
                n_out=n_out,
                cpu_s=cpu_s,
                rss_delta=rss_delta,
            )
        )
        get_registry().histogram(metric_name("stage", name, "wall_s")).observe(wall_s)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit(
                f"stage:{name}",
                wall_s=wall_s,
                attrs={"n_in": n_in, "n_out": n_out, "n_batch": n_batch},
            )

    # -- inspection helpers -------------------------------------------------
    def by_name(self, name: str) -> list[StageRecord]:
        return [r for r in self.records if r.name == name]

    def last(self, name: str) -> StageRecord | None:
        for record in reversed(self.records):
            if record.name == name:
                return record
        return None

    @property
    def total_wall_s(self) -> float:
        return sum(r.wall_s for r in self.records)

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Per-stage summary as plain dicts (JSON-friendly).

        Repeated invocations of one stage (e.g. re-runs through the
        composable ``stage_*`` methods) aggregate instead of silently
        keeping only the last record: ``wall_s`` sums over calls,
        ``calls`` counts them, and ``n_in``/``n_out``/``skipped``
        reflect the most recent invocation.
        """
        out: dict[str, dict[str, object]] = {}
        for r in self.records:
            d = out.get(r.name)
            if d is None:
                out[r.name] = {
                    "wall_s": r.wall_s,
                    "cpu_s": r.cpu_s,
                    "rss_delta": r.rss_delta,
                    "n_in": r.n_in,
                    "n_out": r.n_out,
                    "skipped": r.skipped,
                    "calls": 1,
                }
            else:
                d["wall_s"] += r.wall_s
                d["cpu_s"] += r.cpu_s
                d["rss_delta"] += r.rss_delta
                d["n_in"] = r.n_in
                d["n_out"] = r.n_out
                d["skipped"] = r.skipped
                d["calls"] += 1
        return out
