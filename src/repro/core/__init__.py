"""The paper's contribution: the human-activity inference pipeline."""

from .aggregate import BlockRecord, CellStats, CoverageReport, GridAggregator
from .changes import ChangeDetector, ChangeEvent, ChangeReport
from .combine import (
    ObserverHealth,
    combine_observers,
    compare_observers,
    flag_outlier_observers,
)
from .diurnal import DiurnalTest, DiurnalVerdict
from .network_type import (
    NetworkTypeClassifier,
    NetworkTypeVerdict,
    timezone_from_longitude,
)
from .outages import OutageDetector, OutageInterval, corroborate_changes
from .pipeline import BlockAnalysis, BlockPipeline
from .reconstruction import Reconstruction, full_scan_durations, reconstruct
from .refresh import (
    FbsLogisticModel,
    estimate_fbs_hours,
    probes_per_round_for_target,
    select_for_additional_probing,
)
from .repair import one_loss_repair, repaired_fraction
from .sensitivity import BlockClassification, SensitivityClassifier
from .stages import PIPELINE_STAGES, StageContext, StageRecord
from .swing import SwingProfile, SwingTest
from .trend import TrendExtractor, TrendResult

__all__ = [
    "BlockRecord",
    "CellStats",
    "CoverageReport",
    "GridAggregator",
    "ChangeDetector",
    "ChangeEvent",
    "ChangeReport",
    "ObserverHealth",
    "combine_observers",
    "compare_observers",
    "flag_outlier_observers",
    "DiurnalTest",
    "DiurnalVerdict",
    "NetworkTypeClassifier",
    "NetworkTypeVerdict",
    "timezone_from_longitude",
    "OutageDetector",
    "OutageInterval",
    "corroborate_changes",
    "BlockAnalysis",
    "BlockPipeline",
    "Reconstruction",
    "full_scan_durations",
    "reconstruct",
    "FbsLogisticModel",
    "estimate_fbs_hours",
    "probes_per_round_for_target",
    "select_for_additional_probing",
    "one_loss_repair",
    "repaired_fraction",
    "BlockClassification",
    "SensitivityClassifier",
    "PIPELINE_STAGES",
    "StageContext",
    "StageRecord",
    "SwingProfile",
    "SwingTest",
    "TrendExtractor",
    "TrendResult",
]
