"""Block refresh rates and additional-probing selection (§2.8, §3.1-3.2.3).

Adaptive probing stops at a block's first positive reply, so dense,
highly available blocks are scanned one address per round and take up to
1.8 days to cover — far below the Nyquist rate for diurnal signals.  The
paper selects such blocks for additional probing with a logistic model of
the full-block-scan (FBS) time, parameterized by the scan size |E(b)| and
the availability A (expected reply rate of E(b) addresses), and probes
them hard enough to guarantee 6-hour scans.

This module provides the analytic FBS estimate, the logistic classifier
(implemented from scratch: no sklearn offline), the selection rule (skip
blocks with |E(b)| < 32 or A < 0.05; flag predicted FBS > 6 h) and the
probing-budget arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

__all__ = [
    "FbsLogisticModel",
    "estimate_fbs_hours",
    "probes_per_round_for_target",
    "select_for_additional_probing",
]

ROUND_SECONDS = 660.0


def estimate_fbs_hours(
    eb_size: np.ndarray | float,
    availability: np.ndarray | float,
    *,
    max_probes_per_round: int = 15,
) -> np.ndarray:
    """Analytic expectation of the full-block-scan time, in hours.

    Each round the adaptive prober covers a geometric number of targets,
    truncated at ``max_probes_per_round``: expected coverage per round is
    ``(1 - (1-A)^K) / A`` for availability ``A``.  The FBS time is the
    rounds needed to walk all of E(b) at that pace.
    """
    m = np.asarray(eb_size, dtype=np.float64)
    a = np.clip(np.asarray(availability, dtype=np.float64), 1e-6, 1.0)
    per_round = (1.0 - (1.0 - a) ** max_probes_per_round) / a
    per_round = np.minimum(per_round, max_probes_per_round)
    rounds = m / np.maximum(per_round, 1e-9)
    return rounds * ROUND_SECONDS / 3600.0


@dataclass
class FbsLogisticModel:
    """Logistic regression: P(FBS exceeds the threshold | |E(b)|, A).

    Features are ``log1p(|E(b)|)`` and ``A``; training minimizes the
    regularized logistic loss with L-BFGS.
    """

    threshold_hours: float = 6.0
    l2: float = 1e-3
    coefficients: np.ndarray | None = None

    @staticmethod
    def _features(eb_size: np.ndarray, availability: np.ndarray) -> np.ndarray:
        eb = np.asarray(eb_size, dtype=np.float64)
        a = np.asarray(availability, dtype=np.float64)
        return np.column_stack((np.ones_like(eb), np.log1p(eb), a))

    def fit(
        self,
        eb_size: np.ndarray,
        availability: np.ndarray,
        fbs_hours: np.ndarray,
    ) -> "FbsLogisticModel":
        """Fit on observed scan times of a sample of blocks (§3.2.3)."""
        x = self._features(eb_size, availability)
        y = (np.asarray(fbs_hours, dtype=np.float64) > self.threshold_hours).astype(np.float64)
        if y.min() == y.max():
            # degenerate sample: constant predictor
            bias = 20.0 if y[0] > 0.5 else -20.0
            self.coefficients = np.array([bias, 0.0, 0.0])
            return self

        def loss(w: np.ndarray) -> tuple[float, np.ndarray]:
            z = x @ w
            # numerically stable log-loss
            log_p = -np.logaddexp(0.0, -z)
            log_1mp = -np.logaddexp(0.0, z)
            nll = -(y * log_p + (1.0 - y) * log_1mp).mean() + self.l2 * (w[1:] @ w[1:])
            p = 1.0 / (1.0 + np.exp(-z))
            grad = x.T @ (p - y) / y.size
            grad[1:] += 2.0 * self.l2 * w[1:]
            return float(nll), grad

        result = optimize.minimize(loss, np.zeros(x.shape[1]), jac=True, method="L-BFGS-B")
        self.coefficients = result.x
        return self

    def predict_probability(
        self, eb_size: np.ndarray, availability: np.ndarray
    ) -> np.ndarray:
        if self.coefficients is None:
            raise RuntimeError("model is not fitted")
        z = self._features(eb_size, availability) @ self.coefficients
        return 1.0 / (1.0 + np.exp(-z))

    def predict(self, eb_size: np.ndarray, availability: np.ndarray) -> np.ndarray:
        """True where the model expects FBS > threshold (needs help)."""
        return self.predict_probability(eb_size, availability) >= 0.5

    def false_negative_rate(
        self, eb_size: np.ndarray, availability: np.ndarray, fbs_hours: np.ndarray
    ) -> float:
        """Share of genuinely slow blocks the model misses (paper: 0.5%)."""
        truth = np.asarray(fbs_hours) > self.threshold_hours
        if not truth.any():
            return 0.0
        predicted = self.predict(eb_size, availability)
        return float((truth & ~predicted).sum() / truth.size)


def select_for_additional_probing(
    eb_size: np.ndarray,
    availability: np.ndarray,
    model: FbsLogisticModel,
    *,
    min_eb: int = 32,
    min_availability: float = 0.05,
) -> np.ndarray:
    """The §3.2.3 selection rule: predicted-slow blocks worth extra probes.

    Blocks with tiny E(b) or near-zero availability always scan near the
    origin of Figure 5 and are skipped outright.
    """
    eb = np.asarray(eb_size)
    a = np.asarray(availability)
    eligible = (eb >= min_eb) & (a >= min_availability)
    selected = np.zeros(eb.shape, dtype=bool)
    if eligible.any():
        selected[eligible] = model.predict(eb[eligible], a[eligible])
    return selected


def probes_per_round_for_target(
    eb_size: int, *, target_hours: float = 6.0, max_probes: int = 8
) -> int:
    """Probes per round so E(b) is fully scanned within the target (§3.2.3).

    ``|E(b)| / (target_hours * 3600 / 660)`` probes per round, capped at 8
    (one probe per 88 s, half the paper's prior rate limit).
    """
    rounds = target_hours * 3600.0 / ROUND_SECONDS
    needed = int(np.ceil(eb_size / max(rounds, 1.0)))
    return int(np.clip(needed, 1, max_probes))
