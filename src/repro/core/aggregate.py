"""Geographic aggregation of per-block change detections (§2.6, §3.5).

Blocks are geolocated and grouped into 2x2 degree gridcells.  A cell is
*observed* when it has at least ``min_responsive`` ping-responsive blocks
and *represented* when it has at least ``min_change_sensitive``
change-sensitive blocks (both 5 in the paper); the thresholds suppress
false positives from single noisy blocks (Appendix D).  Per day we report
the fraction of a cell's (or continent's) change-sensitive blocks whose
trend turned downward — the series of Figures 8-10.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..net.geo import GeoInfo, GridCell

__all__ = ["BlockRecord", "CellStats", "CoverageReport", "GridAggregator"]


@dataclass(frozen=True)
class BlockRecord:
    """The aggregation-relevant facts about one analyzed block."""

    geo: GeoInfo
    responsive: bool
    change_sensitive: bool
    downward_days: tuple[int, ...] = ()
    upward_days: tuple[int, ...] = ()


@dataclass
class CellStats:
    """Mutable per-gridcell tallies."""

    cell: GridCell
    n_responsive: int = 0
    n_change_sensitive: int = 0
    downward_by_day: Counter = field(default_factory=Counter)
    upward_by_day: Counter = field(default_factory=Counter)
    continents: Counter = field(default_factory=Counter)

    @property
    def continent(self) -> str:
        if not self.continents:
            return "?"
        return self.continents.most_common(1)[0][0]

    def downward_fraction(self, day: int) -> float:
        if self.n_change_sensitive == 0:
            return 0.0
        return self.downward_by_day.get(day, 0) / self.n_change_sensitive


@dataclass(frozen=True)
class CoverageReport:
    """Table 4's coverage accounting."""

    n_cells: int
    n_under_observed: int
    n_observed: int
    n_under_represented: int
    n_represented: int
    cs_blocks_total: int
    cs_blocks_represented: int
    responsive_blocks_total: int
    responsive_blocks_observed: int
    responsive_blocks_represented: int

    @property
    def represented_cell_fraction(self) -> float:
        return self.n_represented / self.n_observed if self.n_observed else 0.0

    @property
    def cs_block_weighted_coverage(self) -> float:
        return (
            self.cs_blocks_represented / self.cs_blocks_total if self.cs_blocks_total else 0.0
        )

    @property
    def responsive_block_weighted_coverage(self) -> float:
        total = self.responsive_blocks_total
        return self.responsive_blocks_represented / total if total else 0.0


class GridAggregator:
    """Accumulates block records into gridcells and answers Table 4/Fig 8-10."""

    def __init__(self, *, min_responsive: int = 5, min_change_sensitive: int = 5) -> None:
        self.min_responsive = min_responsive
        self.min_change_sensitive = min_change_sensitive
        self._cells: dict[GridCell, CellStats] = {}

    # -- accumulation ----------------------------------------------------
    def add(self, record: BlockRecord) -> None:
        if not record.responsive:
            return
        cell = record.geo.gridcell
        stats = self._cells.get(cell)
        if stats is None:
            stats = CellStats(cell=cell)
            self._cells[cell] = stats
        stats.n_responsive += 1
        stats.continents[record.geo.continent] += 1
        if record.change_sensitive:
            stats.n_change_sensitive += 1
            # a block counts at most once per day: CUSUM can emit several
            # alarms for one change, but the fraction is "blocks changing"
            for day in set(record.downward_days):
                stats.downward_by_day[day] += 1
            for day in set(record.upward_days):
                stats.upward_by_day[day] += 1

    def add_all(self, records: list[BlockRecord]) -> "GridAggregator":
        for record in records:
            self.add(record)
        return self

    # -- queries ----------------------------------------------------------
    @property
    def cells(self) -> dict[GridCell, CellStats]:
        return dict(self._cells)

    def cell(self, cell: GridCell) -> CellStats | None:
        return self._cells.get(cell)

    def represented_cells(self) -> list[CellStats]:
        return [
            s
            for s in self._cells.values()
            if s.n_responsive >= self.min_responsive
            and s.n_change_sensitive >= self.min_change_sensitive
        ]

    def coverage(
        self,
        *,
        min_responsive: int | None = None,
        min_change_sensitive: int | None = None,
    ) -> CoverageReport:
        """Table 4: observed/represented cells and block-weighted sums."""
        min_resp = self.min_responsive if min_responsive is None else min_responsive
        min_cs = (
            self.min_change_sensitive if min_change_sensitive is None else min_change_sensitive
        )
        cells = list(self._cells.values())
        observed = [s for s in cells if s.n_responsive >= min_resp]
        represented = [s for s in observed if s.n_change_sensitive >= min_cs]
        return CoverageReport(
            n_cells=len(cells),
            n_under_observed=len(cells) - len(observed),
            n_observed=len(observed),
            n_under_represented=len(observed) - len(represented),
            n_represented=len(represented),
            cs_blocks_total=sum(s.n_change_sensitive for s in cells),
            cs_blocks_represented=sum(s.n_change_sensitive for s in represented),
            responsive_blocks_total=sum(s.n_responsive for s in cells),
            responsive_blocks_observed=sum(s.n_responsive for s in observed),
            responsive_blocks_represented=sum(s.n_responsive for s in represented),
        )

    # -- time series -------------------------------------------------------
    def cell_daily_fractions(
        self, cell: GridCell, first_day: int, n_days: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(downward, upward) daily fractions for one gridcell."""
        stats = self._cells.get(cell)
        down = np.zeros(n_days)
        up = np.zeros(n_days)
        if stats is None or stats.n_change_sensitive == 0:
            return down, up
        for offset in range(n_days):
            day = first_day + offset
            down[offset] = stats.downward_by_day.get(day, 0) / stats.n_change_sensitive
            up[offset] = stats.upward_by_day.get(day, 0) / stats.n_change_sensitive
        return down, up

    def continent_daily_fractions(
        self, first_day: int, n_days: int, *, represented_only: bool = True
    ) -> dict[str, np.ndarray]:
        """Daily downward fractions per continent (Figure 8)."""
        per_continent_down: dict[str, np.ndarray] = defaultdict(lambda: np.zeros(n_days))
        per_continent_cs: Counter = Counter()
        pool = self.represented_cells() if represented_only else list(self._cells.values())
        for stats in pool:
            continent = stats.continent
            per_continent_cs[continent] += stats.n_change_sensitive
            series = per_continent_down[continent]
            for day, count in stats.downward_by_day.items():
                offset = day - first_day
                if 0 <= offset < n_days:
                    series[offset] += count
        return {
            continent: series / max(per_continent_cs[continent], 1)
            for continent, series in per_continent_down.items()
        }
