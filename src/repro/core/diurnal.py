"""Diurnality detection by spectral energy (§2.4).

A block is diurnal when a substantial share of the variation in its
active-address count sits at the 24-hour frequency or its harmonics.
Work-week gating (five active days, quiet weekends) amplitude-modulates
the daily cycle and pushes energy into weekly sidebands around each
harmonic (at ±k/7 cycles/day), so the detector integrates a small window
around each harmonic rather than a single FFT bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.series import SECONDS_PER_DAY, SECONDS_PER_HOUR, TimeSeries
from ..timeseries.spectrum import periodogram

__all__ = ["DiurnalTest", "DiurnalVerdict"]


@dataclass(frozen=True)
class DiurnalVerdict:
    """Outcome of the diurnality test for one block."""

    is_diurnal: bool
    energy_ratio: float
    n_days: float


@dataclass(frozen=True)
class DiurnalTest:
    """FFT-based diurnality detector.

    Parameters
    ----------
    min_ratio:
        Minimum fraction of non-DC power at the diurnal harmonics.
    harmonics:
        Number of harmonics of 1 cycle/day to include (24 h, 12 h, ...).
    sideband_days:
        Half-width of the integration window around each harmonic, in
        weekly-sideband units: the window spans ``±sideband_days / 7``
        cycles/day to capture work-week modulation.
    min_days:
        Blocks observed for less than this many days cannot be judged.
    """

    min_ratio: float = 0.30
    harmonics: int = 4
    sideband_days: float = 1.5
    min_days: float = 3.0

    def evaluate(self, counts: TimeSeries) -> DiurnalVerdict:
        """Judge a (round- or hour-sampled) active-count series."""
        hourly = counts.resample_mean(SECONDS_PER_HOUR)
        good = np.isfinite(hourly.values)
        n_days = float(good.sum()) / 24.0
        if n_days < self.min_days:
            return DiurnalVerdict(False, 0.0, n_days)

        pg = periodogram(hourly.values, SECONDS_PER_HOUR)
        total = pg.total_power
        if total <= 0:
            return DiurnalVerdict(False, 0.0, n_days)

        df = pg.frequencies[1] - pg.frequencies[0]
        halfwidth_hz = (self.sideband_days / 7.0) / SECONDS_PER_DAY
        tolerance_bins = max(1, int(round(halfwidth_hz / df)))
        base = 1.0 / SECONDS_PER_DAY
        energy = sum(
            pg.power_near(base * k, tolerance_bins=tolerance_bins)
            for k in range(1, self.harmonics + 1)
        )
        ratio = min(energy / total, 1.0)
        return DiurnalVerdict(ratio >= self.min_ratio, ratio, n_days)
