"""Diurnality detection by spectral energy (§2.4).

A block is diurnal when a substantial share of the variation in its
active-address count sits at the 24-hour frequency or its harmonics.
Work-week gating (five active days, quiet weekends) amplitude-modulates
the daily cycle and pushes energy into weekly sidebands around each
harmonic (at ±k/7 cycles/day), so the detector integrates a small window
around each harmonic rather than a single FFT bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.series import SECONDS_PER_DAY, SECONDS_PER_HOUR, BlockMatrix, TimeSeries
from ..timeseries.spectrum import Periodogram, periodogram, periodogram_batch

__all__ = ["DiurnalTest", "DiurnalVerdict"]


@dataclass(frozen=True)
class DiurnalVerdict:
    """Outcome of the diurnality test for one block."""

    is_diurnal: bool
    energy_ratio: float
    n_days: float


@dataclass(frozen=True)
class DiurnalTest:
    """FFT-based diurnality detector.

    Parameters
    ----------
    min_ratio:
        Minimum fraction of non-DC power at the diurnal harmonics.
    harmonics:
        Number of harmonics of 1 cycle/day to include (24 h, 12 h, ...).
    sideband_days:
        Half-width of the integration window around each harmonic, in
        weekly-sideband units: the window spans ``±sideband_days / 7``
        cycles/day to capture work-week modulation.
    min_days:
        Blocks observed for less than this many days cannot be judged.
    """

    min_ratio: float = 0.30
    harmonics: int = 4
    sideband_days: float = 1.5
    min_days: float = 3.0

    def evaluate(self, counts: TimeSeries) -> DiurnalVerdict:
        """Judge a (round- or hour-sampled) active-count series."""
        hourly = counts.resample_mean(SECONDS_PER_HOUR)
        n_days = float(np.isfinite(hourly.values).sum()) / 24.0
        if n_days < self.min_days:
            return DiurnalVerdict(False, 0.0, n_days)
        return self._verdict(periodogram(hourly.values, SECONDS_PER_HOUR), n_days)

    def evaluate_batch(self, counts: BlockMatrix) -> list[DiurnalVerdict]:
        """Row-wise :meth:`evaluate`: one resample pass and one 2-D FFT.

        Row ``i`` equals ``evaluate(counts.row(i))`` bit for bit — the
        batched resample and periodogram are per-row-identical to their
        scalar forms, and the verdict maths is shared.
        """
        hourly = counts.resample_mean(SECONDS_PER_HOUR)
        n_days = np.isfinite(hourly.values).sum(axis=1) / 24.0
        verdicts = [DiurnalVerdict(False, 0.0, float(d)) for d in n_days]
        judged = np.flatnonzero(n_days >= self.min_days)
        if judged.size:
            spectra = periodogram_batch(hourly.values[judged], SECONDS_PER_HOUR)
            for pg, i in zip(spectra, judged):
                verdicts[i] = self._verdict(pg, float(n_days[i]))
        return verdicts

    def _verdict(self, pg: Periodogram, n_days: float) -> DiurnalVerdict:
        """Judge one periodogram (the shared tail of both evaluate paths)."""
        total = pg.total_power
        if total <= 0:
            return DiurnalVerdict(False, 0.0, n_days)

        df = pg.frequencies[1] - pg.frequencies[0]
        halfwidth_hz = (self.sideband_days / 7.0) / SECONDS_PER_DAY
        tolerance_bins = max(1, int(round(halfwidth_hz / df)))
        base = 1.0 / SECONDS_PER_DAY
        energy = sum(
            pg.power_near(base * k, tolerance_bins=tolerance_bins)
            for k in range(1, self.harmonics + 1)
        )
        ratio = min(energy / total, 1.0)
        return DiurnalVerdict(ratio >= self.min_ratio, ratio, n_days)
