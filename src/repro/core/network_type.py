"""Workplace-vs-home classification of change-sensitive blocks.

The paper's §2.6 flags this as future work: "detect daily bumps and
count how many occur to distinguish workplace networks from home
networks."  This module implements that idea.  For each local day we
find when the block's activity peaks and whether weekends are quiet:

* workplace networks peak during business hours (~9-17 local) and go
  quiet on weekends;
* home networks peak in the evening (~18-24 local) and stay active —
  often *more* active — on weekends;
* dynamic pools behave like home networks (subscribers are people at
  home) but with smoother curves.

The classifier needs the block's timezone only to interpret local time;
with geolocated blocks the longitude provides an adequate estimate
(15 degrees per hour), which is what :func:`timezone_from_longitude`
offers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.series import SECONDS_PER_DAY, SECONDS_PER_HOUR, TimeSeries

__all__ = ["NetworkTypeVerdict", "NetworkTypeClassifier", "timezone_from_longitude"]


def timezone_from_longitude(lon: float) -> float:
    """Crude timezone estimate from longitude (15 degrees per hour)."""
    return round(lon / 15.0)


@dataclass(frozen=True)
class NetworkTypeVerdict:
    """The classifier's call for one block."""

    label: str  # "workplace" | "home" | "ambiguous"
    peak_hour: float  # circular mean local hour of daily activity peaks
    weekend_ratio: float  # weekend activity level / weekday activity level
    n_days: int

    @property
    def is_workplace(self) -> bool:
        return self.label == "workplace"

    @property
    def is_home(self) -> bool:
        return self.label == "home"


@dataclass(frozen=True)
class NetworkTypeClassifier:
    """Classifies a count series as workplace-like or home-like.

    Parameters are local hours.  A block is *workplace* when its daily
    activity peaks land in business hours and weekends are markedly
    quieter; *home* when peaks land in the evening or weekends match
    weekdays.  Anything else is *ambiguous* (pools with mid-day peaks,
    noisy blocks).
    """

    business_start: float = 8.0
    business_end: float = 17.0
    evening_start: float = 17.0
    quiet_weekend_ratio: float = 0.6
    min_days: int = 7

    def classify(
        self,
        counts: TimeSeries,
        *,
        tz_hours: float,
        epoch_weekday: int = 0,
    ) -> NetworkTypeVerdict:
        """Judge a reconstructed count series.

        ``epoch_weekday`` is the weekday (Monday=0) of the series epoch,
        needed to place weekends.
        """
        hourly = counts.resample_mean(SECONDS_PER_HOUR)
        good = np.isfinite(hourly.values)
        if good.sum() < self.min_days * 24:
            return NetworkTypeVerdict("ambiguous", float("nan"), float("nan"), 0)

        times = hourly.times[good]
        values = hourly.values[good]
        local_s = times + tz_hours * 3600.0
        local_day = np.floor(local_s / SECONDS_PER_DAY).astype(np.int64)
        local_hour = np.mod(local_s, SECONDS_PER_DAY) / 3600.0
        weekday = (epoch_weekday + local_day) % 7

        peak_hours: list[float] = []
        weekday_levels: list[float] = []
        weekend_levels: list[float] = []
        for day in np.unique(local_day):
            mask = local_day == day
            if mask.sum() < 12:
                continue
            day_values = values[mask]
            level = float(day_values.mean())
            span = float(day_values.max() - day_values.min())
            if span >= 1.0:  # only days with real activity vote for a peak
                # circular centroid of the day's activity mass: far more
                # robust to reconstruction lag than the literal argmax
                excess = day_values - day_values.min()
                angles = local_hour[mask] / 24.0 * 2.0 * np.pi
                x = float(np.dot(excess, np.cos(angles)))
                y = float(np.dot(excess, np.sin(angles)))
                if x or y:
                    peak_hours.append(
                        float(np.mod(np.arctan2(y, x) / (2.0 * np.pi) * 24.0, 24.0))
                    )
            if weekday[mask][0] >= 5:
                weekend_levels.append(level)
            else:
                weekday_levels.append(level)

        n_days = len(weekday_levels) + len(weekend_levels)
        if not peak_hours or not weekday_levels:
            return NetworkTypeVerdict("ambiguous", float("nan"), float("nan"), n_days)

        peak = _circular_mean_hour(np.asarray(peak_hours))
        weekday_level = float(np.mean(weekday_levels))
        weekend_level = float(np.mean(weekend_levels)) if weekend_levels else 0.0
        ratio = weekend_level / weekday_level if weekday_level > 0 else float("nan")

        business = self.business_start <= peak < self.business_end
        evening = peak >= self.evening_start or peak < 4.0
        quiet_weekend = np.isfinite(ratio) and ratio < self.quiet_weekend_ratio

        if business and quiet_weekend:
            label = "workplace"
        elif evening or (np.isfinite(ratio) and ratio >= 0.85):
            label = "home"
        else:
            label = "ambiguous"
        return NetworkTypeVerdict(label, peak, ratio, n_days)


def _circular_mean_hour(hours: np.ndarray) -> float:
    """Mean of hours on the 24-hour circle."""
    angles = hours / 24.0 * 2.0 * np.pi
    mean_angle = np.arctan2(np.sin(angles).mean(), np.cos(angles).mean())
    return float(np.mod(mean_angle / (2.0 * np.pi) * 24.0, 24.0))
