"""Daily-swing analysis: wide, persistent daily swings (§2.4).

The daily swing is the range (max - min) of the active-address count
over a midnight-to-midnight UTC day.  A block qualifies as *wide swing*
when the swing reaches ``min_swing`` addresses (the paper picks 5 to
tolerate a few uncorrelated restarts) on at least ``min_wide_days`` of 7
consecutive days for at least one week in the observation period (4-of-7
tolerates three-day weekends such as the MLK week in Figure 1a).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.series import BlockMatrix, TimeSeries

__all__ = ["SwingProfile", "SwingTest"]


@dataclass(frozen=True)
class SwingProfile:
    """Per-day swing summary for one block."""

    days: np.ndarray  # UTC day indices with data
    swings: np.ndarray  # max - min per day
    wide_days: np.ndarray  # bool per day
    is_wide: bool  # passed the persistent-wide-swing test
    max_swing: float

    @property
    def n_days(self) -> int:
        return int(self.days.size)


@dataclass(frozen=True)
class SwingTest:
    """Wide-swing classifier with the paper's defaults."""

    min_swing: float = 5.0
    window_days: int = 7
    min_wide_days: int = 4

    def evaluate(self, counts: TimeSeries) -> SwingProfile:
        """Judge a round-sampled active-count series."""
        days, swings = counts.daily_swing()
        return self._profile(days, swings)

    def evaluate_batch(self, counts: BlockMatrix) -> list[SwingProfile]:
        """Row-wise :meth:`evaluate` via one segmented max/min reduction.

        Per-day extremes come from ``np.fmax``/``np.fmin`` segment
        reductions across the whole matrix — exact, order-free operations —
        so row ``i`` equals ``evaluate(counts.row(i))`` bit for bit; days
        where a row has no finite sample are dropped, as per-row grouping
        does.
        """
        day_idx, swings = counts.daily_swings()
        profiles = []
        for row in swings:
            present = ~np.isnan(row)
            profiles.append(self._profile(day_idx[present], row[present]))
        return profiles

    def _profile(self, days: np.ndarray, swings: np.ndarray) -> SwingProfile:
        """Build the profile from per-day swings (shared by both paths)."""
        if days.size == 0:
            return SwingProfile(
                days=days,
                swings=swings,
                wide_days=np.array([], dtype=bool),
                is_wide=False,
                max_swing=float("nan"),
            )
        wide = swings >= self.min_swing

        # place wide flags on a dense day axis so calendar gaps count as
        # non-wide days inside the sliding window
        first, last = int(days[0]), int(days[-1])
        dense = np.zeros(last - first + 1, dtype=np.int64)
        dense[days - first] = wide.astype(np.int64)

        persistent = False
        if dense.size >= self.window_days:
            window_sums = np.convolve(dense, np.ones(self.window_days, dtype=np.int64), "valid")
            persistent = bool((window_sums >= self.min_wide_days).any())
        else:
            # shorter observations: accept if the rate would satisfy 4-of-7
            persistent = dense.sum() >= min(self.min_wide_days, dense.size) and dense.sum() > 0
            persistent = persistent and (dense.sum() / dense.size) >= (
                self.min_wide_days / self.window_days
            )

        return SwingProfile(
            days=days,
            swings=swings,
            wide_days=wide,
            is_wide=persistent,
            max_swing=float(swings.max()),
        )
