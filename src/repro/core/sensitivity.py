"""Change-sensitive block classification (§2.4, Table 2's funnel).

A block is *change-sensitive* when it is (1) responsive, (2) diurnal and
(3) shows a persistent wide daily swing.  Such blocks reflect human daily
schedules strongly enough that the *disappearance* of the pattern is
detectable — the paper's precondition for inferring human-activity
changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..timeseries.series import BlockMatrix, TimeSeries
from .diurnal import DiurnalTest, DiurnalVerdict
from .swing import SwingProfile, SwingTest

__all__ = ["BlockClassification", "SensitivityClassifier"]


@dataclass(frozen=True)
class BlockClassification:
    """The funnel position of one block (Table 2 rows)."""

    responsive: bool
    diurnal: DiurnalVerdict | None
    swing: SwingProfile | None

    @property
    def is_diurnal(self) -> bool:
        return self.diurnal is not None and self.diurnal.is_diurnal

    @property
    def is_wide_swing(self) -> bool:
        return self.swing is not None and self.swing.is_wide

    @property
    def is_change_sensitive(self) -> bool:
        return self.responsive and self.is_diurnal and self.is_wide_swing

    @property
    def funnel_row(self) -> str:
        """The finest Table 2 category this block lands in."""
        if not self.responsive:
            return "not responsive"
        if self.is_change_sensitive:
            return "change-sensitive"
        return "not change-sensitive"


@dataclass(frozen=True)
class SensitivityClassifier:
    """Combines the diurnality and swing tests (§2.4)."""

    diurnal_test: DiurnalTest = field(default_factory=DiurnalTest)
    swing_test: SwingTest = field(default_factory=SwingTest)

    def classify(self, counts: TimeSeries) -> BlockClassification:
        """Classify a reconstructed active-count series.

        A block with no finite, positive sample is non-responsive (it
        never answered or was never fully reconstructed).
        """
        finite = counts.values[np.isfinite(counts.values)]
        responsive = finite.size > 0 and bool((finite > 0).any())
        if not responsive:
            return BlockClassification(responsive=False, diurnal=None, swing=None)
        return BlockClassification(
            responsive=True,
            diurnal=self.diurnal_test.evaluate(counts),
            swing=self.swing_test.evaluate(counts),
        )

    def classify_batch(self, counts: BlockMatrix) -> list[BlockClassification]:
        """Row-wise :meth:`classify` over a block matrix.

        Responsive rows share one batched diurnal and swing evaluation;
        row ``i`` equals ``classify(counts.row(i))`` bit for bit.
        """
        values = counts.values
        responsive = (np.isfinite(values) & (values > 0)).any(axis=1)
        out = [
            BlockClassification(responsive=False, diurnal=None, swing=None)
            for _ in range(len(counts))
        ]
        live = np.flatnonzero(responsive)
        if live.size:
            sub = counts.take(live)
            verdicts = self.diurnal_test.evaluate_batch(sub)
            profiles = self.swing_test.evaluate_batch(sub)
            for k, i in enumerate(live):
                out[i] = BlockClassification(
                    responsive=True, diurnal=verdicts[k], swing=profiles[k]
                )
        return out
