"""Outage detection on reconstructed counts (the §2.6 cross-check).

The paper filters paired down/up CUSUM changes as outages and notes that
"we can filter out such events by comparing them with outage detections"
— Trinocular's own output.  This module provides that comparator: a
simple outage detector over the reconstructed count series (activity
collapses to near zero relative to its recent baseline, then recovers),
plus the corroboration helper that re-labels CUSUM change events that
overlap a detected outage.

This is deliberately simpler than full Trinocular Bayesian inference:
the pipeline only needs outage *intervals* to cross-check change causes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.series import SECONDS_PER_DAY, TimeSeries
from .changes import ChangeEvent

__all__ = ["OutageInterval", "OutageDetector", "corroborate_changes"]


@dataclass(frozen=True)
class OutageInterval:
    """One detected outage: activity collapsed below the floor."""

    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def overlaps(self, start_s: float, end_s: float, slack_s: float = 0.0) -> bool:
        return self.start_s - slack_s <= end_s and start_s <= self.end_s + slack_s


@dataclass(frozen=True)
class OutageDetector:
    """Detects collapses of the active count relative to a rolling baseline.

    A sample is *out* when the count falls below ``floor_fraction`` of the
    trailing ``baseline_days`` median (and the baseline itself is at least
    ``min_baseline`` addresses, so dark blocks are not all-outage).
    Consecutive out-samples merge into intervals; intervals shorter than
    ``min_duration_s`` are noise and dropped, and intervals that never
    recover before the series ends are kept (open-ended outages).
    """

    floor_fraction: float = 0.15
    baseline_days: float = 3.0
    min_baseline: float = 2.0
    min_duration_s: float = 1_320.0  # two probing rounds
    max_duration_s: float = 5 * SECONDS_PER_DAY  # longer = not an "outage"

    def detect(self, counts: TimeSeries) -> tuple[OutageInterval, ...]:
        """Find outage intervals in a reconstructed count series."""
        good = np.isfinite(counts.values)
        if good.sum() < 4:
            return ()
        times = counts.times[good]
        values = counts.values[good]

        baseline = self._trailing_median(times, values)
        out = (values < self.floor_fraction * baseline) & (
            baseline >= self.min_baseline
        )
        intervals: list[tuple[OutageInterval, float, bool]] = []
        start: float | None = None
        start_baseline = 0.0
        for i, (t, is_out) in enumerate(zip(times, out)):
            if is_out and start is None:
                start = float(t)
                start_baseline = float(baseline[i])
            elif not is_out and start is not None:
                intervals.append((OutageInterval(start, float(t)), start_baseline, False))
                start = None
        if start is not None:
            intervals.append(
                (OutageInterval(start, float(times[-1])), start_baseline, True)
            )

        kept: list[OutageInterval] = []
        for interval, pre_level, open_ended in intervals:
            if not self.min_duration_s <= interval.duration_s <= self.max_duration_s:
                continue
            if not open_ended and not self._recovers(
                times, values, interval.end_s, pre_level
            ):
                # activity never came back: a shutdown/migration, not an
                # outage (the paper's outage filter needs the paired
                # recovery; permanent changes are the signal, not noise)
                continue
            kept.append(interval)
        return tuple(kept)

    def _recovers(
        self, times: np.ndarray, values: np.ndarray, end_s: float, pre_level: float
    ) -> bool:
        """Did the count return to near its pre-outage level afterwards?"""
        after = values[(times >= end_s) & (times < end_s + SECONDS_PER_DAY)]
        if after.size == 0:
            return True  # nothing to judge; give the interval the benefit
        return float(np.median(after)) >= 0.5 * pre_level

    def _trailing_median(self, times: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Median of the trailing window, excluding the current sample."""
        window_s = self.baseline_days * SECONDS_PER_DAY
        starts = np.searchsorted(times, times - window_s, side="left")
        baseline = np.empty_like(values)
        for i in range(values.size):
            lo = int(starts[i])
            segment = values[lo:i]
            baseline[i] = np.median(segment) if segment.size else values[0]
        return baseline


def corroborate_changes(
    events: tuple[ChangeEvent, ...],
    outages: tuple[OutageInterval, ...],
    *,
    slack_s: float = SECONDS_PER_DAY,
) -> tuple[ChangeEvent, ...]:
    """Re-label change events that coincide with detected outages.

    A human-candidate change whose onset-to-ending span overlaps a
    detected outage (within ``slack_s``) is re-labelled
    ``"outage-confirmed"`` — the paper's §2.6 comparison against outage
    detections.  Other events pass through unchanged.
    """
    if not outages:
        return events
    out: list[ChangeEvent] = []
    for event in events:
        if event.cause in ("human-candidate", "outage-like") and any(
            iv.overlaps(event.start_s, event.end_s, slack_s) for iv in outages
        ):
            out.append(event.with_cause("outage-confirmed"))
        else:
            out.append(event)
    return tuple(out)
