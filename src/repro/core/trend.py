"""Trend extraction from reconstructed counts (§2.5).

The active-count signal mixes the long-term baseline with daily and
weekly cycles.  We resample to an hourly grid, interpolate reconstruction
gaps, and run a seasonality decomposition — STL by default (robust to
outliers, the paper's choice) or the naive classical model (the §2.5
ablation baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.detect import zscore_rows
from ..timeseries.naive import naive_decompose
from ..timeseries.series import SECONDS_PER_HOUR, BlockMatrix, TimeSeries
from ..timeseries.stl import STLResult, stl_decompose, stl_decompose_batch

__all__ = ["MIN_ABS_SCALE", "MIN_REL_SCALE", "TrendExtractor", "TrendResult"]

#: default normalization-scale floors (see :meth:`TrendResult.normalize`);
#: the batched detect stage applies the same floors via ``zscore_rows``
MIN_ABS_SCALE = 0.5
MIN_REL_SCALE = 0.02


@dataclass(frozen=True)
class TrendResult:
    """Hourly decomposition of a block's count series."""

    hourly: TimeSeries  # resampled observed counts (NaN-interpolated)
    trend: TimeSeries
    seasonal: TimeSeries
    residual: TimeSeries
    period: int
    method: str

    @property
    def normalized_trend(self) -> TimeSeries:
        """The z-scored trend CUSUM consumes (§2.6)."""
        return self.normalize()

    def normalize(
        self, min_abs_scale: float = MIN_ABS_SCALE, min_rel_scale: float = MIN_REL_SCALE
    ) -> TimeSeries:
        """Z-score the trend with a floor on the normalization scale.

        Pure z-scoring amplifies arbitrarily small wobbles on blocks whose
        trend never really moves; flooring the scale at ``min_abs_scale``
        addresses (and ``min_rel_scale`` of the mean level) keeps
        sub-address noise below the CUSUM threshold — the same rationale
        as the paper's 5-address swing floor ("too small makes the
        algorithm vulnerable to noise such as individual computer
        restarts", §2.4).

        Routes through :func:`repro.timeseries.detect.zscore_rows` with a
        single row, so per-block and batched normalization are identical.
        """
        values = self.trend.values
        if not np.isfinite(values).any():
            return self.trend
        normalized = zscore_rows(
            values[None, :], min_abs_scale=min_abs_scale, min_rel_scale=min_rel_scale
        )
        return self.trend.with_values(normalized[0])


@dataclass(frozen=True)
class TrendExtractor:
    """Configured seasonal-trend decomposition.

    ``period`` is in samples of the hourly grid.  The default 24 models
    the daily cycle, like the paper's 11-minute-sampled STL: the weekly
    wiggle stays in the trend (visible in the paper's Figure 1b) and the
    CUSUM drift — 0.13 z-units/day at the paper's parameters — absorbs
    it.  168 models the full week instead: a much smoother trend, at the
    cost of sluggish response to sharp events.
    """

    method: str = "stl"  # "stl" | "naive"
    period: int = 24
    seasonal_smoother: int | None = None  # None = periodic seasonal
    robust: bool = True

    def extract(self, counts: TimeSeries) -> TrendResult:
        """Decompose a round- or hour-sampled count series."""
        hourly = counts.resample_mean(SECONDS_PER_HOUR).interpolate_nan()
        values = hourly.values
        finite = np.isfinite(values)
        if not finite.all():
            # leading/trailing NaNs survive interpolate_nan: hold them flat
            if finite.any():
                first = int(np.argmax(finite))
                last = values.size - 1 - int(np.argmax(finite[::-1]))
                values = values.copy()
                values[:first] = values[first]
                values[last + 1 :] = values[last]
            else:
                raise ValueError("cannot extract a trend from an all-NaN series")
            hourly = hourly.with_values(values)

        if hourly.values.size < 2 * self.period:
            raise ValueError(
                f"need at least {2 * self.period} hourly samples, got {hourly.values.size}"
            )

        decomposition = self._decompose(hourly.values)
        return TrendResult(
            hourly=hourly,
            trend=hourly.with_values(decomposition.trend),
            seasonal=hourly.with_values(decomposition.seasonal),
            residual=hourly.with_values(decomposition.residual),
            period=self.period,
            method=self.method,
        )

    def extract_batch(self, counts: BlockMatrix) -> list["TrendResult | None"]:
        """Row-wise :meth:`extract` over a block matrix.

        Rows whose per-block call would raise ``ValueError`` (all-NaN after
        resampling, or fewer than two periods of hourly samples) come back
        as ``None`` — the trend stage treats both identically.  Usable rows
        run one batched STL decomposition and are bit-identical to
        ``extract(counts.row(i))`` (see ``docs/algorithms.md`` §12).
        """
        n_rows = len(counts)
        hourly = counts.resample_mean(SECONDS_PER_HOUR).interpolate_nan()
        if hourly.times.size < 2 * self.period:
            return [None] * n_rows
        values = hourly.values
        finite = np.isfinite(values)
        usable = finite.any(axis=1)
        if not finite.all():
            values = values.copy()
            for i in np.flatnonzero(usable & ~finite.all(axis=1)):
                # leading/trailing NaNs survive interpolate_nan: hold them flat
                row = values[i]
                good = finite[i]
                first = int(np.argmax(good))
                last = row.size - 1 - int(np.argmax(good[::-1]))
                row[:first] = row[first]
                row[last + 1 :] = row[last]

        results: list[TrendResult | None] = [None] * n_rows
        live = np.flatnonzero(usable)
        if not live.size:
            return results
        if self.method == "stl":
            decomposition = stl_decompose_batch(
                values[live],
                self.period,
                seasonal_smoother=self.seasonal_smoother,
                outer_iterations=1 if self.robust else 0,
            )
            parts = [
                (
                    decomposition.trend[k],
                    decomposition.seasonal[k],
                    decomposition.residual[k],
                )
                for k in range(live.size)
            ]
        else:
            # the naive model is one cheap pass; run the oracle row by row
            per_row = [self._decompose(values[i]) for i in live]
            parts = [(d.trend, d.seasonal, d.residual) for d in per_row]
        for k, i in enumerate(live):
            series = TimeSeries(hourly.times, values[i])
            trend_values, seasonal_values, residual_values = parts[k]
            results[i] = TrendResult(
                hourly=series,
                trend=series.with_values(trend_values),
                seasonal=series.with_values(seasonal_values),
                residual=series.with_values(residual_values),
                period=self.period,
                method=self.method,
            )
        return results

    def _decompose(self, values: np.ndarray) -> STLResult:
        if self.method == "stl":
            return stl_decompose(
                values,
                self.period,
                seasonal_smoother=self.seasonal_smoother,
                outer_iterations=1 if self.robust else 0,
            )
        if self.method == "naive":
            return naive_decompose(values, self.period)
        raise ValueError(f"unknown trend method: {self.method!r}")
