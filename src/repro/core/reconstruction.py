"""Address reconstruction: from probe logs to active-address counts.

Implements §2.3: observers scan incrementally, so we accumulate the last
observed state of every E(b) address ("addresses do not change state
until they are re-scanned") and emit the estimated active count over
time.  The estimate is undefined (NaN) until every E(b) address has been
observed at least once — only then is the reconstruction *complete*
(paper Figure 2: the first round with no output).

Also computes full-block-scan (FBS) times — how long the probe stream
takes to touch every E(b) address — the quantity behind §3.1 and
Figures 3 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.observations import ObservationSeries
from ..timeseries.series import TimeSeries

__all__ = [
    "Reconstruction",
    "reconstruct",
    "full_scan_durations",
    "full_scan_durations_reference",
]


@dataclass(frozen=True)
class Reconstruction:
    """Active-address estimate for one block.

    ``counts`` is sampled on the requested grid; samples before the first
    complete scan are NaN.  ``complete_time_s`` is NaN when some E(b)
    address was never probed within the observation window.
    """

    counts: TimeSeries
    complete_time_s: float
    eb_size: int
    observed_addresses: np.ndarray

    @property
    def is_complete(self) -> bool:
        return bool(np.isfinite(self.complete_time_s))

    @property
    def max_count(self) -> float:
        good = ~np.isnan(self.counts.values)
        return float(self.counts.values[good].max()) if good.any() else float("nan")


def reconstruct(
    observations: ObservationSeries,
    eb_addresses: np.ndarray,
    sample_times: np.ndarray,
) -> Reconstruction:
    """Hold-last-state reconstruction of the active-address count.

    Parameters
    ----------
    observations:
        Time-ordered probe log (single observer or merged, §2.7).
    eb_addresses:
        The block's ever-active list E(b) (last octets).  Addresses probed
        but absent from E(b) are ignored; reconstruction is complete only
        when all of E(b) has been seen.
    sample_times:
        Grid (seconds since epoch) on which to emit the estimate.
    """
    eb = np.asarray(eb_addresses)
    sample_times = np.asarray(sample_times, dtype=np.float64)
    m = eb.size

    if observations.is_empty or m == 0:
        return Reconstruction(
            counts=TimeSeries(sample_times, np.full(sample_times.size, np.nan)),
            complete_time_s=float("nan"),
            eb_size=m,
            observed_addresses=np.array([], dtype=eb.dtype),
        )

    in_eb = np.isin(observations.addresses, eb)
    times = observations.times[in_eb]
    addrs = observations.addresses[in_eb]
    results = observations.results[in_eb].astype(np.int8)

    if times.size == 0:
        return Reconstruction(
            counts=TimeSeries(sample_times, np.full(sample_times.size, np.nan)),
            complete_time_s=float("nan"),
            eb_size=m,
            observed_addresses=np.array([], dtype=eb.dtype),
        )

    # group probes by address, preserving time order within each group
    order = np.lexsort((np.arange(times.size), addrs))
    g_times = times[order]
    g_addrs = addrs[order]
    g_results = results[order]
    new_group = np.empty(g_addrs.size, dtype=bool)
    new_group[0] = True
    new_group[1:] = g_addrs[1:] != g_addrs[:-1]

    # per-address state deltas: first probe sets state from 0, later
    # probes change the count only when the observed state flips
    prev = np.empty_like(g_results)
    prev[0] = 0
    prev[1:] = g_results[:-1]
    prev[new_group] = 0
    deltas = g_results - prev
    keep = deltas != 0

    event_times = g_times[keep]
    event_deltas = deltas[keep]
    ev_order = np.argsort(event_times, kind="stable")
    event_times = event_times[ev_order]
    cum = np.cumsum(event_deltas[ev_order])

    # count at each sample time: last cumulative value at or before it
    if event_times.size:
        idx = np.searchsorted(event_times, sample_times, side="right") - 1
        values = np.where(idx >= 0, cum[np.maximum(idx, 0)], 0).astype(np.float64)
    else:
        # every probe agreed with the initial all-inactive state
        values = np.zeros(sample_times.size, dtype=np.float64)

    # completeness: every E(b) address seen at least once
    observed = np.unique(g_addrs)
    if observed.size >= m:
        first_seen = g_times[new_group]
        complete_time = float(first_seen.max())
        values[sample_times < complete_time] = np.nan
    else:
        complete_time = float("nan")
        values[:] = np.nan

    return Reconstruction(
        counts=TimeSeries(sample_times, values),
        complete_time_s=complete_time,
        eb_size=m,
        observed_addresses=observed,
    )


def full_scan_durations(
    observations: ObservationSeries,
    eb_addresses: np.ndarray,
    *,
    max_scans: int | None = None,
) -> np.ndarray:
    """Durations of successive full scans of E(b) (Figure 3's statistic).

    A scan starting at probe ``i`` completes at the first later probe by
    which every E(b) address has been touched; the next scan starts at
    the following probe.  Returns an empty array when E(b) is never fully
    covered.

    Vectorized: one stable argsort groups probes by address, giving each
    probe its previous same-address index ``prev[j]``.  A scan starting
    at ``i0`` completes at ``max{j >= i0 : prev[j] < i0}`` — the latest
    first-occurrence-in-suffix over all addresses — found with a single
    mask over the suffix per scan instead of one ``searchsorted`` per
    address (the O(A·N) occurrence-dict build disappears entirely).
    :func:`full_scan_durations_reference` keeps the scalar walk as the
    oracle; results are identical.
    """
    eb = np.asarray(eb_addresses)
    if observations.is_empty or eb.size == 0:
        return np.array([], dtype=np.float64)

    in_eb = np.isin(observations.addresses, eb)
    times = observations.times[in_eb]
    addrs = observations.addresses[in_eb]
    if times.size == 0:
        return np.array([], dtype=np.float64)

    uniq, inverse = np.unique(addrs, return_inverse=True)
    n_eb = np.unique(eb).size
    if uniq.size < n_eb:  # some E(b) address is never probed at all
        return np.array([], dtype=np.float64)

    # prev[j] = index of the previous probe of the same address, or -1;
    # probe j is its address's first occurrence in [i0, n) iff prev[j] < i0
    n = times.size
    grouped = np.argsort(inverse, kind="stable")
    gaddr = inverse[grouped]
    prev = np.empty(n, dtype=np.int64)
    prev[grouped[0]] = -1
    prev[grouped[1:]] = np.where(gaddr[1:] == gaddr[:-1], grouped[:-1], -1)

    durations: list[float] = []
    i0 = 0
    while i0 < n:
        firsts = np.flatnonzero(prev[i0:] < i0)  # one per address in the suffix
        if firsts.size < n_eb:  # some address never re-appears: incomplete scan
            break
        end = i0 + int(firsts[-1])
        durations.append(float(times[end] - times[i0]))
        i0 = end + 1
        if max_scans is not None and len(durations) >= max_scans:
            break
    return np.asarray(durations, dtype=np.float64)


def full_scan_durations_reference(
    observations: ObservationSeries,
    eb_addresses: np.ndarray,
    *,
    max_scans: int | None = None,
) -> np.ndarray:
    """Scalar-walk oracle for :func:`full_scan_durations` (tests only)."""
    eb = np.asarray(eb_addresses)
    if observations.is_empty or eb.size == 0:
        return np.array([], dtype=np.float64)

    in_eb = np.isin(observations.addresses, eb)
    times = observations.times[in_eb]
    addrs = observations.addresses[in_eb]
    if times.size == 0:
        return np.array([], dtype=np.float64)

    # per-address sorted probe indices
    occurrences = {int(a): np.flatnonzero(addrs == a) for a in eb}
    if any(occ.size == 0 for occ in occurrences.values()):
        return np.array([], dtype=np.float64)

    durations: list[float] = []
    i0 = 0
    n = times.size
    while i0 < n:
        end = -1
        for occ in occurrences.values():
            k = int(np.searchsorted(occ, i0, side="left"))
            if k >= occ.size:
                end = -1
                break
            end = max(end, int(occ[k]))
        if end < 0:
            break
        durations.append(float(times[end] - times[i0]))
        i0 = end + 1
        if max_scans is not None and len(durations) >= max_scans:
            break
    return np.asarray(durations, dtype=np.float64)
