"""1-loss repair: mitigating congestive probe loss (§2.3, §3.3).

Reconstruction interprets a non-reply as "inactive until re-probed", so a
single lost query can erase an address for a full scan cycle.  1-loss
repair (from the Internet-survey methodology, [49] §3.5) replaces the
per-address pattern reply/non-reply/reply (101) with 111 — the better
explanation for an isolated non-reply between replies is a lost packet,
not a sub-round dip in usage.  Patterns 001, 110, 100 etc. are left
untouched, so genuine state changes survive.

Repair is applied per observer, before merging: loss happens on an
observer's own path, and the pattern test is only meaningful within one
probe stream.
"""

from __future__ import annotations

import numpy as np

from ..net.observations import ObservationSeries

__all__ = ["one_loss_repair", "repaired_fraction"]


def _repair_mask(addresses: np.ndarray, results: np.ndarray) -> np.ndarray:
    """Boolean mask of probes to flip from 0 to 1 (time-ordered input)."""
    order = np.lexsort((np.arange(addresses.size), addresses))
    a = addresses[order]
    r = results[order]

    same_prev = np.zeros(a.size, dtype=bool)
    same_next = np.zeros(a.size, dtype=bool)
    same_prev[1:] = a[1:] == a[:-1]
    same_next[:-1] = a[:-1] == a[1:]

    pattern = np.zeros(a.size, dtype=bool)
    if a.size >= 3:
        pattern[1:-1] = (
            ~r[1:-1]
            & r[:-2]
            & r[2:]
            & same_prev[1:-1]
            & same_next[1:-1]
        )

    mask = np.zeros(a.size, dtype=bool)
    mask[order] = pattern
    return mask


def one_loss_repair(observations: ObservationSeries) -> ObservationSeries:
    """Return a copy of the probe log with isolated non-replies repaired."""
    if len(observations) < 3:
        return observations
    mask = _repair_mask(observations.addresses, observations.results)
    if not mask.any():
        return observations
    repaired = observations.results.copy()
    repaired[mask] = True
    return observations.with_results(repaired)


def repaired_fraction(observations: ObservationSeries) -> float:
    """Fraction of probes 1-loss repair would flip (a loss diagnostic)."""
    if len(observations) < 3:
        return 0.0
    return float(_repair_mask(observations.addresses, observations.results).mean())
