"""Multi-observer combination and cross-observer health checks (§2.7).

Merging is a time-ordered interleave (:func:`merge_observations`); what
this module adds is the paper's observer-independence check: analyze each
observer separately, compare their per-block reply rates, and flag
observers that disagree with the consensus — the procedure that exposed
the hardware problems at sites c and g in 2020 and the congested path of
observer w (§3.3, Figure 6d).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..net.observations import ObservationSeries, merge_observations

__all__ = ["ObserverHealth", "combine_observers", "compare_observers", "flag_outlier_observers"]


@dataclass(frozen=True)
class ObserverHealth:
    """Per-observer reply-rate diagnostic for one block."""

    observer: str
    reply_rate: float
    n_probes: int
    deviation: float  # reply rate minus the median across observers

    @property
    def suspicious(self) -> bool:
        """Markedly below consensus: congested path or broken site."""
        return self.deviation < -0.05


def combine_observers(series: list[ObservationSeries]) -> ObservationSeries:
    """Merge per-observer logs into one stream (§2.7)."""
    return merge_observations(series)


def compare_observers(series: list[ObservationSeries]) -> list[ObserverHealth]:
    """Reply-rate comparison across observers for one block."""
    rates = np.array([s.reply_rate() for s in series], dtype=np.float64)
    finite = rates[np.isfinite(rates)]
    median = float(np.median(finite)) if finite.size else float("nan")
    return [
        ObserverHealth(
            observer=s.observer,
            reply_rate=float(r),
            n_probes=len(s),
            deviation=float(r - median) if np.isfinite(r) else float("nan"),
        )
        for s, r in zip(series, rates)
    ]


def flag_outlier_observers(
    per_block_health: list[list[ObserverHealth]],
    *,
    min_blocks: int = 5,
    suspicious_fraction: float = 0.25,
) -> set[str]:
    """Observers suspicious on a large share of blocks (drop candidates).

    This is the cross-block version of the §2.7 test that led the paper
    to discard sites c and g in 2020.
    """
    suspicious: dict[str, int] = {}
    seen: dict[str, int] = {}
    for block_health in per_block_health:
        for h in block_health:
            seen[h.observer] = seen.get(h.observer, 0) + 1
            if h.suspicious:
                suspicious[h.observer] = suspicious.get(h.observer, 0) + 1
    return {
        obs
        for obs, total in seen.items()
        if total >= min_blocks
        and suspicious.get(obs, 0) / total >= suspicious_fraction
    }
