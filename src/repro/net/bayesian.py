"""Bayesian Trinocular probing (Quan, Heidemann & Pradkin, SIGCOMM 2013).

The paper's data source is Trinocular, whose probing is *belief driven*:
each site keeps a belief ``B(U)`` that the block is up, updated after
every probe with Bayes' rule using the block's long-term availability
``A = E(A(b))`` (the expected fraction of E(b) that responds when the
block is up).  A round probes addresses until the belief leaves the
uncertain band — typically one probe when the block is clearly up, a few
after a surprise — capped at ``max_probes_per_round``.

:class:`TrinocularObserver` in :mod:`repro.net.prober` uses the paper's
simplified description ("stops probing on the first positive response");
this module provides the full algorithm so the simplification itself can
be validated: both observers produce probe streams whose reconstructions
agree closely (see ``tests/test_bayesian.py``).

Model (from the Trinocular paper):

* block up:   P(reply | probed address in E(b)) = A
* block down: P(reply) = 0
* belief update on reply:        B' = 1 (a positive reply proves up)
* belief update on non-reply:    B' = B(1-A) / (B(1-A) + (1-B))
* probing stops when B >= belief_up (confident up) or B <= belief_down
  (confident down), or at the per-round cap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loss import LossModel, NoLoss
from .observations import ObservationSeries
from .prober import count_probe_volume
from .usage import BlockTruth

__all__ = ["BayesianTrinocularObserver"]


@dataclass(frozen=True)
class BayesianTrinocularObserver:
    """A probing site running full belief-driven Trinocular rounds."""

    name: str
    phase_offset_s: float = 0.0
    max_probes_per_round: int = 15
    probe_spacing_s: float = 3.0
    round_seconds: float = 660.0
    #: stop probing when the belief that the block is up leaves this band
    belief_up: float = 0.9
    belief_down: float = 0.1
    #: floor for the availability estimate (avoids degenerate updates)
    min_availability: float = 0.05

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        availability: float | None = None,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        """Probe one block with belief-driven rounds.

        ``availability`` is the long-term estimate A the real system reads
        from history; when omitted it is computed from the ground truth
        (which is what the history would converge to).
        """
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0 or truth.n_cols == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        if m != truth.n_addresses:
            raise ValueError("order must permute the block's E(b) addresses")

        a_est = float(truth.active.mean()) if availability is None else float(availability)
        a_est = max(a_est, self.min_availability)

        n_rounds = max(
            int(np.ceil((end_s - start_s - self.phase_offset_s) / self.round_seconds)), 0
        )
        round_starts = start_s + self.phase_offset_s + np.arange(n_rounds) * self.round_seconds
        loss_p = loss.loss_probability(round_starts) if loss.max_probability() > 0 else None

        flat = truth.active.astype(np.uint8).tobytes()
        n_cols = truth.n_cols
        col_origin = float(truth.col_times[0])
        inv_round = 1.0 / truth.round_seconds
        order_list = order.tolist()
        addr_of = truth.addresses.tolist()
        max_probes = min(self.max_probes_per_round, m)

        draw_buf = rng.random(4096)
        draw_i = 0

        times: list[float] = []
        addrs: list[int] = []
        results: list[bool] = []
        t_app, a_app, r_app = times.append, addrs.append, results.append

        belief = 0.5  # uninformed prior at start-up
        miss_factor = 1.0 - a_est
        cur = start_cursor % m
        for r in range(n_rounds):
            t = round_starts[r]
            if t >= end_s:
                break
            p = 0.0 if loss_p is None else loss_p[r]
            k = 0
            while True:
                idx = order_list[cur]
                col = int((t - col_origin) * inv_round)
                if col >= n_cols:
                    col = n_cols - 1
                elif col < 0:
                    col = 0
                st = flat[idx * n_cols + col]
                if st and p > 0.0:
                    if draw_i >= 4096:
                        draw_buf = rng.random(4096)
                        draw_i = 0
                    if draw_buf[draw_i] < p:
                        st = 0
                    draw_i += 1
                t_app(t)
                a_app(addr_of[idx])
                r_app(bool(st))
                cur += 1
                if cur == m:
                    cur = 0
                k += 1

                # Bayes update on the up-belief
                if st:
                    belief = 1.0
                else:
                    up_mass = belief * miss_factor
                    belief = up_mass / (up_mass + (1.0 - belief))
                if (
                    belief >= self.belief_up
                    or belief <= self.belief_down
                    or k >= max_probes
                ):
                    break
                t += self.probe_spacing_s
                if t >= end_s:
                    break
            # between rounds the belief decays slightly toward uncertainty
            # (state can change while we are not looking)
            belief = 0.5 + (belief - 0.5) * 0.9
        return count_probe_volume(
            "bayesian",
            ObservationSeries(
                times=np.asarray(times, dtype=np.float64),
                addresses=np.asarray(addrs, dtype=np.int16),
                results=np.asarray(results, dtype=bool),
                observer=self.name,
            ),
        )
