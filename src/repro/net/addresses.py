"""IPv4 /24 block and address primitives.

The paper's unit of analysis is the /24 block: 256 adjacent IPv4
addresses sharing a 24-bit prefix (§2).  Blocks are identified by the
integer value of their network address; individual addresses within a
block are referred to by their last octet (0-255).
"""

from __future__ import annotations

from dataclasses import dataclass

BLOCK_SIZE = 256

__all__ = ["BLOCK_SIZE", "BlockAddress", "format_ipv4", "parse_ipv4"]


def format_ipv4(value: int) -> str:
    """Render a 32-bit integer as dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit IPv4 address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad notation to a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@dataclass(frozen=True, order=True)
class BlockAddress:
    """A /24 IPv4 block, identified by its network address.

    >>> blk = BlockAddress.from_cidr("128.9.144.0/24")
    >>> blk.cidr
    '128.9.144.0/24'
    >>> blk.address(17)
    '128.9.144.17'
    """

    network: int

    def __post_init__(self) -> None:
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise ValueError(f"not a 32-bit network address: {self.network}")
        if self.network & 0xFF:
            raise ValueError(
                f"/24 network address must end in .0, got {format_ipv4(self.network)}"
            )

    @classmethod
    def from_cidr(cls, text: str) -> "BlockAddress":
        """Parse ``a.b.c.0/24`` notation (the ``/24`` suffix is optional)."""
        base = text.split("/", 1)[0]
        if "/" in text and text.rsplit("/", 1)[1] != "24":
            raise ValueError(f"only /24 blocks are supported: {text!r}")
        return cls(parse_ipv4(base))

    @classmethod
    def from_index(cls, index: int) -> "BlockAddress":
        """Build the ``index``-th /24 block of the address space."""
        return cls(index << 8)

    @property
    def cidr(self) -> str:
        return f"{format_ipv4(self.network)}/24"

    @property
    def index(self) -> int:
        """The block's ordinal among all /24s (network >> 8)."""
        return self.network >> 8

    def address(self, last_octet: int) -> str:
        """Dotted-quad for the address with the given last octet."""
        if not 0 <= last_octet < BLOCK_SIZE:
            raise ValueError(f"last octet out of range: {last_octet}")
        return format_ipv4(self.network | last_octet)

    def __str__(self) -> str:
        return self.cidr
