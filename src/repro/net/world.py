"""The synthetic-Internet world model.

A :class:`WorldModel` is a deterministic population of routed /24 blocks:
each block gets a city (weighted by the regional density of paper
Figure 7), an address-use kind drawn from the city's profile mix, a noisy
geolocation, a calendar of human events (per country) and network events
(per block), and possibly a congested path from one of the observers
(§3.3).  Everything derives from a single seed, so worlds are fully
reproducible.

Scenarios supply the event schedule.  :func:`scenario_covid2020` encodes
the early-2020 ground truth the paper validates against — per-country WFH
dates from its §3.6/§3.7 news survey, Spring Festival, the Wuhan
lockdown, the Delhi riots and Janata curfew.  :func:`scenario_baseline2023`
is the 2023q1 control of Appendix B.3/B.4: Spring Festival only, no
Covid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, datetime

import numpy as np

from .addresses import BlockAddress
from .events import (
    Calendar,
    Curfew,
    Event,
    Holiday,
    Outage,
    Renumbering,
    ServiceWindow,
    WorkFromHome,
)
from .geo import WORLD_CITIES, City, GeoInfo
from .loss import BernoulliLoss, DiurnalCongestionLoss, LossModel
from .usage import (
    ROUND_SECONDS,
    BlockTruth,
    DynamicPoolUsage,
    FirewalledUsage,
    HomeEveningUsage,
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    UsageModel,
    WorkplaceUsage,
    round_grid,
)

__all__ = [
    "BlockSpec",
    "Scenario",
    "WorldModel",
    "PROFILE_MIXES",
    "scenario_covid2020",
    "scenario_baseline2023",
]


# ---------------------------------------------------------------------------
# profile mixes: fractions of block kinds among *responsive* blocks.
# Shapes follow the paper: diurnal candidates (pool/workplace/home) are a
# small share everywhere but largest where public dynamic IPs are the norm
# (Asia, Eastern Europe, Morocco); NAT dominates the West (§3.5).
# ---------------------------------------------------------------------------
PROFILE_MIXES: dict[str, dict[str, float]] = {
    "asia_dynamic": {
        "pool": 0.075,
        "workplace": 0.020,
        "home": 0.025,
        "nat": 0.210,
        "server": 0.070,
        "churn": 0.460,
        "sparse": 0.140,
    },
    "nat_heavy": {
        "pool": 0.005,
        "workplace": 0.020,
        "home": 0.010,
        "nat": 0.440,
        "server": 0.100,
        "churn": 0.310,
        "sparse": 0.115,
    },
    "mixed": {
        "pool": 0.030,
        "workplace": 0.020,
        "home": 0.015,
        "nat": 0.320,
        "server": 0.080,
        "churn": 0.400,
        "sparse": 0.135,
    },
    "university": {
        "pool": 0.020,
        "workplace": 0.250,
        "home": 0.020,
        "nat": 0.200,
        "server": 0.100,
        "churn": 0.300,
        "sparse": 0.110,
    },
}

DIURNAL_KINDS = frozenset({"pool", "workplace", "home"})


@dataclass(frozen=True)
class BlockSpec:
    """Everything needed to regenerate one block deterministically."""

    block: BlockAddress
    city: City
    geo: GeoInfo
    kind: str  # pool | workplace | home | nat | server | churn | sparse | firewalled
    seed: int
    events: tuple[Event, ...] = ()
    lossy_observers: frozenset[str] = frozenset()

    @property
    def responsive_by_design(self) -> bool:
        return self.kind != "firewalled"


@dataclass(frozen=True)
class Scenario:
    """An event schedule over the world's countries and blocks."""

    name: str
    epoch: datetime  # UTC midnight; world time zero
    max_duration_s: float
    wfh_dates: dict[str, date] = field(default_factory=dict)
    wfh_factors: dict[str, float] = field(default_factory=dict)  # per-country work factor
    wfh_pool_factors: dict[str, float] = field(default_factory=dict)  # per-country pool factor
    holidays: dict[str, tuple[Holiday, ...]] = field(default_factory=dict)
    city_events: dict[str, tuple[Event, ...]] = field(default_factory=dict)
    wfh_compliance: float = 0.85  # probability a block follows its country's WFH
    outage_rate: float = 0.20  # fraction of blocks suffering one random outage
    renumber_rate: float = 0.03
    #: fraction of diurnal blocks whose service starts late or dies early
    #: (target-list churn; drives the quarter-to-quarter CS churn of S3.4)
    service_churn_rate: float = 0.30
    #: observer -> (country, probability, loss model) congested paths
    congested_paths: tuple[tuple[str, str, float, LossModel], ...] = ()
    #: baseline random loss on every path
    base_loss: LossModel = field(default_factory=lambda: BernoulliLoss(0.004))
    #: observers with known hardware problems (heavy loss; §2.2 sites c, g)
    broken_observers: dict[str, LossModel] = field(default_factory=dict)

    def country_events(self, city: City, rng: np.random.Generator) -> tuple[Event, ...]:
        """Human-activity events for a block in ``city``."""
        events: list[Event] = []
        events.extend(self.holidays.get(city.country, ()))
        events.extend(self.city_events.get(city.name, ()))
        wfh_date = self.wfh_dates.get(city.country)
        if wfh_date is not None and rng.random() < self.wfh_compliance:
            events.append(
                WorkFromHome(
                    start=wfh_date,
                    work_factor=self.wfh_factors.get(city.country, 0.10),
                    pool_factor=self.wfh_pool_factors.get(city.country, 0.55),
                )
            )
        return tuple(events)


def scenario_covid2020() -> Scenario:
    """Early-2020 world: Covid WFH, Spring Festival, riots and curfews.

    WFH dates follow the public lockdown reports the paper matched
    detections against (§3.6, §4); Russia and Singapore fall outside
    2020q1 exactly as the paper notes.
    """
    wfh = {
        "China": date(2020, 1, 23),  # Wuhan lockdown week; nationwide measures follow
        "United States": date(2020, 3, 15),
        "Canada": date(2020, 3, 17),
        "Mexico": date(2020, 3, 23),
        "United Kingdom": date(2020, 3, 23),
        "France": date(2020, 3, 17),
        "Germany": date(2020, 3, 22),
        "Spain": date(2020, 3, 14),
        "Italy": date(2020, 3, 9),
        "Netherlands": date(2020, 3, 16),
        "Slovenia": date(2020, 3, 16),
        "Poland": date(2020, 3, 12),
        "Romania": date(2020, 3, 24),
        "Russia": date(2020, 3, 30),
        "Ukraine": date(2020, 3, 17),
        "India": date(2020, 3, 22),  # Janata curfew flowed into the Mar 24 lockdown
        "United Arab Emirates": date(2020, 3, 22),
        "Japan": date(2020, 4, 7),
        "South Korea": date(2020, 2, 25),
        "Taiwan": date(2020, 3, 20),
        "Hong Kong SAR": date(2020, 1, 29),
        "Singapore": date(2020, 4, 7),
        "Malaysia": date(2020, 3, 18),
        "Philippines": date(2020, 3, 15),
        "Thailand": date(2020, 3, 22),
        "Iran": date(2020, 3, 13),
        "Morocco": date(2020, 3, 20),
        "Egypt": date(2020, 3, 25),
        "Nigeria": date(2020, 3, 30),
        "South Africa": date(2020, 3, 27),
        "Brazil": date(2020, 3, 24),
        "Argentina": date(2020, 3, 20),
        "Colombia": date(2020, 3, 25),
        "Venezuela": date(2020, 3, 16),
        "Australia": date(2020, 3, 23),
        "New Zealand": date(2020, 3, 26),
    }
    wfh_factors = {
        # Oceania kept activity high (paper §4.1: successful travel limits)
        "Australia": 0.55,
        "New Zealand": 0.55,
        # Taiwan and Japan had mild measures in this window
        "Taiwan": 0.60,
        "Japan": 0.45,
    }
    wfh_pool_factors = {
        # India's national lockdown was among the strictest
        "India": 0.40,
        "Australia": 0.80,
        "New Zealand": 0.80,
        "Taiwan": 0.85,
        "Japan": 0.75,
    }
    spring_festival = Holiday(
        first=date(2020, 1, 24), days=8, pool_factor=0.6, name="Spring Festival"
    )
    holidays: dict[str, tuple[Holiday, ...]] = {
        "China": (spring_festival,),
        "Taiwan": (Holiday(first=date(2020, 1, 23), days=6, name="Spring Festival"),),
        "Hong Kong SAR": (Holiday(first=date(2020, 1, 25), days=4, name="Spring Festival"),),
        "South Korea": (Holiday(first=date(2020, 1, 24), days=4, name="Seollal"),),
        "United States": (
            Holiday(first=date(2020, 1, 20), name="MLK Day", pool_factor=0.95),
            Holiday(first=date(2020, 2, 17), name="Presidents' Day", pool_factor=0.95),
        ),
    }
    city_events = {
        # Wuhan's lockdown was far stricter than the national response
        "Wuhan": (
            Curfew(
                first=date(2020, 1, 23),
                days=70,
                work_factor=0.06,
                pool_factor=0.45,
                name="Wuhan lockdown",
            ),
        ),
        # Delhi riots with calls for curfew, 2020-02-23..29 (paper §4.3)
        "New Delhi": (
            Curfew(
                first=date(2020, 2, 23),
                days=7,
                work_factor=0.45,
                pool_factor=0.70,
                name="Delhi riots",
            ),
            Curfew(
                first=date(2020, 3, 22),
                days=2,
                work_factor=0.10,
                pool_factor=0.50,
                name="Janata curfew",
            ),
        ),
        # UAE disinfection campaign then night curfew (paper §3.7)
        "Abu Dhabi": (
            Curfew(
                first=date(2020, 3, 26),
                days=4,
                work_factor=0.15,
                pool_factor=0.55,
                name="UAE sterilisation curfew",
            ),
        ),
    }
    congestion = DiurnalCongestionLoss(base=0.02, peak=0.22, peak_hour=21.0, tz_hours=8.0)
    return Scenario(
        name="covid2020",
        epoch=datetime(2019, 10, 1),
        max_duration_s=274 * 86_400.0,
        wfh_dates=wfh,
        wfh_factors=wfh_factors,
        holidays=holidays,
        city_events=city_events,
        wfh_pool_factors=wfh_pool_factors,
        congested_paths=(("w", "China", 0.25, congestion),),
        broken_observers={
            "c": BernoulliLoss(0.45),
            "g": BernoulliLoss(0.45),
        },
    )


def scenario_baseline2023() -> Scenario:
    """2023q1/q2 control world: Spring Festival, no Covid events."""
    holidays = {
        "China": (
            Holiday(first=date(2023, 1, 22), days=9, pool_factor=0.6, name="Spring Festival"),
        ),
        "Taiwan": (Holiday(first=date(2023, 1, 20), days=7, name="Spring Festival"),),
        "Hong Kong SAR": (Holiday(first=date(2023, 1, 22), days=4, name="Spring Festival"),),
        "South Korea": (Holiday(first=date(2023, 1, 21), days=4, name="Seollal"),),
    }
    congestion = DiurnalCongestionLoss(base=0.02, peak=0.22, peak_hour=21.0, tz_hours=8.0)
    return Scenario(
        name="baseline2023",
        epoch=datetime(2023, 1, 1),
        max_duration_s=182 * 86_400.0,
        holidays=holidays,
        congested_paths=(("w", "China", 0.25, congestion),),
    )


# ---------------------------------------------------------------------------
# block-kind factories: per-block parameter randomization
# ---------------------------------------------------------------------------
def _build_usage(kind: str, rng: np.random.Generator) -> UsageModel:
    if kind == "workplace":
        return WorkplaceUsage(
            n_desktops=int(rng.integers(20, 120)),
            n_servers=int(rng.integers(1, 5)),
            presence=float(rng.uniform(0.78, 0.92)),
            start_hour=float(rng.uniform(8.0, 9.5)),
            end_hour=float(rng.uniform(17.0, 18.5)),
        )
    if kind == "home":
        return HomeEveningUsage(
            n_devices=int(rng.integers(10, 44)),
            presence=float(rng.uniform(0.6, 0.8)),
        )
    if kind == "pool":
        return DynamicPoolUsage(
            pool_size=int(rng.integers(64, 225)),
            peak=float(rng.uniform(0.5, 0.8)),
            trough=float(rng.uniform(0.05, 0.2)),
            peak_hour=float(rng.uniform(19.0, 22.5)),
        )
    if kind == "nat":
        return NatGatewayUsage(n_routers=int(rng.integers(2, 9)))
    if kind == "server":
        return ServerFarmUsage(n_servers=int(rng.integers(180, 251)))
    if kind == "churn":
        return SparseUsage(
            n_addresses=int(rng.integers(24, 80)),
            mean_on_days=float(rng.uniform(0.4, 1.4)),
            mean_off_days=float(rng.uniform(0.5, 2.0)),
        )
    if kind == "sparse":
        return SparseUsage(
            n_addresses=int(rng.integers(4, 14)),
            mean_on_days=float(rng.uniform(2.0, 5.0)),
            mean_off_days=float(rng.uniform(3.0, 6.0)),
        )
    if kind == "firewalled":
        return FirewalledUsage(eb_addresses=int(rng.integers(8, 33)))
    raise ValueError(f"unknown block kind: {kind}")


class WorldModel:
    """A deterministic population of routed /24 blocks.

    Parameters
    ----------
    scenario:
        Event schedule and epoch (see :func:`scenario_covid2020`).
    n_blocks:
        Number of routed blocks to simulate.  The paper's 11.1M routed
        blocks are represented proportionally at this scale.
    seed:
        Master seed; every block derives its own stream from it.
    unresponsive_fraction:
        Share of routed blocks that never answer (firewalled/unused);
        the paper sees ~0.53 (Table 2).
    diurnal_boost:
        Multiplier on the diurnal block kinds (pool/workplace/home) in
        every profile mix.  1.0 keeps the realistic, paper-like funnel
        proportions; geographic experiments oversample diurnal space
        (e.g. 3.0) so that 2x2-degree gridcells stay representable at
        laptop scale — the paper has 5.2M blocks, we have thousands.
    """

    #: ratio of allocated-but-unrouted to routed space (Table 2: 3.3M/11.1M)
    UNROUTED_RATIO = 3.3 / 11.1

    def __init__(
        self,
        scenario: Scenario,
        n_blocks: int = 400,
        seed: int = 0,
        *,
        unresponsive_fraction: float = 0.53,
        diurnal_boost: float = 1.0,
        cities: tuple[City, ...] = WORLD_CITIES,
    ) -> None:
        self.scenario = scenario
        self.seed = seed
        self.n_blocks = n_blocks
        self.unresponsive_fraction = unresponsive_fraction
        self.diurnal_boost = diurnal_boost
        self.cities = cities
        self._specs = self._populate()

    def cache_token(self) -> tuple:
        """Identity for the analysis cache (see repro.runtime.cache).

        Everything block generation depends on; two worlds with equal
        tokens produce bit-identical truths, observations and analyses.
        """
        return (
            self.scenario,
            self.n_blocks,
            self.seed,
            self.unresponsive_fraction,
            self.diurnal_boost,
            self.cities,
        )

    # -- population -----------------------------------------------------
    def _populate(self) -> tuple[BlockSpec, ...]:
        master = np.random.SeedSequence(self.seed)
        block_seeds = master.generate_state(self.n_blocks * 2).reshape(-1, 2)
        rng = np.random.default_rng(master.spawn(1)[0])

        weights = np.array([c.weight for c in self.cities], dtype=np.float64)
        weights /= weights.sum()
        city_choices = rng.choice(len(self.cities), size=self.n_blocks, p=weights)
        responsive = rng.random(self.n_blocks) >= self.unresponsive_fraction

        specs: list[BlockSpec] = []
        for i in range(self.n_blocks):
            city = self.cities[city_choices[i]]
            block_rng = np.random.default_rng(block_seeds[i])
            if responsive[i]:
                kind = self._draw_kind(city.profile, block_rng, self.diurnal_boost)
            else:
                kind = "firewalled"
            geo = GeoInfo(
                lat=city.lat + float(block_rng.normal(0, 0.12)),
                lon=city.lon + float(block_rng.normal(0, 0.12)),
                country=city.country,
                continent=city.continent,
                city=city.name,
            )
            events = self._block_events(city, kind, block_rng)
            lossy = self._lossy_observers(city, block_rng)
            specs.append(
                BlockSpec(
                    block=BlockAddress.from_index(i + 1),
                    city=city,
                    geo=geo,
                    kind=kind,
                    seed=int(block_seeds[i][0]),
                    events=events,
                    lossy_observers=lossy,
                )
            )
        return tuple(specs)

    @staticmethod
    def _draw_kind(profile: str, rng: np.random.Generator, boost: float = 1.0) -> str:
        mix = PROFILE_MIXES[profile]
        kinds = list(mix)
        probs = np.array(
            [mix[k] * (boost if k in DIURNAL_KINDS else 1.0) for k in kinds]
        )
        probs /= probs.sum()
        return str(rng.choice(kinds, p=probs))

    def _block_events(
        self, city: City, kind: str, rng: np.random.Generator
    ) -> tuple[Event, ...]:
        events = list(self.scenario.country_events(city, rng))
        horizon = self.scenario.max_duration_s
        if rng.random() < self.scenario.outage_rate:
            start = float(rng.uniform(0.05, 0.9)) * horizon
            length = float(rng.uniform(0.5, 6.0)) * 3600.0
            events.append(Outage(start_s=start, end_s=start + length))
        if kind in ("pool", "churn") and rng.random() < self.scenario.renumber_rate:
            when = float(rng.uniform(0.1, 0.9)) * horizon
            events.append(Renumbering(time_s=when, shift=int(rng.integers(16, 128))))
        if kind in ("pool", "workplace", "home") and (
            rng.random() < self.scenario.service_churn_rate
        ):
            cut = float(rng.uniform(0.2, 0.8)) * horizon
            if rng.random() < 0.5:
                events.append(ServiceWindow(start_s=cut))  # comes online late
            else:
                events.append(ServiceWindow(end_s=cut))  # goes dark early
        return tuple(events)

    def _lossy_observers(self, city: City, rng: np.random.Generator) -> frozenset[str]:
        lossy = set()
        for observer, country, prob, _model in self.scenario.congested_paths:
            if city.country == country and rng.random() < prob:
                lossy.add(observer)
        return frozenset(lossy)

    # -- accessors -------------------------------------------------------
    @property
    def blocks(self) -> tuple[BlockSpec, ...]:
        return self._specs

    @property
    def epoch(self) -> datetime:
        return self.scenario.epoch

    def calendar(self, spec: BlockSpec) -> Calendar:
        return Calendar(
            epoch=self.scenario.epoch,
            tz_hours=spec.city.tz_hours,
            events=spec.events,
        )

    def usage_model(self, spec: BlockSpec) -> UsageModel:
        rng = np.random.default_rng([spec.seed, 0xA])
        return _build_usage(spec.kind, rng)

    def truth(self, spec: BlockSpec, duration_s: float, *, start_s: float = 0.0) -> BlockTruth:
        """Ground truth for one block over ``[start_s, start_s+duration_s)``.

        Truth is generated from time zero so that a block looks identical
        regardless of the dataset window observing it.
        """
        total = min(start_s + duration_s, self.scenario.max_duration_s)
        grid = round_grid(total)
        rng = np.random.default_rng([spec.seed, 0xB])
        truth = self.usage_model(spec).generate(rng, grid, self.calendar(spec))
        if start_s > 0:
            first_col = int(start_s // ROUND_SECONDS)
            truth = BlockTruth(
                addresses=truth.addresses,
                active=truth.active[:, first_col:],
                col_times=truth.col_times[first_col:],
                round_seconds=truth.round_seconds,
            )
        return truth

    def loss_model(self, spec: BlockSpec, observer: str) -> LossModel:
        broken = self.scenario.broken_observers.get(observer)
        if broken is not None:
            return broken
        if observer in spec.lossy_observers:
            for obs, country, _prob, model in self.scenario.congested_paths:
                if obs == observer and spec.city.country == country:
                    return model
        return self.scenario.base_loss

    def geolocate(self, spec: BlockSpec) -> GeoInfo:
        """What the geolocation database reports for this block."""
        return spec.geo
