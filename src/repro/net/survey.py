"""Full-survey observer: the it89-style ground-truth measurement.

USC Internet address surveys probe *every* address of selected blocks
every 11 minutes for about two weeks (§2.2, §3.2).  The paper uses survey
data as reconstruction ground truth (Table 3, Figures 4 and 5); we do the
same with this observer, which probes all of E(b) each round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loss import LossModel, NoLoss
from .observations import ObservationSeries
from .prober import count_probe_volume
from .usage import BlockTruth

__all__ = ["SurveyObserver"]


@dataclass(frozen=True)
class SurveyObserver:
    """Probes every E(b) address once per round (complete scans)."""

    name: str = "survey"
    phase_offset_s: float = 0.0
    round_seconds: float = 660.0

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray | None = None,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
    ) -> ObservationSeries:
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = truth.n_addresses
        if order is None:
            order = np.arange(m)
        if m == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        spacing = self.round_seconds / m
        n_rounds = max(int(np.ceil((end_s - start_s - self.phase_offset_s) / self.round_seconds)), 0)
        total = n_rounds * m
        pos = np.arange(total, dtype=np.int64)
        t = (
            start_s
            + self.phase_offset_s
            + (pos // m) * self.round_seconds
            + (pos % m) * spacing
        )
        keep = t < end_s
        pos, t = pos[keep], t[keep]
        order_idx = order[pos % m]
        col_origin = float(truth.col_times[0]) if truth.n_cols else 0.0
        cols = np.clip(
            ((t - col_origin) / truth.round_seconds).astype(np.int64), 0, truth.n_cols - 1
        )
        states = truth.active[order_idx, cols]
        if loss.max_probability() > 0:
            lost = rng.random(t.size) < loss.loss_probability(t)
            states = states & ~lost
        return count_probe_volume(
            "survey",
            ObservationSeries(
                times=t,
                addresses=truth.addresses[order_idx],
                results=states,
                observer=self.name,
            ),
        )
