"""Ground-truth address-usage generators.

Each model produces, for one /24 block, the boolean activity of every
ever-active address on the world's 660-second round grid.  The models
encode the address-use regimes the paper observes (§2.4, §3.5):

* :class:`WorkplaceUsage` — desktops on public IPs during local work
  hours on workdays (the USC block of Figure 1);
* :class:`HomeEveningUsage` — evening/weekend devices on public IPs;
* :class:`DynamicPoolUsage` — ISP pools assigning public addresses to
  active subscribers (the Asia-heavy diurnal regime of Figure 7);
* :class:`ServerFarmUsage` — always-on servers (dense blocks that scan
  slowly and are not change-sensitive);
* :class:`NatGatewayUsage` — a handful of always-on home routers hiding
  everything behind NAT;
* :class:`SparseUsage` — intermittent, non-diurnal addresses;
* :class:`FirewalledUsage` — historically active space that no longer
  answers probes.

Human events (WFH, holidays, curfews) enter through the per-day activity
factors of the block's :class:`~repro.net.events.Calendar`; network events
(outages, renumbering, migration) are applied afterwards as truth
transforms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .addresses import BLOCK_SIZE
from .events import Calendar, Channel

ROUND_SECONDS = 660.0

__all__ = [
    "ROUND_SECONDS",
    "BlockTruth",
    "UsageModel",
    "WorkplaceUsage",
    "HomeEveningUsage",
    "DynamicPoolUsage",
    "ServerFarmUsage",
    "NatGatewayUsage",
    "SparseUsage",
    "FirewalledUsage",
    "round_grid",
]


def round_grid(duration_s: float, round_seconds: float = ROUND_SECONDS) -> np.ndarray:
    """Round-start times covering ``[0, duration_s)``."""
    n = int(np.ceil(duration_s / round_seconds))
    return np.arange(n, dtype=np.float64) * round_seconds


@dataclass(frozen=True)
class BlockTruth:
    """Ground-truth activity of a block's ever-active addresses E(b).

    ``active[i, c]`` says whether address ``addresses[i]`` (a last octet)
    answers a probe during round column ``c`` (``col_times[c]`` is the
    column's start, seconds since the world epoch).
    """

    addresses: np.ndarray  # int16 last octets, shape [m]
    active: np.ndarray  # bool, shape [m, n_cols]
    col_times: np.ndarray  # float64, shape [n_cols]
    round_seconds: float = ROUND_SECONDS

    def __post_init__(self) -> None:
        if self.active.shape != (self.addresses.size, self.col_times.size):
            raise ValueError(
                f"active matrix shape {self.active.shape} does not match "
                f"{self.addresses.size} addresses x {self.col_times.size} columns"
            )

    @property
    def n_addresses(self) -> int:
        return int(self.addresses.size)

    @property
    def n_cols(self) -> int:
        return int(self.col_times.size)

    @property
    def duration_s(self) -> float:
        return self.n_cols * self.round_seconds

    def column_of(self, time_s: float) -> int:
        """Round column covering ``time_s`` (clamped to the grid)."""
        origin = float(self.col_times[0]) if self.n_cols else 0.0
        col = int((time_s - origin) // self.round_seconds)
        return min(max(col, 0), self.n_cols - 1)

    def counts(self) -> np.ndarray:
        """True active-address count per column (ground-truth signal)."""
        return self.active.sum(axis=0).astype(np.float64)

    def ever_responsive(self) -> bool:
        return bool(self.active.any())


def _clip_prob(p: np.ndarray | float) -> np.ndarray:
    return np.clip(p, 0.0, 0.99)


class UsageModel:
    """Base class: handles the E(b) layout and stale-address padding."""

    channel: Channel = Channel.HOME
    #: addresses in E(b) that were active historically but never respond
    #: now (Trinocular's target lists are refreshed only quarterly, §2.2)
    stale_addresses: int = 0

    def _core_size(self) -> int:
        raise NotImplementedError

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        """Activity matrix for the model's core addresses."""
        raise NotImplementedError

    def eb_size(self) -> int:
        """Number of addresses in E(b) (probed addresses)."""
        return min(self._core_size() + self.stale_addresses, BLOCK_SIZE)

    def generate(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> BlockTruth:
        """Build the block's ground truth on the given round grid."""
        core = self._generate_core(rng, col_times, calendar)
        n_stale = self.eb_size() - core.shape[0]
        if n_stale > 0:
            stale = np.zeros((n_stale, col_times.size), dtype=bool)
            active = np.vstack((core, stale))
        else:
            active = core
        addresses = rng.permutation(BLOCK_SIZE)[: active.shape[0]].astype(np.int16)
        active = calendar.apply_transforms(active, col_times, rng)
        return BlockTruth(addresses=addresses, active=active, col_times=col_times)

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------
    def _day_layout(
        self, col_times: np.ndarray, calendar: Calendar
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """Per-column (day offset, local second-of-day) plus day range."""
        days = calendar.local_day(col_times)
        lsod = calendar.local_second_of_day(col_times)
        first_day = int(days[0])
        n_days = int(days[-1]) - first_day + 1
        return days - first_day, lsod, first_day, n_days

    def _interval_truth(
        self,
        rng: np.random.Generator,
        col_times: np.ndarray,
        calendar: Calendar,
        *,
        n_units: int,
        presence: float,
        start_hour: float,
        start_jitter: float,
        end_hour: float,
        end_jitter: float,
        workdays_only: bool,
        weekend_start_hour: float | None = None,
    ) -> np.ndarray:
        """Units on between jittered daily start/end local times."""
        day_col, lsod, first_day, n_days = self._day_layout(col_times, calendar)
        workday, factor = calendar.day_table(first_day, n_days, self.channel)

        p = _clip_prob(presence * np.minimum(factor, 1.25))
        present = rng.random((n_units, n_days)) < p[None, :]
        if workdays_only:
            present &= workday[None, :]

        start = rng.normal(start_hour, start_jitter, (n_units, n_days)) * 3600.0
        end = rng.normal(end_hour, end_jitter, (n_units, n_days)) * 3600.0
        if weekend_start_hour is not None:
            weekend = ~workday
            early = rng.normal(weekend_start_hour, start_jitter, (n_units, n_days)) * 3600.0
            start = np.where(weekend[None, :], early, start)
        end = np.maximum(end, start + 1800.0)  # at least half an hour on

        on = present[:, day_col]
        return on & (lsod[None, :] >= start[:, day_col]) & (lsod[None, :] < end[:, day_col])


class WorkplaceUsage(UsageModel):
    """Office/university desktops plus a few always-on servers."""

    channel = Channel.WORK

    def __init__(
        self,
        n_desktops: int = 40,
        n_servers: int = 2,
        presence: float = 0.85,
        start_hour: float = 8.5,
        end_hour: float = 17.5,
        stale_addresses: int = 4,
    ) -> None:
        self.n_desktops = n_desktops
        self.n_servers = n_servers
        self.presence = presence
        self.start_hour = start_hour
        self.end_hour = end_hour
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.n_desktops + self.n_servers

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        desktops = self._interval_truth(
            rng,
            col_times,
            calendar,
            n_units=self.n_desktops,
            presence=self.presence,
            start_hour=self.start_hour,
            start_jitter=0.6,
            end_hour=self.end_hour,
            end_jitter=1.0,
            workdays_only=True,
        )
        servers = np.ones((self.n_servers, col_times.size), dtype=bool)
        return np.vstack((desktops, servers))


class HomeEveningUsage(UsageModel):
    """Home devices on public IPs: evenings on workdays, daytime on weekends."""

    channel = Channel.HOME

    def __init__(
        self,
        n_devices: int = 24,
        presence: float = 0.7,
        stale_addresses: int = 4,
    ) -> None:
        self.n_devices = n_devices
        self.presence = presence
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.n_devices

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        return self._interval_truth(
            rng,
            col_times,
            calendar,
            n_units=self.n_devices,
            presence=self.presence,
            start_hour=17.5,
            start_jitter=0.8,
            end_hour=23.5,
            end_jitter=0.7,
            workdays_only=False,
            weekend_start_hour=10.0,
        )


class DynamicPoolUsage(UsageModel):
    """An ISP pool assigning public addresses to active subscribers.

    Occupancy follows a smooth diurnal curve (trough ~4am, peak ~9pm
    local); address ``i`` is active while the pool occupancy exceeds its
    per-day threshold, which mimics paired pooling: subscribers hold an
    address for the session, and low-numbered pool slots fill first.
    """

    channel = Channel.POOL

    def __init__(
        self,
        pool_size: int = 160,
        peak: float = 0.7,
        trough: float = 0.12,
        peak_hour: float = 21.0,
        quiet_week_probability: float = 0.03,
        stale_addresses: int = 6,
    ) -> None:
        self.pool_size = pool_size
        self.peak = peak
        self.trough = trough
        self.peak_hour = peak_hour
        self.quiet_week_probability = quiet_week_probability
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.pool_size

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        day_col, lsod, first_day, n_days = self._day_layout(col_times, calendar)
        _, factor = calendar.day_table(first_day, n_days, self.channel)

        phase = 2.0 * np.pi * (lsod / 86_400.0 - self.peak_hour / 24.0)
        curve = self.trough + (self.peak - self.trough) * (0.5 + 0.5 * np.cos(phase))
        day_wobble = rng.normal(1.0, 0.05, n_days)
        # occasional quiet weeks: demand collapses toward the trough
        # (local events we do not model); these lapses are what dilutes
        # diurnality over long observation windows (S3.2.1)
        n_weeks = n_days // 7 + 1
        quiet = rng.random(n_weeks) < self.quiet_week_probability
        week_factor = np.where(quiet, 0.5, 1.0)[np.arange(n_days) // 7]
        occupancy = np.clip(
            curve * factor[day_col] * (day_wobble * week_factor)[day_col], 0.0, 1.0
        )

        base = (np.arange(self.pool_size) + 0.5) / self.pool_size
        thresholds = np.clip(
            base[:, None] + rng.normal(0.0, 0.04, (self.pool_size, n_days)), 0.0, 1.0
        )
        return thresholds[:, day_col] < occupancy[None, :]


class ServerFarmUsage(UsageModel):
    """A dense block of always-on servers with rare maintenance windows."""

    channel = Channel.WORK

    def __init__(
        self,
        n_servers: int = 248,
        maintenance_rate_per_day: float = 0.01,
        maintenance_hours: float = 3.0,
        stale_addresses: int = 0,
    ) -> None:
        self.n_servers = n_servers
        self.maintenance_rate_per_day = maintenance_rate_per_day
        self.maintenance_hours = maintenance_hours
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.n_servers

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        active = np.ones((self.n_servers, col_times.size), dtype=bool)
        duration_days = col_times[-1] / 86_400.0 if col_times.size else 0.0
        expected = self.n_servers * self.maintenance_rate_per_day * duration_days
        n_windows = rng.poisson(max(expected, 0.0))
        cols_per_window = max(int(self.maintenance_hours * 3600.0 / ROUND_SECONDS), 1)
        for _ in range(int(n_windows)):
            server = rng.integers(self.n_servers)
            start = rng.integers(max(col_times.size - cols_per_window, 1))
            active[server, start : start + cols_per_window] = False
        return active


class NatGatewayUsage(UsageModel):
    """A handful of always-on NAT routers; human activity is invisible."""

    channel = Channel.HOME

    def __init__(self, n_routers: int = 4, stale_addresses: int = 2) -> None:
        self.n_routers = n_routers
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.n_routers

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        return np.ones((self.n_routers, col_times.size), dtype=bool)


class SparseUsage(UsageModel):
    """Intermittently used addresses with no daily rhythm (telegraph)."""

    channel = Channel.HOME

    def __init__(
        self,
        n_addresses: int = 10,
        mean_on_days: float = 3.0,
        mean_off_days: float = 4.0,
        stale_addresses: int = 2,
    ) -> None:
        self.n_addresses = n_addresses
        self.mean_on_days = mean_on_days
        self.mean_off_days = mean_off_days
        self.stale_addresses = stale_addresses

    def _core_size(self) -> int:
        return self.n_addresses

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        n_cols = col_times.size
        duration = n_cols * ROUND_SECONDS
        active = np.zeros((self.n_addresses, n_cols), dtype=bool)
        for i in range(self.n_addresses):
            t = 0.0
            state = bool(rng.random() < 0.5)
            while t < duration:
                mean = self.mean_on_days if state else self.mean_off_days
                span = rng.exponential(mean) * 86_400.0
                if state:
                    lo = int(t // ROUND_SECONDS)
                    hi = min(int((t + span) // ROUND_SECONDS) + 1, n_cols)
                    active[i, lo:hi] = True
                t += span
                state = not state
        return active


class FirewalledUsage(UsageModel):
    """Historically responsive space that now answers nothing."""

    channel = Channel.HOME

    def __init__(self, eb_addresses: int = 16) -> None:
        self._eb = eb_addresses
        self.stale_addresses = 0

    def _core_size(self) -> int:
        return self._eb

    def _generate_core(
        self, rng: np.random.Generator, col_times: np.ndarray, calendar: Calendar
    ) -> np.ndarray:
        return np.zeros((self._eb, col_times.size), dtype=bool)
