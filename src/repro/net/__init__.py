"""Synthetic-Internet and measurement substrate.

This package stands in for the data sources the paper consumes —
Trinocular probe logs, USC Internet surveys, Maxmind geolocation and the
real human events of early 2020 — with generative models that exercise
the identical analysis code paths (see DESIGN.md §2 for the substitution
table).
"""

from .addresses import BLOCK_SIZE, BlockAddress, format_ipv4, parse_ipv4
from .bayesian import BayesianTrinocularObserver
from .events import (
    Calendar,
    Channel,
    Curfew,
    Event,
    Holiday,
    Migration,
    Outage,
    Renumbering,
    WorkFromHome,
)
from .geo import WORLD_CITIES, City, GeoInfo, GridCell, city_by_name, gridcell_of
from .loss import BernoulliLoss, DiurnalCongestionLoss, LossModel, NoLoss
from .observations import ObservationSeries, merge_observations
from .prober import AdditionalProber, TrinocularObserver, probe_order
from .survey import SurveyObserver
from .usage import (
    ROUND_SECONDS,
    BlockTruth,
    DynamicPoolUsage,
    FirewalledUsage,
    HomeEveningUsage,
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    UsageModel,
    WorkplaceUsage,
    round_grid,
)
from .world import (
    PROFILE_MIXES,
    BlockSpec,
    Scenario,
    WorldModel,
    scenario_baseline2023,
    scenario_covid2020,
)

__all__ = [
    "BLOCK_SIZE",
    "BlockAddress",
    "BayesianTrinocularObserver",
    "format_ipv4",
    "parse_ipv4",
    "Calendar",
    "Channel",
    "Curfew",
    "Event",
    "Holiday",
    "Migration",
    "Outage",
    "Renumbering",
    "WorkFromHome",
    "WORLD_CITIES",
    "City",
    "GeoInfo",
    "GridCell",
    "city_by_name",
    "gridcell_of",
    "BernoulliLoss",
    "DiurnalCongestionLoss",
    "LossModel",
    "NoLoss",
    "ObservationSeries",
    "merge_observations",
    "AdditionalProber",
    "TrinocularObserver",
    "probe_order",
    "SurveyObserver",
    "ROUND_SECONDS",
    "BlockTruth",
    "DynamicPoolUsage",
    "FirewalledUsage",
    "HomeEveningUsage",
    "NatGatewayUsage",
    "ServerFarmUsage",
    "SparseUsage",
    "UsageModel",
    "WorkplaceUsage",
    "round_grid",
    "PROFILE_MIXES",
    "BlockSpec",
    "Scenario",
    "WorldModel",
    "scenario_baseline2023",
    "scenario_covid2020",
]
