"""Probe-observation containers and merging.

An :class:`ObservationSeries` is the output of one observer watching one
block: parallel arrays of probe time, target address (last octet), and
result (reply / no reply).  Multi-observer analysis merges several series
into one time-ordered stream (§2.7); 1-loss repair and reconstruction
both operate on these containers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ObservationSeries", "merge_observations"]


@dataclass(frozen=True)
class ObservationSeries:
    """Time-ordered probe results for one block.

    ``times`` are seconds since the dataset epoch, non-decreasing.
    ``observer`` names the source site ("e", "j", "n", "w", ... or
    "merged"); ``sources`` preserves per-probe origin after a merge.
    """

    times: np.ndarray  # float64 [n]
    addresses: np.ndarray  # int16 [n] last octets
    results: np.ndarray  # bool  [n]
    observer: str = "?"
    sources: np.ndarray | None = None  # uint8 index into source_names
    source_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        addresses = np.asarray(self.addresses, dtype=np.int16)
        results = np.asarray(self.results, dtype=bool)
        if not (times.shape == addresses.shape == results.shape) or times.ndim != 1:
            raise ValueError("times, addresses and results must be equal-length 1-d arrays")
        if times.size > 1 and np.any(np.diff(times) < 0):
            raise ValueError("observation times must be non-decreasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "results", results)

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def is_empty(self) -> bool:
        return self.times.size == 0

    def reply_rate(self) -> float:
        """Fraction of probes answered (the §3.3 diagnostic)."""
        if self.is_empty:
            return float("nan")
        return float(self.results.mean())

    def reply_rate_by_address(self) -> dict[int, float]:
        """Per-address reply rates.

        One ``np.bincount`` pass over the whole log: probes and positive
        replies are counted per unique address simultaneously, instead of
        re-filtering the series once per address (O(A·N) -> O(N)).
        Reply sums are exact integers in float64, so each rate is
        bit-identical to ``results[addresses == a].mean()``.
        """
        uniq, inverse = np.unique(self.addresses, return_inverse=True)
        probes = np.bincount(inverse, minlength=uniq.size)
        replies = np.bincount(inverse, weights=self.results, minlength=uniq.size)
        return {
            int(addr): float(pos / tot)
            for addr, pos, tot in zip(uniq, replies, probes)
        }

    def probed_addresses(self) -> np.ndarray:
        """Sorted unique last octets ever probed."""
        return np.unique(self.addresses)

    def address_view(self, address: int) -> tuple[np.ndarray, np.ndarray]:
        """(times, results) of every probe of one address, in time order."""
        mask = self.addresses == address
        return self.times[mask], self.results[mask]

    def with_results(self, results: np.ndarray) -> "ObservationSeries":
        """Same probes with replaced results (used by 1-loss repair)."""
        return ObservationSeries(
            times=self.times,
            addresses=self.addresses,
            results=results,
            observer=self.observer,
            sources=self.sources,
            source_names=self.source_names,
        )

    def slice_time(self, start: float, stop: float) -> "ObservationSeries":
        """Probes with ``start <= time < stop`` (dataset windowing)."""
        lo = int(np.searchsorted(self.times, start, side="left"))
        hi = int(np.searchsorted(self.times, stop, side="left"))
        return ObservationSeries(
            times=self.times[lo:hi],
            addresses=self.addresses[lo:hi],
            results=self.results[lo:hi],
            observer=self.observer,
            sources=None if self.sources is None else self.sources[lo:hi],
            source_names=self.source_names,
        )


def merge_observations(series: list[ObservationSeries]) -> ObservationSeries:
    """Merge observers into one time-ordered stream (§2.7).

    Observers run unsynchronized, so a stable merge by time interleaves
    their rounds; per-probe provenance is kept in ``sources`` so per-site
    diagnostics (reply rates, §3.3) survive the merge.
    """
    series = [s for s in series if not s.is_empty]
    if not series:
        return ObservationSeries(
            times=np.array([]), addresses=np.array([], dtype=np.int16), results=np.array([], dtype=bool), observer="merged"
        )
    if len(series) == 1:
        only = series[0]
        return ObservationSeries(
            times=only.times,
            addresses=only.addresses,
            results=only.results,
            observer="merged",
            sources=np.zeros(len(only), dtype=np.uint8),
            source_names=(only.observer,),
        )
    names = tuple(s.observer for s in series)
    times = np.concatenate([s.times for s in series])
    addresses = np.concatenate([s.addresses for s in series])
    results = np.concatenate([s.results for s in series])
    sources = np.concatenate(
        [np.full(len(s), i, dtype=np.uint8) for i, s in enumerate(series)]
    )
    order = np.argsort(times, kind="stable")
    return ObservationSeries(
        times=times[order],
        addresses=addresses[order],
        results=results[order],
        observer="merged",
        sources=sources[order],
        source_names=names,
    )
