"""Human-activity events and the per-block calendar.

The paper detects changes caused by work-from-home orders, public
holidays, curfews, and distinguishes them from network outages and ISP
renumbering (§2.6, §4).  Since no news archive is available offline, the
world model *schedules* such events explicitly; detection experiments then
score themselves against this exact ground truth (a stronger version of
the paper's manual news-matching in §3.6).

Two kinds of events exist:

* **activity events** (:class:`WorkFromHome`, :class:`Holiday`,
  :class:`Curfew`) scale the day-by-day occupancy that usage models draw
  from, per channel (workplace / home / dynamic pool);
* **truth transforms** (:class:`Outage`, :class:`Renumbering`,
  :class:`Migration`) rewrite the generated ground-truth activity matrix
  directly — they model network causes, not human ones.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from datetime import date, datetime, timedelta, timezone

import numpy as np

__all__ = [
    "Calendar",
    "Channel",
    "Curfew",
    "Event",
    "Holiday",
    "Migration",
    "Outage",
    "ServiceWindow",
    "Renumbering",
    "WorkFromHome",
]

SECONDS_PER_DAY = 86_400


class Channel(enum.Enum):
    """Which population a usage model draws from."""

    WORK = "work"
    HOME = "home"
    POOL = "pool"


@dataclass(frozen=True)
class Event:
    """Base event: no activity effect, no truth transform."""

    def activity_factor(self, day_date: date, channel: Channel) -> float:
        return 1.0

    def is_holiday(self, day_date: date) -> bool:
        return False

    def transform(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return truth


@dataclass(frozen=True)
class WorkFromHome(Event):
    """A work-from-home shift starting on ``start``.

    Workplace occupancy ramps down to ``work_factor`` over ``ramp_days``;
    dynamic pools shrink mildly (reduced mobility), home activity grows a
    little.  Mirrors the paper's Figure 1 and the §3.6 WFH ground truth.
    """

    start: date
    work_factor: float = 0.10
    pool_factor: float = 0.55
    home_factor: float = 1.10
    ramp_days: int = 4
    end: date | None = None  # None = persists to end of data

    def _progress(self, day_date: date) -> float:
        """0 before the event, 1 once fully in effect."""
        if day_date < self.start:
            return 0.0
        if self.end is not None and day_date > self.end:
            return 0.0
        elapsed = (day_date - self.start).days
        if self.ramp_days <= 0:
            return 1.0
        return min(1.0, (elapsed + 1) / self.ramp_days)

    def activity_factor(self, day_date: date, channel: Channel) -> float:
        p = self._progress(day_date)
        if p == 0.0:
            return 1.0
        target = {
            Channel.WORK: self.work_factor,
            Channel.HOME: self.home_factor,
            Channel.POOL: self.pool_factor,
        }[channel]
        return 1.0 + (target - 1.0) * p


@dataclass(frozen=True)
class Holiday(Event):
    """One or more non-working days (national holiday, festival).

    Workplaces close entirely (handled via :meth:`is_holiday`); dynamic
    pools shrink modestly (travel, businesses shut), which is what makes
    multi-day festivals such as Spring Festival visible in pool-dominated
    regions (paper §4.2).
    """

    first: date
    days: int = 1
    pool_factor: float = 0.80
    home_factor: float = 1.05
    name: str = ""

    def is_holiday(self, day_date: date) -> bool:
        return self.first <= day_date < self.first + timedelta(days=self.days)

    def activity_factor(self, day_date: date, channel: Channel) -> float:
        if not self.is_holiday(day_date):
            return 1.0
        if channel is Channel.POOL:
            return self.pool_factor
        if channel is Channel.HOME:
            return self.home_factor
        return 1.0  # WORK handled by is_holiday -> non-workday


@dataclass(frozen=True)
class Curfew(Event):
    """A government-mandated stay-home period suppressing all channels."""

    first: date
    days: int = 1
    work_factor: float = 0.15
    pool_factor: float = 0.55
    home_factor: float = 1.05
    name: str = ""

    def _active(self, day_date: date) -> bool:
        return self.first <= day_date < self.first + timedelta(days=self.days)

    def activity_factor(self, day_date: date, channel: Channel) -> float:
        if not self._active(day_date):
            return 1.0
        return {
            Channel.WORK: self.work_factor,
            Channel.HOME: self.home_factor,
            Channel.POOL: self.pool_factor,
        }[channel]


@dataclass(frozen=True)
class Outage(Event):
    """A network outage: every address is unreachable for an interval.

    Times are seconds since the world epoch.  Outages are short (minutes
    to hours, paper §2.6) and must be *filtered out* by change analysis.
    """

    start_s: float
    end_s: float

    def transform(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        mask = (col_times >= self.start_s) & (col_times < self.end_s)
        if mask.any():
            truth = truth.copy()
            truth[:, mask] = False
        return truth


@dataclass(frozen=True)
class Renumbering(Event):
    """ISP renumbering: users move to different addresses in the block.

    Activity stops at ``time_s``, then resumes after ``gap_s`` on
    addresses shifted by ``shift`` last-octet positions — the closely
    paired down/up change signature of §2.6 and Appendix B.1.
    """

    time_s: float
    gap_s: float = 6 * 3600.0
    shift: int = 64

    def transform(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        after_gap = col_times >= self.time_s + self.gap_s
        in_gap = (col_times >= self.time_s) & ~after_gap
        truth = truth.copy()
        truth[:, in_gap] = False
        if after_gap.any():
            truth[:, after_gap] = np.roll(truth[:, after_gap], self.shift, axis=0)
        return truth


@dataclass(frozen=True)
class ServiceWindow(Event):
    """The block's service exists only within ``[start_s, end_s)``.

    Models target-list churn: allocations that come online mid-stream,
    ISPs that migrate customers behind CG-NAT and leave the space dark,
    and similar slow turnover.  This is what makes the change-sensitive
    set churn between quarters (§3.4) and why long windows find fewer
    diurnal blocks than short ones (§3.2.1).
    """

    start_s: float = 0.0
    end_s: float = float("inf")

    def transform(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        outside = (col_times < self.start_s) | (col_times >= self.end_s)
        if outside.any():
            truth = truth.copy()
            truth[:, outside] = False
        return truth


@dataclass(frozen=True)
class Migration(Event):
    """Permanent move of the block's users elsewhere (the VPN of B.2)."""

    time_s: float
    residual_fraction: float = 0.02

    def transform(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        mask = col_times >= self.time_s
        if not mask.any():
            return truth
        truth = truth.copy()
        keep = rng.random(truth.shape[0]) < self.residual_fraction
        truth[np.ix_(~keep, np.flatnonzero(mask))] = False
        return truth


@dataclass(frozen=True)
class Calendar:
    """Per-block time base: epoch, timezone, weekends, holidays, events.

    The epoch is a UTC midnight ``datetime``; all pipeline times are
    seconds since that epoch.  Human activity follows *local* time, so
    day/workday queries convert with ``tz_hours``.
    """

    epoch: datetime
    tz_hours: float = 0.0
    events: tuple[Event, ...] = ()
    weekend: tuple[int, ...] = (5, 6)  # Monday=0 .. Sunday=6

    def __post_init__(self) -> None:
        epoch = self.epoch
        if epoch.tzinfo is None:
            epoch = epoch.replace(tzinfo=timezone.utc)
        if epoch.hour or epoch.minute or epoch.second or epoch.microsecond:
            raise ValueError("calendar epoch must be a UTC midnight")
        object.__setattr__(self, "epoch", epoch)

    # -- conversions ---------------------------------------------------
    @property
    def tz_seconds(self) -> float:
        return self.tz_hours * 3600.0

    def local_day(self, times: np.ndarray | float) -> np.ndarray:
        """Local-calendar day index for epoch-relative seconds."""
        return np.floor(
            (np.asarray(times, dtype=np.float64) + self.tz_seconds) / SECONDS_PER_DAY
        ).astype(np.int64)

    def local_second_of_day(self, times: np.ndarray | float) -> np.ndarray:
        return np.mod(
            np.asarray(times, dtype=np.float64) + self.tz_seconds, SECONDS_PER_DAY
        )

    def date_of_day(self, day: int) -> date:
        return (self.epoch + timedelta(days=int(day))).date()

    def day_of_date(self, when: date) -> int:
        return (when - self.epoch.date()).days

    def seconds_of_date(self, when: date, local_hour: float = 0.0) -> float:
        """Epoch-relative seconds of a local time on a local date."""
        day = self.day_of_date(when)
        return day * SECONDS_PER_DAY + local_hour * 3600.0 - self.tz_seconds

    # -- schedule queries ----------------------------------------------
    def weekday(self, day: int) -> int:
        return (self.epoch.weekday() + int(day)) % 7

    def is_weekend(self, day: int) -> bool:
        return self.weekday(day) in self.weekend

    def is_holiday(self, day: int) -> bool:
        d = self.date_of_day(day)
        return any(ev.is_holiday(d) for ev in self.events)

    def is_workday(self, day: int) -> bool:
        return not self.is_weekend(day) and not self.is_holiday(day)

    def activity_factor(self, day: int, channel: Channel) -> float:
        d = self.date_of_day(day)
        factor = 1.0
        for ev in self.events:
            factor *= ev.activity_factor(d, channel)
        return factor

    # -- vectorized precomputation for usage models ---------------------
    def day_table(
        self, first_day: int, n_days: int, channel: Channel
    ) -> tuple[np.ndarray, np.ndarray]:
        """Arrays ``(workday[bool], factor[float])`` for a run of days."""
        days = range(first_day, first_day + n_days)
        workday = np.array([self.is_workday(d) for d in days], dtype=bool)
        factor = np.array([self.activity_factor(d, channel) for d in days])
        return workday, factor

    def apply_transforms(
        self, truth: np.ndarray, col_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Run all truth transforms (outages, renumbering, migration)."""
        for ev in self.events:
            truth = ev.transform(truth, col_times, rng)
        return truth
