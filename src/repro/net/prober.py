"""Observer simulators: Trinocular-style adaptive probing and extensions.

:class:`TrinocularObserver` reproduces the probing discipline the paper's
data source uses (§2.2–§2.3): rounds every 11 minutes, targets taken from
a pseudorandom order fixed for the quarter, at most ``max_probes_per_round``
probes per round, and — crucially — probing stops at the block's first
positive reply of the round.  That early stop is what makes dense blocks
scan slowly (§3.1, Figure 5) and what the §2.8 additional prober
(:class:`AdditionalProber`) relaxes.

Observers start unsynchronized (``phase_offset_s``), which is what makes
combining observers shorten full-block-scan times (§2.7, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry
from ..obs.names import metric_name
from .loss import LossModel, NoLoss
from .observations import ObservationSeries
from .usage import BlockTruth

__all__ = [
    "TrinocularObserver",
    "AdditionalProber",
    "count_probe_volume",
    "probe_order",
]


def count_probe_volume(kind: str, series: ObservationSeries) -> ObservationSeries:
    """Feed the probe-volume counters and return ``series`` unchanged.

    ``probes.sent.<kind>`` counts every probe an observer simulator
    emitted; ``probes.positive.<kind>`` the replies.  The paper sizes
    real probing budgets from exactly these volumes (§2.7–§2.8), so the
    telemetry layer tracks them per observer family.
    """
    registry = get_registry()
    registry.counter(metric_name("probes.sent", kind)).inc(len(series))
    registry.counter(metric_name("probes.positive", kind)).inc(int(np.sum(series.results)))
    return series


def probe_order(n_targets: int, seed: int) -> np.ndarray:
    """The pseudorandom target order, fixed per (block, quarter).

    Every observer uses the same order (paper §2.2); they differ only in
    start phase and in where their cursor happens to be.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(n_targets)


@dataclass(frozen=True)
class TrinocularObserver:
    """One probing site running the adaptive Trinocular algorithm."""

    name: str
    phase_offset_s: float = 0.0
    max_probes_per_round: int = 15
    probe_spacing_s: float = 3.0
    round_seconds: float = 660.0

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        """Probe one block for ``duration_s`` and return the probe log.

        The cursor walks ``order`` circularly and never resets between
        rounds; each round sends probes until the first positive reply or
        the per-round limit.  Lost probes are recorded as non-replies —
        an observer cannot tell loss from inactivity.

        Vectorized simulation, bit-identical to
        :meth:`observe_reference` (including the uniform-draw stream the
        loss model consumes).  The per-probe Python loop is gone:

        * the permuted truth is stored column-major as one ``bytes``
          object, so resolving a round is a single C-speed ``find`` over
          its at-most-``max_probes`` candidate window (two ``find`` calls
          when the window wraps the cursor or crosses a truth column) —
          dark rounds and first-reply rounds cost the same;
        * candidate probe times are built for all rounds at once with a
          row-wise ``cumsum`` (sequential accumulation, so the floats
          match the reference's repeated ``t += spacing`` exactly) and
          truth columns are derived from them in bulk;
        * because the cursor never resets, probe ``i`` of the run targets
          ``order[(start_cursor + i) % m]`` — the output arrays are
          assembled in one shot from the per-round probe counts, with a
          round's final probe marked positive only when its reply
          survived loss.

        Only loss draws stay sequential (one uniform per active-truth
        probe, in probe order, from the same lazily refilled 4096-chunk
        buffer), because each draw's outcome decides whether the round
        continues.
        """
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0 or truth.n_cols == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        if m != truth.n_addresses:
            raise ValueError("order must permute the block's E(b) addresses")

        round_s = self.round_seconds
        n_rounds = int(np.ceil((end_s - start_s - self.phase_offset_s) / round_s))
        n_rounds = max(n_rounds, 0)
        round_starts = start_s + self.phase_offset_s + np.arange(n_rounds) * round_s
        # the reference stops at the first round starting at/after end_s
        n_rounds = int(np.searchsorted(round_starts, end_s, side="left"))
        round_starts = round_starts[:n_rounds]
        if n_rounds == 0:
            # the scalar implementation prefilled its draw buffer before
            # noticing the window was empty; consume the same uniforms so
            # callers sharing the generator stay bit-compatible
            rng.random(4096)
            return count_probe_volume(
                "trinocular",
                ObservationSeries(
                    times=np.array([]),
                    addresses=np.array([], dtype=np.int16),
                    results=np.array([], dtype=bool),
                    observer=self.name,
                ),
            )
        loss_p = loss.loss_probability(round_starts) if loss.max_probability() > 0 else None

        n_cols = truth.n_cols
        col_origin = float(truth.col_times[0])
        inv_round = 1.0 / truth.round_seconds
        max_probes = min(self.max_probes_per_round, m)
        spacing = self.probe_spacing_s
        K = max_probes

        # permuted truth, column-major bytes: column c's cursor walk is
        # the slice [c * m, (c + 1) * m), searched with C-speed find
        colbytes = np.ascontiguousarray(truth.active[order].T).tobytes()

        # candidate probe times per round, accumulated exactly like the
        # reference's repeated `t += spacing` (cumsum adds sequentially)
        T = np.empty((n_rounds, K), dtype=np.float64)
        T[:, 0] = round_starts
        if K > 1:
            T[:, 1:] = spacing
        np.cumsum(T, axis=1, out=T)
        n_time = (T < end_s).sum(axis=1).astype(np.int64)
        rem_arr = np.minimum(n_time, K)

        # per-probe truth columns; a round spans < round_seconds so it
        # touches at most two, and only rounds straddling a column
        # boundary (rare) need a crossover index — everything else reads
        # its first probe's column throughout (jc = K sentinel)
        c0_arr = np.clip(
            ((round_starts - col_origin) * inv_round).astype(np.int64), 0, n_cols - 1
        )
        jc_arr = np.full(n_rounds, K, dtype=np.int64)
        c1_arr = c0_arr
        if K > 1:
            c_last = np.clip(
                ((T[:, K - 1] - col_origin) * inv_round).astype(np.int64),
                0,
                n_cols - 1,
            )
            cross = np.flatnonzero(c_last != c0_arr)
            if cross.size:
                Cx = np.clip(
                    ((T[cross] - col_origin) * inv_round).astype(np.int64),
                    0,
                    n_cols - 1,
                )
                jc_x = (Cx == Cx[:, :1]).sum(axis=1)
                jc_arr[cross] = jc_x
                c1_arr = c0_arr.copy()
                c1_arr[cross] = Cx[np.arange(cross.size), jc_x]

        # uniform draws for loss, consumed lazily — identical stream to
        # the reference: one draw per active-truth probe when p > 0
        draw_buf = rng.random(4096)
        draw_i = 0

        k_out: list[int] = []
        hit_out: list[bool] = []
        k_app, hit_app = k_out.append, hit_out.append
        c1_l = c1_arr.tolist()
        p_l = loss_p.tolist() if loss_p is not None else None
        find = colbytes.find

        cur = start_cursor % m
        for r, (rem, c0, jc) in enumerate(
            zip(rem_arr.tolist(), c0_arr.tolist(), jc_arr.tolist())
        ):
            p = 0.0 if p_l is None else p_l[r]
            if p == 0.0 and jc >= rem:
                # fast path: one column, no loss — find the round's first
                # active target (two searches when the cursor walk wraps)
                base = c0 * m
                end1 = cur + rem
                if end1 > m:
                    end1 = m
                f = find(1, base + cur, base + end1)
                if f >= 0:
                    k = f - base - cur + 1
                    hit = True
                else:
                    got = end1 - cur
                    if rem > got:
                        f = find(1, base, base + rem - got)
                    if f >= 0:
                        k = got + f - base + 1
                        hit = True
                    else:
                        k = rem
                        hit = False
                k_app(k)
                hit_app(hit)
                cur += k
                if cur >= m:
                    cur -= m
                continue
            j = 0
            hit = False
            while j < rem:
                # sub-window [j, seg_end) reads a single truth column
                if j < jc:
                    c = c0
                    seg_end = jc if jc < rem else rem
                else:
                    c = c1_l[r]
                    seg_end = rem
                # first active target in the sub-window (cursor walk may
                # wrap the block, hence up to two contiguous searches)
                base = c * m
                a = cur + j
                if a >= m:
                    a -= m
                end1 = a + (seg_end - j)
                if end1 > m:
                    end1 = m
                f = find(1, base + a, base + end1)
                if f >= 0:
                    j += f - base - a
                elif seg_end - j > end1 - a:
                    f = find(1, base, base + (seg_end - j) - (end1 - a))
                    if f >= 0:
                        j += (end1 - a) + (f - base)
                if f < 0:
                    j = seg_end
                    continue
                st = True
                if p > 0.0:
                    if draw_i >= 4096:
                        draw_buf = rng.random(4096)
                        draw_i = 0
                    if draw_buf[draw_i] < p:
                        st = False
                    draw_i += 1
                j += 1
                if st:
                    hit = True
                    break
            k_app(j)
            hit_app(hit)
            cur += j
            if cur >= m:
                cur -= m
        k_arr = np.asarray(k_out, dtype=np.int64)
        pos_flag = np.asarray(hit_out, dtype=bool)

        # assemble the probe log in one shot
        total = int(k_arr.sum())
        walk = (start_cursor + np.arange(total, dtype=np.int64)) % m
        order_idx = order[walk]
        mask = np.arange(K)[None, :] < k_arr[:, None]
        times = T[mask]
        results = np.zeros(total, dtype=bool)
        ends = np.cumsum(k_arr) - 1
        results[ends[pos_flag]] = True
        return count_probe_volume(
            "trinocular",
            ObservationSeries(
                times=times,
                addresses=truth.addresses[order_idx],
                results=results,
                observer=self.name,
            ),
        )

    def observe_reference(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        """Probe-by-probe oracle for :meth:`observe` (tests only).

        The original scalar round loop; :meth:`observe` must reproduce
        its output bit-for-bit, including which uniforms the loss model
        consumes.  Does not feed the probe-volume counters, so running
        the oracle beside the production path leaves telemetry intact.
        """
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0 or truth.n_cols == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        if m != truth.n_addresses:
            raise ValueError("order must permute the block's E(b) addresses")

        round_s = self.round_seconds
        n_rounds = int(np.ceil((end_s - start_s - self.phase_offset_s) / round_s))
        n_rounds = max(n_rounds, 0)
        round_starts = start_s + self.phase_offset_s + np.arange(n_rounds) * round_s
        loss_p = loss.loss_probability(round_starts) if loss.max_probability() > 0 else None

        # flatten truth to a bytes object for the fastest scalar lookups
        flat = truth.active.astype(np.uint8).tobytes()
        n_cols = truth.n_cols
        col_origin = float(truth.col_times[0])
        inv_round = 1.0 / truth.round_seconds
        order_list = order.tolist()
        addr_of = truth.addresses.tolist()
        max_probes = min(self.max_probes_per_round, m)
        spacing = self.probe_spacing_s

        # uniform draws for loss, consumed lazily
        draw_buf = rng.random(4096)
        draw_i = 0

        times: list[float] = []
        addrs: list[int] = []
        results: list[bool] = []
        t_app, a_app, r_app = times.append, addrs.append, results.append

        cur = start_cursor % m
        for r in range(n_rounds):
            t = round_starts[r]
            if t >= end_s:
                break
            p = 0.0 if loss_p is None else loss_p[r]
            k = 0
            while True:
                idx = order_list[cur]
                col = int((t - col_origin) * inv_round)
                if col >= n_cols:
                    col = n_cols - 1
                elif col < 0:
                    col = 0
                st = flat[idx * n_cols + col]
                if st and p > 0.0:
                    if draw_i >= 4096:
                        draw_buf = rng.random(4096)
                        draw_i = 0
                    if draw_buf[draw_i] < p:
                        st = 0
                    draw_i += 1
                t_app(t)
                a_app(addr_of[idx])
                r_app(bool(st))
                cur += 1
                if cur == m:
                    cur = 0
                k += 1
                if st or k >= max_probes:
                    break
                t += spacing
                if t >= end_s:
                    break
        return ObservationSeries(
            times=np.asarray(times, dtype=np.float64),
            addresses=np.asarray(addrs, dtype=np.int16),
            results=np.asarray(results, dtype=bool),
            observer=self.name,
        )


@dataclass(frozen=True)
class AdditionalProber:
    """The §2.8 designed observer for under-observed blocks.

    Sends a *fixed* number of probes per round — up to four extra after a
    positive reply, capped at 8 per round (one probe per 88 s, half the
    prior rate limit) — sized so the whole E(b) is covered within
    ``target_scan_hours``.  Because the per-round count is deterministic,
    the whole observation is vectorized.
    """

    name: str = "a"
    phase_offset_s: float = 0.0
    round_seconds: float = 660.0
    target_scan_hours: float = 6.0
    max_probes_per_round: int = 8

    def probes_per_round(self, eb_size: int) -> int:
        """Probes each round so E(b) is scanned in the target time."""
        rounds_available = self.target_scan_hours * 3600.0 / self.round_seconds
        needed = int(np.ceil(eb_size / max(rounds_available, 1.0)))
        return int(np.clip(needed, 1, min(self.max_probes_per_round, max(eb_size, 1))))

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        per_round = self.probes_per_round(m)
        spacing = self.round_seconds / max(per_round, 1)

        n_rounds = int(np.ceil((end_s - start_s - self.phase_offset_s) / self.round_seconds))
        n_rounds = max(n_rounds, 0)
        total = n_rounds * per_round
        pos = np.arange(total, dtype=np.int64)
        t = (
            start_s
            + self.phase_offset_s
            + (pos // per_round) * self.round_seconds
            + (pos % per_round) * spacing
        )
        keep = t < end_s
        pos, t = pos[keep], t[keep]

        order_idx = order[(start_cursor + pos) % m]
        col_origin = float(truth.col_times[0]) if truth.n_cols else 0.0
        cols = np.clip(
            ((t - col_origin) / truth.round_seconds).astype(np.int64), 0, truth.n_cols - 1
        )
        states = truth.active[order_idx, cols]
        if loss.max_probability() > 0:
            lost = rng.random(t.size) < loss.loss_probability(t)
            states = states & ~lost
        return count_probe_volume(
            "additional",
            ObservationSeries(
                times=t,
                addresses=truth.addresses[order_idx],
                results=states,
                observer=self.name,
            ),
        )
