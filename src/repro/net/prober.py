"""Observer simulators: Trinocular-style adaptive probing and extensions.

:class:`TrinocularObserver` reproduces the probing discipline the paper's
data source uses (§2.2–§2.3): rounds every 11 minutes, targets taken from
a pseudorandom order fixed for the quarter, at most ``max_probes_per_round``
probes per round, and — crucially — probing stops at the block's first
positive reply of the round.  That early stop is what makes dense blocks
scan slowly (§3.1, Figure 5) and what the §2.8 additional prober
(:class:`AdditionalProber`) relaxes.

Observers start unsynchronized (``phase_offset_s``), which is what makes
combining observers shorten full-block-scan times (§2.7, Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.metrics import get_registry
from .loss import LossModel, NoLoss
from .observations import ObservationSeries
from .usage import BlockTruth

__all__ = [
    "TrinocularObserver",
    "AdditionalProber",
    "count_probe_volume",
    "probe_order",
]


def count_probe_volume(kind: str, series: ObservationSeries) -> ObservationSeries:
    """Feed the probe-volume counters and return ``series`` unchanged.

    ``probes.sent.<kind>`` counts every probe an observer simulator
    emitted; ``probes.positive.<kind>`` the replies.  The paper sizes
    real probing budgets from exactly these volumes (§2.7–§2.8), so the
    telemetry layer tracks them per observer family.
    """
    registry = get_registry()
    registry.counter(f"probes.sent.{kind}").inc(len(series))
    registry.counter(f"probes.positive.{kind}").inc(int(np.sum(series.results)))
    return series


def probe_order(n_targets: int, seed: int) -> np.ndarray:
    """The pseudorandom target order, fixed per (block, quarter).

    Every observer uses the same order (paper §2.2); they differ only in
    start phase and in where their cursor happens to be.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(n_targets)


@dataclass(frozen=True)
class TrinocularObserver:
    """One probing site running the adaptive Trinocular algorithm."""

    name: str
    phase_offset_s: float = 0.0
    max_probes_per_round: int = 15
    probe_spacing_s: float = 3.0
    round_seconds: float = 660.0

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        """Probe one block for ``duration_s`` and return the probe log.

        The cursor walks ``order`` circularly and never resets between
        rounds; each round sends probes until the first positive reply or
        the per-round limit.  Lost probes are recorded as non-replies —
        an observer cannot tell loss from inactivity.
        """
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0 or truth.n_cols == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        if m != truth.n_addresses:
            raise ValueError("order must permute the block's E(b) addresses")

        round_s = self.round_seconds
        n_rounds = int(np.ceil((end_s - start_s - self.phase_offset_s) / round_s))
        n_rounds = max(n_rounds, 0)
        round_starts = start_s + self.phase_offset_s + np.arange(n_rounds) * round_s
        loss_p = loss.loss_probability(round_starts) if loss.max_probability() > 0 else None

        # flatten truth to a bytes object for the fastest scalar lookups
        flat = truth.active.astype(np.uint8).tobytes()
        n_cols = truth.n_cols
        col_origin = float(truth.col_times[0])
        inv_round = 1.0 / truth.round_seconds
        order_list = order.tolist()
        addr_of = truth.addresses.tolist()
        max_probes = min(self.max_probes_per_round, m)
        spacing = self.probe_spacing_s

        # uniform draws for loss, consumed lazily
        draw_buf = rng.random(4096)
        draw_i = 0

        times: list[float] = []
        addrs: list[int] = []
        results: list[bool] = []
        t_app, a_app, r_app = times.append, addrs.append, results.append

        cur = start_cursor % m
        for r in range(n_rounds):
            t = round_starts[r]
            if t >= end_s:
                break
            p = 0.0 if loss_p is None else loss_p[r]
            k = 0
            while True:
                idx = order_list[cur]
                col = int((t - col_origin) * inv_round)
                if col >= n_cols:
                    col = n_cols - 1
                elif col < 0:
                    col = 0
                st = flat[idx * n_cols + col]
                if st and p > 0.0:
                    if draw_i >= 4096:
                        draw_buf = rng.random(4096)
                        draw_i = 0
                    if draw_buf[draw_i] < p:
                        st = 0
                    draw_i += 1
                t_app(t)
                a_app(addr_of[idx])
                r_app(bool(st))
                cur += 1
                if cur == m:
                    cur = 0
                k += 1
                if st or k >= max_probes:
                    break
                t += spacing
                if t >= end_s:
                    break
        return count_probe_volume(
            "trinocular",
            ObservationSeries(
                times=np.asarray(times, dtype=np.float64),
                addresses=np.asarray(addrs, dtype=np.int16),
                results=np.asarray(results, dtype=bool),
                observer=self.name,
            ),
        )


@dataclass(frozen=True)
class AdditionalProber:
    """The §2.8 designed observer for under-observed blocks.

    Sends a *fixed* number of probes per round — up to four extra after a
    positive reply, capped at 8 per round (one probe per 88 s, half the
    prior rate limit) — sized so the whole E(b) is covered within
    ``target_scan_hours``.  Because the per-round count is deterministic,
    the whole observation is vectorized.
    """

    name: str = "a"
    phase_offset_s: float = 0.0
    round_seconds: float = 660.0
    target_scan_hours: float = 6.0
    max_probes_per_round: int = 8

    def probes_per_round(self, eb_size: int) -> int:
        """Probes each round so E(b) is scanned in the target time."""
        rounds_available = self.target_scan_hours * 3600.0 / self.round_seconds
        needed = int(np.ceil(eb_size / max(rounds_available, 1.0)))
        return int(np.clip(needed, 1, min(self.max_probes_per_round, max(eb_size, 1))))

    def observe(
        self,
        truth: BlockTruth,
        order: np.ndarray,
        loss: LossModel | None = None,
        rng: np.random.Generator | None = None,
        *,
        start_s: float = 0.0,
        duration_s: float | None = None,
        start_cursor: int = 0,
    ) -> ObservationSeries:
        loss = loss or NoLoss()
        rng = rng or np.random.default_rng(0)
        if duration_s is None:
            duration_s = truth.duration_s - start_s
        end_s = start_s + duration_s

        m = int(order.size)
        if m == 0:
            return ObservationSeries(
                times=np.array([]),
                addresses=np.array([], dtype=np.int16),
                results=np.array([], dtype=bool),
                observer=self.name,
            )
        per_round = self.probes_per_round(m)
        spacing = self.round_seconds / max(per_round, 1)

        n_rounds = int(np.ceil((end_s - start_s - self.phase_offset_s) / self.round_seconds))
        n_rounds = max(n_rounds, 0)
        total = n_rounds * per_round
        pos = np.arange(total, dtype=np.int64)
        t = (
            start_s
            + self.phase_offset_s
            + (pos // per_round) * self.round_seconds
            + (pos % per_round) * spacing
        )
        keep = t < end_s
        pos, t = pos[keep], t[keep]

        order_idx = order[(start_cursor + pos) % m]
        col_origin = float(truth.col_times[0]) if truth.n_cols else 0.0
        cols = np.clip(
            ((t - col_origin) / truth.round_seconds).astype(np.int64), 0, truth.n_cols - 1
        )
        states = truth.active[order_idx, cols]
        if loss.max_probability() > 0:
            lost = rng.random(t.size) < loss.loss_probability(t)
            states = states & ~lost
        return count_probe_volume(
            "additional",
            ObservationSeries(
                times=t,
                addresses=truth.addresses[order_idx],
                results=states,
                observer=self.name,
            ),
        )
