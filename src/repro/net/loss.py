"""Probe-loss processes along observer paths.

Address reconstruction is "very sensitive to loss since a non-response to
a query is interpreted as that address being inactive until the next time
it is queried" (§2.3).  The paper found one observer (w) probing about a
quarter of Chinese destinations through a congested link with diurnal
loss (§3.3) and introduced 1-loss repair to fix it.  These models generate
that behaviour: a loss probability per probe, possibly varying with local
time of day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LossModel", "NoLoss", "BernoulliLoss", "DiurnalCongestionLoss"]

SECONDS_PER_DAY = 86_400


class LossModel:
    """Base class: probability that a probe at time ``t`` is lost."""

    def loss_probability(self, times: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def max_probability(self) -> float:
        """Upper bound on the loss probability (lets probers skip draws)."""
        raise NotImplementedError


@dataclass(frozen=True)
class NoLoss(LossModel):
    """A clean path: nothing is ever lost."""

    def loss_probability(self, times: np.ndarray) -> np.ndarray:
        return np.zeros(np.asarray(times).shape, dtype=np.float64)

    def max_probability(self) -> float:
        return 0.0


@dataclass(frozen=True)
class BernoulliLoss(LossModel):
    """Uniform random loss with fixed probability ``p``."""

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"loss probability must be in [0, 1): {self.p}")

    def loss_probability(self, times: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(times).shape, self.p, dtype=np.float64)

    def max_probability(self) -> float:
        return self.p


@dataclass(frozen=True)
class DiurnalCongestionLoss(LossModel):
    """Congestive loss that peaks during the remote network's busy hours.

    ``base`` applies off-peak; the loss rises to ``peak`` in a raised-
    cosine bump centered on ``peak_hour`` local time (``tz_hours``),
    ``width_hours`` wide.  This is the §3.3 failure mode: when congestion
    is diurnal, it can falsely imply that target addresses are used
    diurnally.
    """

    base: float = 0.01
    peak: float = 0.25
    peak_hour: float = 21.0
    width_hours: float = 8.0
    tz_hours: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= self.peak < 1.0:
            raise ValueError("need 0 <= base <= peak < 1")

    def loss_probability(self, times: np.ndarray) -> np.ndarray:
        t = np.asarray(times, dtype=np.float64)
        local = np.mod(t + self.tz_hours * 3600.0, SECONDS_PER_DAY) / 3600.0
        # circular distance from the peak hour
        delta = np.abs(local - self.peak_hour)
        delta = np.minimum(delta, 24.0 - delta)
        half = self.width_hours / 2.0
        bump = np.where(delta < half, 0.5 + 0.5 * np.cos(np.pi * delta / half), 0.0)
        return self.base + (self.peak - self.base) * bump

    def max_probability(self) -> float:
        return self.peak
