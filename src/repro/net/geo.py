"""Geolocation substrate: cities, gridcells, continents.

The paper geolocates blocks with Maxmind GeoLite and aggregates to 2x2
degree gridcells (§2.6).  We replace the proprietary database with a
synthetic-but-realistic world: a catalogue of real cities with their
coordinates, timezones and continents, plus a geolocation lookup that adds
city-scale noise (IP geolocation is city-accurate at best, which is why
the paper aggregates to 2 degrees in the first place).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "City",
    "GeoInfo",
    "GridCell",
    "WORLD_CITIES",
    "city_by_name",
    "gridcell_of",
]

GRID_DEGREES = 2


@dataclass(frozen=True, order=True)
class GridCell:
    """A 2x2 degree latitude/longitude gridcell, keyed by its SW corner."""

    lat: int
    lon: int

    def __str__(self) -> str:
        ns = "N" if self.lat >= 0 else "S"
        ew = "E" if self.lon >= 0 else "W"
        return f"({abs(self.lat)}{ns}, {abs(self.lon)}{ew})"

    def contains(self, lat: float, lon: float) -> bool:
        return (
            self.lat <= lat < self.lat + GRID_DEGREES
            and self.lon <= lon < self.lon + GRID_DEGREES
        )


def gridcell_of(lat: float, lon: float, size: int = GRID_DEGREES) -> GridCell:
    """Map coordinates to their gridcell (SW corner, multiples of ``size``)."""
    return GridCell(
        int(np.floor(lat / size)) * size,
        int(np.floor(lon / size)) * size,
    )


@dataclass(frozen=True)
class City:
    """A population centre blocks can be assigned to.

    ``profile`` names the regional address-use mix (see
    :mod:`repro.net.world`): e.g. Asian cities carry many dynamically
    assigned public-IP pools (diurnal), while North American and Western
    European cities are dominated by always-on NAT routers (paper §3.5).
    ``weight`` scales how many blocks the world model places there.
    """

    name: str
    country: str
    continent: str
    lat: float
    lon: float
    tz_hours: float
    weight: float
    profile: str

    @property
    def gridcell(self) -> GridCell:
        return gridcell_of(self.lat, self.lon)


@dataclass(frozen=True)
class GeoInfo:
    """A geolocation answer for one block (what Maxmind would return)."""

    lat: float
    lon: float
    country: str
    continent: str
    city: str

    @property
    def gridcell(self) -> GridCell:
        return gridcell_of(self.lat, self.lon)


# ---------------------------------------------------------------------------
# City catalogue.  Weights approximate the relative density of
# change-sensitive blocks in the paper's Figure 7: heavy in East/South Asia,
# moderate in Europe/NA, light in South America/Africa/Oceania; Morocco is
# over-represented (paper §4.1).  Profiles drive the address-use mix.
# ---------------------------------------------------------------------------
WORLD_CITIES: tuple[City, ...] = (
    # East Asia: dynamic public-IP pools dominate -> many diurnal blocks
    City("Wuhan", "China", "Asia", 30.6, 114.3, 8.0, 10.0, "asia_dynamic"),
    City("Beijing", "China", "Asia", 39.9, 116.4, 8.0, 12.0, "asia_dynamic"),
    City("Shanghai", "China", "Asia", 31.2, 121.5, 8.0, 9.0, "asia_dynamic"),
    City("Guangzhou", "China", "Asia", 23.1, 113.3, 8.0, 6.0, "asia_dynamic"),
    City("Chengdu", "China", "Asia", 30.7, 104.1, 8.0, 4.0, "asia_dynamic"),
    City("Tokyo", "Japan", "Asia", 35.7, 139.7, 9.0, 5.0, "mixed"),
    City("Seoul", "South Korea", "Asia", 37.6, 127.0, 9.0, 4.0, "asia_dynamic"),
    City("Taipei", "Taiwan", "Asia", 25.0, 121.6, 8.0, 3.0, "asia_dynamic"),
    City("Hong Kong", "Hong Kong SAR", "Asia", 22.3, 114.2, 8.0, 3.0, "mixed"),
    # South / Southeast Asia
    City("New Delhi", "India", "Asia", 28.6, 77.2, 5.5, 10.0, "asia_dynamic"),
    City("Mumbai", "India", "Asia", 19.1, 72.9, 5.5, 4.0, "asia_dynamic"),
    City("Manila", "Philippines", "Asia", 14.6, 121.0, 8.0, 3.0, "asia_dynamic"),
    City("Kuala Lumpur", "Malaysia", "Asia", 3.1, 101.7, 8.0, 3.0, "asia_dynamic"),
    City("Singapore", "Singapore", "Asia", 1.35, 103.8, 8.0, 2.0, "mixed"),
    City("Bangkok", "Thailand", "Asia", 13.8, 100.5, 7.0, 3.0, "asia_dynamic"),
    # Middle East
    City("Abu Dhabi", "United Arab Emirates", "Asia", 24.5, 54.4, 4.0, 6.0, "asia_dynamic"),
    City("Tehran", "Iran", "Asia", 35.7, 51.4, 3.5, 2.0, "asia_dynamic"),
    # Eastern Europe / Russia: dynamic IPs common
    City("Moscow", "Russia", "Europe", 55.8, 37.6, 3.0, 5.0, "asia_dynamic"),
    City("Kyiv", "Ukraine", "Europe", 50.5, 30.5, 2.0, 2.5, "asia_dynamic"),
    City("Warsaw", "Poland", "Europe", 52.2, 21.0, 1.0, 2.5, "mixed"),
    City("Bucharest", "Romania", "Europe", 44.4, 26.1, 2.0, 2.0, "asia_dynamic"),
    # Western / Central Europe: NAT heavy, universities diurnal
    City("Ljubljana", "Slovenia", "Europe", 46.1, 14.5, 1.0, 7.0, "asia_dynamic"),
    City("London", "United Kingdom", "Europe", 51.5, -0.1, 0.0, 3.0, "nat_heavy"),
    City("Paris", "France", "Europe", 48.9, 2.35, 1.0, 3.0, "nat_heavy"),
    City("Berlin", "Germany", "Europe", 52.5, 13.4, 1.0, 3.0, "nat_heavy"),
    City("Madrid", "Spain", "Europe", 40.4, -3.7, 1.0, 2.5, "nat_heavy"),
    City("Rome", "Italy", "Europe", 41.9, 12.5, 1.0, 2.5, "nat_heavy"),
    City("Amsterdam", "Netherlands", "Europe", 52.4, 4.9, 1.0, 2.0, "nat_heavy"),
    # North America: NAT heavy, universities/workplaces diurnal
    City("Los Angeles", "United States", "North America", 34.05, -118.25, -8.0, 3.0, "nat_heavy"),
    City("New York", "United States", "North America", 40.7, -74.0, -5.0, 3.0, "nat_heavy"),
    City("Chicago", "United States", "North America", 41.9, -87.6, -6.0, 2.0, "nat_heavy"),
    City("Bloomington", "United States", "North America", 39.2, -86.5, -5.0, 1.0, "university"),
    City("Toronto", "Canada", "North America", 43.7, -79.4, -5.0, 2.0, "nat_heavy"),
    City("Mexico City", "Mexico", "North America", 19.4, -99.1, -6.0, 2.0, "mixed"),
    # South America
    City("Sao Paulo", "Brazil", "South America", -23.55, -46.6, -3.0, 2.5, "mixed"),
    City("Buenos Aires", "Argentina", "South America", -34.6, -58.4, -3.0, 2.0, "mixed"),
    City("Bogota", "Colombia", "South America", 4.7, -74.1, -5.0, 1.5, "mixed"),
    City("Caracas", "Venezuela", "South America", 10.5, -66.9, -4.0, 1.0, "mixed"),
    # Africa: Morocco over-represented as in the paper
    City("Casablanca", "Morocco", "Africa", 33.6, -7.6, 0.0, 5.0, "asia_dynamic"),
    City("Rabat", "Morocco", "Africa", 34.0, -6.8, 0.0, 1.5, "asia_dynamic"),
    City("Cairo", "Egypt", "Africa", 30.0, 31.2, 2.0, 1.5, "mixed"),
    City("Lagos", "Nigeria", "Africa", 6.5, 3.4, 1.0, 1.0, "mixed"),
    City("Johannesburg", "South Africa", "Africa", -26.2, 28.0, 2.0, 1.0, "mixed"),
    # Oceania
    City("Sydney", "Australia", "Oceania", -33.9, 151.2, 10.0, 1.5, "nat_heavy"),
    City("Melbourne", "Australia", "Oceania", -37.8, 145.0, 10.0, 1.0, "nat_heavy"),
    City("Auckland", "New Zealand", "Oceania", -36.8, 174.8, 12.0, 0.5, "nat_heavy"),
)

_CITY_INDEX = {city.name: city for city in WORLD_CITIES}


def city_by_name(name: str) -> City:
    """Look a catalogue city up by name (KeyError if unknown)."""
    return _CITY_INDEX[name]
