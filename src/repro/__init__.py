"""repro: inferring changes in daily human activity from Internet response.

A from-scratch reproduction of Song, Baltra & Heidemann (IMC 2023).  The
package has four layers:

* :mod:`repro.timeseries` — STL/LOESS, CUSUM, spectra (no statsmodels);
* :mod:`repro.net` — the synthetic-Internet substrate: usage models,
  Trinocular-style observers, loss, geolocation, world scenarios;
* :mod:`repro.core` — the paper's pipeline: reconstruction, 1-loss
  repair, change-sensitivity, trend extraction, CUSUM change detection,
  geographic aggregation;
* :mod:`repro.datasets` / :mod:`repro.experiments` — Table 6 dataset
  specs and one driver per paper table/figure.

Quickstart::

    from repro import WorldModel, scenario_covid2020, DatasetBuilder

    world = WorldModel(scenario_covid2020(), n_blocks=200, seed=1)
    builder = DatasetBuilder(world)
    result = builder.analyze("2020m1-ejnw")
    print(result.funnel().rows())
"""

from .core import (
    BlockAnalysis,
    BlockPipeline,
    BlockRecord,
    ChangeDetector,
    ChangeEvent,
    DiurnalTest,
    GridAggregator,
    SensitivityClassifier,
    SwingTest,
    TrendExtractor,
    full_scan_durations,
    one_loss_repair,
    reconstruct,
)
from .datasets import CATALOG, DatasetBuilder, DatasetSpec, dataset
from .runtime import (
    CampaignEngine,
    ParallelExecutor,
    RunMetrics,
    SerialExecutor,
    default_engine,
)
from .net import (
    BlockAddress,
    BlockTruth,
    Calendar,
    ObservationSeries,
    SurveyObserver,
    TrinocularObserver,
    WorldModel,
    merge_observations,
    probe_order,
    scenario_baseline2023,
    scenario_covid2020,
)
from .timeseries import TimeSeries, detect_cusum, stl_decompose

__version__ = "1.0.0"

__all__ = [
    "BlockAnalysis",
    "BlockPipeline",
    "BlockRecord",
    "ChangeDetector",
    "ChangeEvent",
    "DiurnalTest",
    "GridAggregator",
    "SensitivityClassifier",
    "SwingTest",
    "TrendExtractor",
    "full_scan_durations",
    "one_loss_repair",
    "reconstruct",
    "CATALOG",
    "DatasetBuilder",
    "DatasetSpec",
    "dataset",
    "CampaignEngine",
    "ParallelExecutor",
    "RunMetrics",
    "SerialExecutor",
    "default_engine",
    "BlockAddress",
    "BlockTruth",
    "Calendar",
    "ObservationSeries",
    "SurveyObserver",
    "TrinocularObserver",
    "WorldModel",
    "merge_observations",
    "probe_order",
    "scenario_baseline2023",
    "scenario_covid2020",
    "TimeSeries",
    "detect_cusum",
    "stl_decompose",
    "__version__",
]
