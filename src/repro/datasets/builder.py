"""Streaming dataset builder: simulate, observe, analyze, tabulate.

The builder glues the substrate to the pipeline: for each block of a
:class:`~repro.net.world.WorldModel` it generates ground truth, runs the
requested observers over a dataset window (with per-path loss models),
and hands the probe logs to a :class:`~repro.core.pipeline.BlockPipeline`.

Observations are cached per (block, observer) and *sliced* for narrower
windows — mirroring the paper, which reuses one measurement stream for
every analysis window (quarters, months, halves).  Both caches evict
least-recently-used entries by bytes at rest (array payload size), not
entry count, so a handful of huge blocks cannot balloon memory while
many small blocks still fit; experiments stream block-by-block either
way, and eviction never changes results (evicted windows are
re-simulated deterministically).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from ..core.pipeline import BlockAnalysis, BlockPipeline
from ..core.aggregate import BlockRecord
from ..core.reconstruction import Reconstruction
from ..core.stages import StageContext
from ..net.bayesian import BayesianTrinocularObserver
from ..net.observations import ObservationSeries
from ..net.prober import AdditionalProber, TrinocularObserver, probe_order
from ..net.survey import SurveyObserver
from ..net.usage import ROUND_SECONDS, BlockTruth
from ..net.world import BlockSpec, WorldModel
from ..runtime.engine import CampaignEngine, RunMetrics, default_engine
from ..runtime.jobs import BlockAnalysisJob
from ..runtime.spill import SpilledResults
from .catalog import TRINOCULAR_SITES, DatasetSpec, dataset

__all__ = [
    "DatasetBuilder",
    "DatasetResult",
    "FunnelCounts",
    "SpilledAnalyses",
    "block_record",
    "unresponsive_analysis",
]


class SpilledAnalyses(Mapping[str, BlockAnalysis]):
    """Lazy cidr → :class:`BlockAnalysis` view over spilled engine results.

    A sharded :meth:`DatasetBuilder.analyze` run keeps its per-block
    results on disk (:class:`~repro.runtime.spill.SpilledResults`);
    materialising ``{cidr: analysis}`` would pull the whole world back
    into RAM and defeat the point.  This mapping rehydrates exactly one
    block's analysis per lookup, and iterating items in key order walks
    the spill shards sequentially.  ``dict(analyses)`` still works for
    callers that want the eager behaviour on a small subset.
    """

    def __init__(self, keys: Sequence[str], results: "Sequence[Any]") -> None:
        self._keys = list(keys)
        self._results = results
        self._index = {key: i for i, key in enumerate(self._keys)}

    def __getitem__(self, key: str) -> BlockAnalysis:
        analysis = self._results[self._index[key]].analysis
        assert isinstance(analysis, BlockAnalysis)
        return analysis

    def __iter__(self) -> Iterator[str]:
        return iter(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: object) -> bool:
        return key in self._index


@dataclass(frozen=True)
class FunnelCounts:
    """Table 2's per-dataset filtering funnel."""

    routed: int = 0
    not_responsive: int = 0
    responsive: int = 0
    not_diurnal: int = 0
    diurnal: int = 0
    narrow_swing: int = 0
    wide_swing: int = 0
    not_change_sensitive: int = 0
    change_sensitive: int = 0

    @property
    def change_sensitive_fraction(self) -> float:
        """Share of responsive blocks that are change-sensitive."""
        return self.change_sensitive / self.responsive if self.responsive else 0.0

    def rows(self) -> list[tuple[str, int]]:
        """(label, count) rows in Table 2 order."""
        return [
            ("routed blocks", self.routed),
            ("not responsive", self.not_responsive),
            ("responsive", self.responsive),
            ("not diurnal", self.not_diurnal),
            ("diurnal", self.diurnal),
            ("narrow swing", self.narrow_swing),
            ("wide swing", self.wide_swing),
            ("not change-sensitive", self.not_change_sensitive),
            ("change-sensitive", self.change_sensitive),
        ]


@dataclass
class DatasetResult:
    """All per-block analyses for one dataset window.

    ``analyses`` is a plain dict for in-memory runs and a lazy
    :class:`SpilledAnalyses` view for sharded runs — both map cidr to
    analysis and iterate in block order."""

    spec: DatasetSpec
    world: WorldModel
    analyses: Mapping[str, BlockAnalysis] = field(default_factory=dict)  # key: cidr
    block_specs: dict[str, BlockSpec] = field(default_factory=dict)
    metrics: RunMetrics | None = None  # instrumentation of the engine run

    def funnel(self) -> FunnelCounts:
        routed = len(self.analyses)
        responsive = diurnal = wide = cs = 0
        for analysis in self.analyses.values():
            c = analysis.classification
            if not c.responsive:
                continue
            responsive += 1
            diurnal += int(c.is_diurnal)
            wide += int(c.is_wide_swing)
            cs += int(c.is_change_sensitive)
        return FunnelCounts(
            routed=routed,
            not_responsive=routed - responsive,
            responsive=responsive,
            not_diurnal=responsive - diurnal,
            diurnal=diurnal,
            narrow_swing=responsive - wide,
            wide_swing=wide,
            not_change_sensitive=responsive - cs,
            change_sensitive=cs,
        )

    def records(self) -> list[BlockRecord]:
        """Aggregation records (geolocation + change days) per block."""
        return [
            block_record(self.block_specs[cidr], analysis)
            for cidr, analysis in self.analyses.items()
        ]

    def change_sensitive(self) -> list[str]:
        return [c for c, a in self.analyses.items() if a.is_change_sensitive]


class DatasetBuilder:
    """Simulates observers over a world and runs the analysis pipeline."""

    def __init__(
        self,
        world: WorldModel,
        pipeline: BlockPipeline | None = None,
        *,
        observer_style: str = "adaptive",
        cache_blocks: int = 4,
        cache_bytes: int | None = None,
    ) -> None:
        """``observer_style`` picks the probing algorithm: "adaptive" is
        the paper's stop-at-first-positive description; "bayesian" is the
        full belief-driven Trinocular of [71] (see repro.net.bayesian).

        ``cache_bytes`` bounds each of the truth and observation caches
        by total array bytes at rest; when None it defaults to
        ``cache_blocks`` x 8 MiB — roomy enough that the legacy
        "last few blocks" working set never evicts early."""
        self.world = world
        self.pipeline = pipeline or BlockPipeline()
        if observer_style == "adaptive":
            observer_cls = TrinocularObserver
        elif observer_style == "bayesian":
            observer_cls = BayesianTrinocularObserver
        else:
            raise ValueError(f"unknown observer_style: {observer_style!r}")
        self.observer_style = observer_style
        self.observers = {
            name: observer_cls(name, phase_offset_s=phase)
            for name, phase in TRINOCULAR_SITES.items()
        }
        self.additional = AdditionalProber(name="a", phase_offset_s=601.0)
        self.survey = SurveyObserver(name="survey", phase_offset_s=0.0)
        self._cache_blocks = cache_blocks
        self._cache_bytes = (
            cache_blocks * 8 * 1024 * 1024 if cache_bytes is None else cache_bytes
        )
        self._obs_cache: OrderedDict[tuple[str, str], tuple[float, float, ObservationSeries]] = (
            OrderedDict()
        )
        self._truth_cache: OrderedDict[str, tuple[float, BlockTruth]] = OrderedDict()
        self._obs_cache_bytes = 0
        self._truth_cache_bytes = 0

    # -- simulation -------------------------------------------------------
    @staticmethod
    def _truth_nbytes(truth: BlockTruth) -> int:
        return truth.addresses.nbytes + truth.active.nbytes + truth.col_times.nbytes

    @staticmethod
    def _series_nbytes(series: ObservationSeries) -> int:
        n = series.times.nbytes + series.addresses.nbytes + series.results.nbytes
        if series.sources is not None:
            n += series.sources.nbytes
        return n

    def truth(self, spec: BlockSpec, start_s: float, duration_s: float) -> BlockTruth:
        """Ground truth covering at least ``[0, start+duration)``, cached."""
        end = start_s + duration_s
        cached = self._truth_cache.get(spec.block.cidr)
        if cached is not None and cached[0] >= end:
            self._truth_cache.move_to_end(spec.block.cidr)
            return cached[1]
        truth = self.world.truth(spec, end)
        if cached is not None:
            self._truth_cache_bytes -= self._truth_nbytes(cached[1])
        self._truth_cache[spec.block.cidr] = (end, truth)
        self._truth_cache.move_to_end(spec.block.cidr)
        self._truth_cache_bytes += self._truth_nbytes(truth)
        # evict coldest-first by bytes at rest, always keeping the newest
        while self._truth_cache_bytes > self._cache_bytes and len(self._truth_cache) > 1:
            _, (_, old) = self._truth_cache.popitem(last=False)
            self._truth_cache_bytes -= self._truth_nbytes(old)
        return truth

    def observe(
        self, spec: BlockSpec, observer: str, start_s: float, duration_s: float
    ) -> ObservationSeries:
        """One observer's probe log for a window (cached + sliced)."""
        key = (spec.block.cidr, observer)
        end_s = start_s + duration_s
        cached = self._obs_cache.get(key)
        if cached is not None and cached[0] <= start_s and cached[1] >= end_s:
            self._obs_cache.move_to_end(key)
            return cached[2].slice_time(start_s, end_s)

        sim_start = start_s if cached is None else min(cached[0], start_s)
        sim_end = end_s if cached is None else max(cached[1], end_s)
        series = self._simulate(spec, observer, sim_start, sim_end - sim_start)
        if cached is not None:
            self._obs_cache_bytes -= self._series_nbytes(cached[2])
        self._obs_cache[key] = (sim_start, sim_end, series)
        self._obs_cache.move_to_end(key)
        self._obs_cache_bytes += self._series_nbytes(series)
        while self._obs_cache_bytes > self._cache_bytes and len(self._obs_cache) > 1:
            _, (_, _, old) = self._obs_cache.popitem(last=False)
            self._obs_cache_bytes -= self._series_nbytes(old)
        return series.slice_time(start_s, end_s)

    def _simulate(
        self, spec: BlockSpec, observer: str, start_s: float, duration_s: float
    ) -> ObservationSeries:
        truth = self.truth(spec, start_s, duration_s)
        order = probe_order(truth.n_addresses, spec.seed)
        rng = np.random.default_rng([spec.seed, 0xC, _observer_stream(observer)])
        loss = self.world.loss_model(spec, observer)
        if observer == "survey":
            return self.survey.observe(
                truth, None, loss, rng, start_s=start_s, duration_s=duration_s
            )
        if observer == "a":
            return self.additional.observe(
                truth, order, loss, rng, start_s=start_s, duration_s=duration_s
            )
        prober = self.observers[observer]
        # each observer starts its cursor at an independent position
        cursor = int(np.random.default_rng([spec.seed, 0xD, _observer_stream(observer)]).integers(truth.n_addresses))
        return prober.observe(
            truth,
            order,
            loss,
            rng,
            start_s=start_s,
            duration_s=duration_s,
            start_cursor=cursor,
        )

    def observe_dataset(
        self, spec: BlockSpec, ds: DatasetSpec | str
    ) -> list[ObservationSeries]:
        """All of a dataset's observer logs for one block."""
        ds = dataset(ds) if isinstance(ds, str) else ds
        start = ds.start_s(self.world.epoch)
        return [self.observe(spec, obs, start, ds.duration_s) for obs in ds.observers]

    # -- analysis -----------------------------------------------------------
    def reconstruct_block(
        self,
        spec: BlockSpec,
        ds: DatasetSpec | str,
        pipeline: BlockPipeline | None = None,
        *,
        ctx: StageContext | None = None,
    ) -> Reconstruction:
        """Simulate one block's observers and reconstruct its count series.

        This is the front half of :meth:`analyze_block` (simulate,
        repair, combine, reconstruct); the batched runtime path fans it
        out per block and regroups the reconstructions into matrix
        batches for the analysis tail.
        """
        ds = dataset(ds) if isinstance(ds, str) else ds
        pipeline = pipeline or self.pipeline
        ctx = ctx if ctx is not None else StageContext()
        start = ds.start_s(self.world.epoch)
        with ctx.stage("simulate") as active:
            logs = self.observe_dataset(spec, ds)
            truth = self.truth(spec, start, ds.duration_s)
            active.n_out = sum(len(log) for log in logs)
        grid = start + np.arange(int(ds.duration_s / ROUND_SECONDS)) * ROUND_SECONDS
        per_observer = pipeline.stage_repair(logs, ctx)
        merged = pipeline.stage_combine(per_observer, ctx)
        return pipeline.stage_reconstruct(merged, truth.addresses, grid, ctx)

    def analyze_block(
        self,
        spec: BlockSpec,
        ds: DatasetSpec | str,
        pipeline: BlockPipeline | None = None,
        *,
        ctx: StageContext | None = None,
    ) -> BlockAnalysis:
        """Run the pipeline on one block for one dataset window."""
        pipeline = pipeline or self.pipeline
        ctx = ctx if ctx is not None else StageContext()
        recon = self.reconstruct_block(spec, ds, pipeline, ctx=ctx)
        return pipeline.analyze_tail(recon, ctx)

    def analyze(
        self,
        ds: DatasetSpec | str,
        *,
        blocks: list[BlockSpec] | None = None,
        pipeline: BlockPipeline | None = None,
        engine: CampaignEngine | None = None,
    ) -> DatasetResult:
        """Analyze a whole dataset (all world blocks unless given).

        Blocks are dispatched through ``engine`` (the ``REPRO_WORKERS``
        default when not given) as one :class:`BlockAnalysisJob` per
        block; firewalled blocks short-circuit inside the job.  The
        engine's :class:`~repro.runtime.engine.RunMetrics` lands on the
        returned result.
        """
        ds = dataset(ds) if isinstance(ds, str) else ds
        blocks = list(self.world.blocks) if blocks is None else blocks
        engine = engine if engine is not None else default_engine()
        job = BlockAnalysisJob(
            world=self.world,
            ds=ds,
            pipeline=pipeline or self.pipeline,
            observer_style=self.observer_style,
        )
        run = engine.run(job, blocks, label=f"analyze:{ds.name}")
        result = DatasetResult(spec=ds, world=self.world, metrics=run.metrics)
        if isinstance(run.results, SpilledResults):
            # sharded run: results live on disk — expose a lazy view
            # instead of rehydrating the whole world into one dict
            # (jobs key results by cidr, so keys come from the specs)
            keys = [spec.block.cidr for spec in blocks]
            result.analyses = SpilledAnalyses(keys, run.results)
            result.block_specs = dict(zip(keys, blocks))
            return result
        analyses: dict[str, BlockAnalysis] = {}
        for spec, block_result in zip(blocks, run.results):
            analyses[block_result.key] = block_result.analysis
            result.block_specs[block_result.key] = spec
        result.analyses = analyses
        return result

    # -- block statistics ----------------------------------------------------
    def availability(self, spec: BlockSpec, start_s: float, duration_s: float) -> float:
        """Long-run availability A: mean activity over E(b) and time (§3.2.3)."""
        truth = self.truth(spec, start_s, duration_s)
        lo = truth.column_of(start_s)
        hi = truth.column_of(start_s + duration_s - 1.0) + 1
        window = truth.active[:, lo:hi]
        return float(window.mean()) if window.size else 0.0


def _observer_stream(observer: str) -> int:
    """Stable small integer per observer name for seeding."""
    return sum(ord(ch) << (8 * i) for i, ch in enumerate(observer[:4]))


def block_record(
    spec: BlockSpec,
    analysis: BlockAnalysis,
    *,
    responsive: bool | None = None,
    change_sensitive: bool | None = None,
) -> BlockRecord:
    """The aggregation record for one analyzed block.

    ``responsive``/``change_sensitive`` override the analysis's own
    classification — campaign runs label blocks by their *baseline*
    verdict while the change days come from the detection window.
    """
    return BlockRecord(
        geo=spec.geo,
        responsive=(
            analysis.classification.responsive if responsive is None else responsive
        ),
        change_sensitive=(
            analysis.is_change_sensitive
            if change_sensitive is None
            else change_sensitive
        ),
        downward_days=analysis.downward_change_days(),
        upward_days=analysis.upward_change_days(),
    )


def unresponsive_analysis() -> BlockAnalysis:
    """A constant analysis object for blocks that never answer probes."""
    from ..core.reconstruction import Reconstruction
    from ..core.sensitivity import BlockClassification
    from ..timeseries.series import TimeSeries

    empty = TimeSeries(np.array([]), np.array([]))
    return BlockAnalysis(
        reconstruction=Reconstruction(
            counts=empty,
            complete_time_s=float("nan"),
            eb_size=0,
            observed_addresses=np.array([], dtype=np.int16),
        ),
        classification=BlockClassification(responsive=False, diurnal=None, swing=None),
        trend=None,
        changes=None,
    )
