"""Dataset catalogue mirroring the paper's Table 6.

A :class:`DatasetSpec` names an observation window and the observers that
contribute — ``2020q1-w`` is one site for twelve weeks, ``2020m1-ejnw``
four sites for four weeks, ``2020it89-w`` the two-week full survey.  The
specs carry dates; the builder resolves them against a world's epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timezone

__all__ = ["DatasetSpec", "CATALOG", "dataset", "TRINOCULAR_SITES"]

#: the six Trinocular sites and their (arbitrary but fixed) round phases
TRINOCULAR_SITES: dict[str, float] = {
    "c": 41.0,  # Colorado (hardware problems in 2020)
    "e": 137.0,  # Washington, DC
    "g": 233.0,  # Greece (hardware problems in 2020)
    "j": 347.0,  # Tokyo
    "n": 449.0,  # Netherlands
    "w": 551.0,  # Los Angeles
}


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset: an observation window and a set of observers."""

    name: str
    start: date
    weeks: float
    observers: tuple[str, ...]
    survey: bool = False  # complete scans of every address (it89-style)

    @property
    def duration_s(self) -> float:
        return self.weeks * 7 * 86_400.0

    @property
    def duration_days(self) -> float:
        return self.weeks * 7

    def start_s(self, epoch: datetime) -> float:
        """Window start in seconds since a world epoch (UTC midnight)."""
        if epoch.tzinfo is None:
            epoch = epoch.replace(tzinfo=timezone.utc)
        start_dt = datetime(
            self.start.year, self.start.month, self.start.day, tzinfo=timezone.utc
        )
        return (start_dt - epoch).total_seconds()

    def end_s(self, epoch: datetime) -> float:
        return self.start_s(epoch) + self.duration_s


def _quarter(name: str, start: date, observers: str, weeks: float = 12) -> DatasetSpec:
    return DatasetSpec(name=name, start=start, weeks=weeks, observers=tuple(observers))


CATALOG: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        # single-observer quarters (Table 6)
        _quarter("2019q4-w", date(2019, 10, 1), "w"),
        _quarter("2020q1-e", date(2020, 1, 1), "e"),
        _quarter("2020q1-j", date(2020, 1, 1), "j"),
        _quarter("2020q1-n", date(2020, 1, 1), "n"),
        _quarter("2020q1-w", date(2020, 1, 1), "w"),
        _quarter("2020q2-e", date(2020, 4, 1), "e"),
        _quarter("2020q2-j", date(2020, 4, 1), "j"),
        _quarter("2020q2-n", date(2020, 4, 1), "n"),
        _quarter("2020q2-w", date(2020, 4, 1), "w"),
        # multi-observer combinations used throughout §3
        _quarter("2020q1-jw", date(2020, 1, 1), "jw"),
        _quarter("2020q1-jnw", date(2020, 1, 1), "jnw"),
        _quarter("2020q1-ejnw", date(2020, 1, 1), "ejnw"),
        _quarter("2020q2-ejnw", date(2020, 4, 1), "ejnw"),
        # months and halves
        _quarter("2020m1-w", date(2020, 1, 1), "w", weeks=4),
        _quarter("2020m1-ejnw", date(2020, 1, 1), "ejnw", weeks=4),
        _quarter("2020h1-w", date(2020, 1, 1), "w", weeks=26),
        _quarter("2020h1-ejnw", date(2020, 1, 1), "ejnw", weeks=26),
        # the ground-truth survey and its 4-site reconstruction twin
        DatasetSpec(
            name="2020it89-w", start=date(2020, 2, 19), weeks=2, observers=("survey",), survey=True
        ),
        _quarter("2020it89-match-ejnw", date(2020, 2, 19), "ejnw", weeks=2),
        # 2023 control quarters (Appendix B.3/B.4; relative to the 2023 world)
        _quarter("2023q1-ejnw", date(2023, 1, 1), "ejnw"),
        _quarter("2023q1-w", date(2023, 1, 1), "w"),
        _quarter("2023q2-cenw", date(2023, 4, 1), "cenw"),
    )
}


def dataset(name: str) -> DatasetSpec:
    """Look a dataset up by its Table 6-style abbreviation."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(sorted(CATALOG))}"
        ) from None
