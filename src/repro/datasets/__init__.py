"""Named datasets (paper Table 6) and the simulation/analysis builder."""

from .builder import DatasetBuilder, DatasetResult, FunnelCounts
from .catalog import CATALOG, TRINOCULAR_SITES, DatasetSpec, dataset
from .targets import TargetList, TargetListManager

__all__ = [
    "DatasetBuilder",
    "DatasetResult",
    "FunnelCounts",
    "CATALOG",
    "TRINOCULAR_SITES",
    "DatasetSpec",
    "dataset",
    "TargetList",
    "TargetListManager",
]
