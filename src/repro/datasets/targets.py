"""Target-list management and quarterly retraining (§2.2, §3.4).

Trinocular probes only E(b): "addresses that have ever responded to a
complete scan in the last three years", with the list refreshed each
quarter.  Up to here the simulation handed observers the oracle E(b)
from ground truth; this module closes the loop the way the real system
works — the next quarter's target list is *derived from the previous
quarter's probe results*:

* addresses that replied at least once stay in the list;
* addresses silent for ``expire_after_quarters`` refreshes age out;
* addresses outside the list are rediscovered by periodic full sweeps
  (the census-style rescan the real target pipeline relies on).

§3.4 calls non-stationarity "addressed by regular retraining, as is
already done for input targets"; the retraining experiment measures how
stale target lists degrade change-sensitivity detection and how a
refresh restores it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..net.observations import ObservationSeries
from ..net.usage import BlockTruth

__all__ = ["TargetList", "TargetListManager"]


@dataclass(frozen=True)
class TargetList:
    """One quarter's probing targets for a block."""

    addresses: np.ndarray  # int16 last octets, sorted
    quarter: int

    def __post_init__(self) -> None:
        addresses = np.unique(np.asarray(self.addresses, dtype=np.int16))
        object.__setattr__(self, "addresses", addresses)

    def __len__(self) -> int:
        return int(self.addresses.size)

    def contains(self, address: int) -> bool:
        idx = int(np.searchsorted(self.addresses, address))
        return idx < self.addresses.size and int(self.addresses[idx]) == int(address)


@dataclass
class TargetListManager:
    """Evolves a block's target list from quarter to quarter.

    ``refresh`` consumes the quarter's merged probe log plus an optional
    full-sweep snapshot (all addresses probed once, census-style) and
    produces the next quarter's list.
    """

    expire_after_quarters: int = 12  # ~3 years, the paper's horizon
    _silent_quarters: dict[int, int] = field(default_factory=dict)

    def initial_list(self, truth: BlockTruth, quarter: int = 0) -> TargetList:
        """Bootstrap from a census: everything E(b) contains."""
        for addr in truth.addresses.tolist():
            self._silent_quarters.setdefault(int(addr), 0)
        return TargetList(addresses=truth.addresses.copy(), quarter=quarter)

    def refresh(
        self,
        current: TargetList,
        observations: ObservationSeries,
        *,
        sweep_responders: np.ndarray | None = None,
    ) -> TargetList:
        """Build the next quarter's list from this quarter's evidence."""
        responders = set()
        if len(observations):
            replied = observations.addresses[observations.results]
            responders.update(int(a) for a in np.unique(replied))
        if sweep_responders is not None:
            responders.update(int(a) for a in np.asarray(sweep_responders).tolist())

        keep: list[int] = []
        for addr in current.addresses.tolist():
            addr = int(addr)
            if addr in responders:
                self._silent_quarters[addr] = 0
                keep.append(addr)
                continue
            silent = self._silent_quarters.get(addr, 0) + 1
            self._silent_quarters[addr] = silent
            if silent < self.expire_after_quarters:
                keep.append(addr)

        # rediscovery: sweep responders outside the current list join it
        for addr in sorted(responders):
            if not current.contains(addr):
                self._silent_quarters[addr] = 0
                keep.append(addr)

        return TargetList(
            addresses=np.asarray(keep, dtype=np.int16), quarter=current.quarter + 1
        )

    def sweep(
        self, truth: BlockTruth, at_time_s: float, *, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """A census-style single full sweep: who answers right now.

        The sweep probes every address of the block once around
        ``at_time_s`` (the real census spreads this over days; one column
        is an adequate stand-in at 11-minute resolution).
        """
        col = truth.column_of(at_time_s)
        responders = truth.addresses[truth.active[:, col]]
        return np.asarray(responders, dtype=np.int16)
