"""Regularly and irregularly sampled time-series containers.

The analysis pipeline moves between three time bases:

* probe rounds (660 s, the Trinocular cadence),
* an hourly grid used for trend extraction, and
* UTC days used for swing and change aggregation.

:class:`TimeSeries` stores ``(times, values)`` with times in seconds since
a dataset epoch and provides the resampling and windowing operations the
pipeline needs.  Values may contain NaN (e.g. before a block's first full
reconstruction).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

import numpy as np

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

__all__ = [
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "BlockMatrix",
    "TimeSeries",
    "day_index",
    "group_block_matrices",
    "second_of_day",
    "utc_datetime",
]


def day_index(times: np.ndarray | float, epoch_offset: float = 0.0) -> np.ndarray:
    """Return the UTC day number for each timestamp.

    ``epoch_offset`` is the second-of-day of the dataset epoch; pass it when
    the epoch does not fall on a UTC midnight.
    """
    return np.floor((np.asarray(times, dtype=np.float64) + epoch_offset) / SECONDS_PER_DAY).astype(np.int64)


def second_of_day(times: np.ndarray | float, epoch_offset: float = 0.0) -> np.ndarray:
    """Return the second-of-UTC-day for each timestamp."""
    return np.mod(np.asarray(times, dtype=np.float64) + epoch_offset, SECONDS_PER_DAY)


def utc_datetime(epoch: datetime, seconds: float) -> datetime:
    """Return ``epoch + seconds`` as a timezone-aware UTC datetime."""
    if epoch.tzinfo is None:
        epoch = epoch.replace(tzinfo=timezone.utc)
    return epoch + timedelta(seconds=float(seconds))


@dataclass(frozen=True)
class TimeSeries:
    """An ordered series of ``(time, value)`` samples.

    Times are float seconds since the owning dataset's epoch and must be
    strictly increasing.  The container is immutable; every operation
    returns a new series.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be one-dimensional")
        if times.shape != values.shape:
            raise ValueError(
                f"times and values must have equal length, got {times.shape} and {values.shape}"
            )
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def is_empty(self) -> bool:
        return self.times.size == 0

    @property
    def duration(self) -> float:
        """Span in seconds between the first and last sample."""
        if self.times.size < 2:
            return 0.0
        return float(self.times[-1] - self.times[0])

    @property
    def nbytes(self) -> int:
        """Payload size of the series data (times + values), in bytes.

        This is what the dispatch plane would move for this series —
        the shared-memory tier publishes exactly these arrays when the
        series rides inside a task above the publication threshold.
        """
        return int(self.times.nbytes + self.values.nbytes)

    def with_values(self, values: np.ndarray) -> "TimeSeries":
        """Return a series with the same times and new values."""
        return TimeSeries(self.times, values)

    def dropna(self) -> "TimeSeries":
        """Return the series without NaN samples."""
        keep = ~np.isnan(self.values)
        return TimeSeries(self.times[keep], self.values[keep])

    def slice_time(self, start: float, stop: float) -> "TimeSeries":
        """Return samples with ``start <= time < stop``."""
        lo = np.searchsorted(self.times, start, side="left")
        hi = np.searchsorted(self.times, stop, side="left")
        return TimeSeries(self.times[lo:hi], self.values[lo:hi])

    # ------------------------------------------------------------------
    # resampling
    # ------------------------------------------------------------------
    def resample_mean(self, bin_seconds: float, *, min_count: int = 1) -> "TimeSeries":
        """Resample to a regular grid using the mean of samples per bin.

        Output times are bin centers.  Bins with fewer than ``min_count``
        non-NaN samples become NaN.
        """
        if self.is_empty:
            return self
        t0 = np.floor(self.times[0] / bin_seconds) * bin_seconds
        bins = ((self.times - t0) / bin_seconds).astype(np.int64)
        n_bins = int(bins[-1]) + 1
        valid = ~np.isnan(self.values)
        sums = np.bincount(bins[valid], weights=self.values[valid], minlength=n_bins)
        counts = np.bincount(bins[valid], minlength=n_bins)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts >= min_count, sums / np.maximum(counts, 1), np.nan)
        centers = t0 + (np.arange(n_bins) + 0.5) * bin_seconds
        return TimeSeries(centers, means)

    def resample_hourly(self) -> "TimeSeries":
        """Resample to the hourly grid used by trend extraction."""
        return self.resample_mean(SECONDS_PER_HOUR)

    def interpolate_nan(self) -> "TimeSeries":
        """Linearly interpolate interior NaN runs; edge NaNs are held flat."""
        values = self.values.copy()
        nans = np.isnan(values)
        if not nans.any():
            return self
        if nans.all():
            return self
        good = ~nans
        values[nans] = np.interp(self.times[nans], self.times[good], values[good])
        return TimeSeries(self.times, values)

    # ------------------------------------------------------------------
    # daily windows
    # ------------------------------------------------------------------
    def daily_groups(self, epoch_offset: float = 0.0) -> dict[int, np.ndarray]:
        """Group sample values by UTC day index (NaNs removed per day)."""
        days = day_index(self.times, epoch_offset)
        groups: dict[int, np.ndarray] = {}
        if days.size == 0:
            return groups
        boundaries = np.flatnonzero(np.diff(days)) + 1
        starts = np.concatenate(([0], boundaries))
        stops = np.concatenate((boundaries, [days.size]))
        for lo, hi in zip(starts, stops):
            vals = self.values[lo:hi]
            vals = vals[~np.isnan(vals)]
            if vals.size:
                groups[int(days[lo])] = vals
        return groups

    def daily_swing(self, epoch_offset: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(day_indices, max - min per UTC day)``, skipping empty days."""
        groups = self.daily_groups(epoch_offset)
        days = np.array(sorted(groups), dtype=np.int64)
        swings = np.array([groups[d].max() - groups[d].min() for d in days], dtype=np.float64)
        return days, swings

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def zscore(self) -> "TimeSeries":
        """Return the z-normalized series (constant series become zeros)."""
        vals = self.values
        good = ~np.isnan(vals)
        if not good.any():
            return self
        mean = float(np.mean(vals[good]))
        std = float(np.std(vals[good]))
        if std == 0.0:
            return self.with_values(np.where(good, 0.0, np.nan))
        return self.with_values((vals - mean) / std)

    def pearson(self, other: "TimeSeries") -> float:
        """Pearson correlation against another series on the same grid."""
        if len(self) != len(other) or not np.allclose(self.times, other.times):
            raise ValueError("series must share a time grid for correlation")
        good = ~np.isnan(self.values) & ~np.isnan(other.values)
        a = self.values[good]
        b = other.values[good]
        if a.size < 2 or np.std(a) == 0 or np.std(b) == 0:
            return float("nan")
        return float(np.corrcoef(a, b)[0, 1])


@dataclass(frozen=True)
class BlockMatrix:
    """Count series of many blocks stacked on one shared sample grid.

    ``times`` is the shared ``(n,)`` grid and ``values`` a ``(B, n)`` matrix
    whose row ``i`` is one block's series.  This is the unit of work of the
    batched analysis plane: the funnel kernels run across all rows at once,
    and every row operation is defined so that it is bit-identical to the
    corresponding :class:`TimeSeries` method applied to :meth:`row` —
    flattened ``bincount`` resampling accumulates each row's samples in the
    same order as the per-row call, and segment max/min use exact,
    order-free reductions.
    """

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=np.float64)
        values = np.asarray(self.values, dtype=np.float64)
        if times.ndim != 1 or values.ndim != 2:
            raise ValueError("times must be (n,) and values (B, n)")
        if values.shape[1] != times.size:
            raise ValueError(
                f"values has {values.shape[1]} columns for {times.size} times"
            )
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_series(cls, series: "list[TimeSeries] | tuple[TimeSeries, ...]") -> "BlockMatrix":
        """Stack series that share one sample grid into a matrix."""
        if not series:
            raise ValueError("need at least one series to form a matrix")
        times = series[0].times
        for s in series[1:]:
            if s.times.size != times.size or not np.array_equal(s.times, times):
                raise ValueError("all series must share one sample grid")
        return cls(times, np.stack([s.values for s in series]))

    def __len__(self) -> int:
        return int(self.values.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    @property
    def nbytes(self) -> int:
        """Payload size of the matrix data (grid + all rows), in bytes."""
        return int(self.times.nbytes + self.values.nbytes)

    def row(self, i: int) -> TimeSeries:
        """Block ``i``'s series as a :class:`TimeSeries`."""
        return TimeSeries(self.times, self.values[i])

    def take(self, rows: "np.ndarray | list[int] | tuple[int, ...]") -> "BlockMatrix":
        """Sub-matrix of the given row indices (same grid)."""
        return BlockMatrix(self.times, self.values[np.asarray(rows, dtype=np.intp)])

    def resample_mean(self, bin_seconds: float, *, min_count: int = 1) -> "BlockMatrix":
        """Row-wise :meth:`TimeSeries.resample_mean` in one bincount pass.

        The per-bin sums use one flattened ``bincount`` over
        ``row * n_bins + bin``, which adds each row's samples in the same
        left-to-right order as the per-row call — bit-identical results.
        """
        if self.times.size == 0:
            return self
        t0 = np.floor(self.times[0] / bin_seconds) * bin_seconds
        bins = ((self.times - t0) / bin_seconds).astype(np.int64)
        n_bins = int(bins[-1]) + 1
        n_rows = self.values.shape[0]
        valid = ~np.isnan(self.values)
        flat = (np.arange(n_rows)[:, None] * n_bins + bins[None, :])[valid]
        sums = np.bincount(
            flat, weights=self.values[valid], minlength=n_rows * n_bins
        ).reshape(n_rows, n_bins)
        counts = np.bincount(flat, minlength=n_rows * n_bins).reshape(n_rows, n_bins)
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts >= min_count, sums / np.maximum(counts, 1), np.nan)
        centers = t0 + (np.arange(n_bins) + 0.5) * bin_seconds
        return BlockMatrix(centers, means)

    def interpolate_nan(self) -> "BlockMatrix":
        """Row-wise :meth:`TimeSeries.interpolate_nan` (same ``np.interp`` calls)."""
        values = self.values.copy()
        for row in values:
            nans = np.isnan(row)
            if not nans.any() or nans.all():
                continue
            good = ~nans
            row[nans] = np.interp(self.times[nans], self.times[good], row[good])
        return BlockMatrix(self.times, values)

    def daily_swings(self, epoch_offset: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Per-day max - min for every row in one segmented reduction.

        Returns ``(day_indices, swings)`` where ``swings`` is ``(B, n_days)``
        with NaN marking days where a row has no finite samples (the per-row
        :meth:`TimeSeries.daily_swing` drops those days).  ``np.fmax`` /
        ``np.fmin`` skip NaNs and max/min are exact, so finite entries equal
        the per-row results bit for bit.
        """
        days = day_index(self.times, epoch_offset)
        if days.size == 0:
            return days, np.empty((self.values.shape[0], 0), dtype=np.float64)
        boundaries = np.flatnonzero(np.diff(days)) + 1
        starts = np.concatenate(([0], boundaries))
        highs = np.fmax.reduceat(self.values, starts, axis=1)
        lows = np.fmin.reduceat(self.values, starts, axis=1)
        return days[starts], highs - lows


def group_block_matrices(
    series: "list[TimeSeries] | tuple[TimeSeries, ...]",
) -> list[tuple[tuple[int, ...], BlockMatrix]]:
    """Group series sharing an identical sample grid into matrix batches.

    Returns ``(indices, matrix)`` pairs in first-seen order; every input
    series lands in exactly one group.  Campaign blocks share one grid in
    practice, so this is normally a single group, but differing grids (e.g.
    blocks with per-block default grids) batch separately and still get
    per-row-identical results.
    """
    groups: dict[bytes, list[int]] = {}
    for i, s in enumerate(series):
        groups.setdefault(s.times.tobytes(), []).append(i)
    return [
        (tuple(idxs), BlockMatrix.from_series([series[i] for i in idxs]))
        for idxs in groups.values()
    ]
