"""LOESS (locally weighted regression) smoothing.

This is the smoother underlying STL (Cleveland et al., 1990).  We implement
local linear regression with the tricube kernel and optional robustness
weights, on arbitrary (not necessarily regular) abscissae.

Only the pieces STL needs are implemented: degree 0 or 1 local fits, a
nearest-``q`` neighbourhood bandwidth, and evaluation either at the input
points or at arbitrary query points.
"""

from __future__ import annotations

import numpy as np

__all__ = ["loess_smooth", "tricube"]


def tricube(u: np.ndarray) -> np.ndarray:
    """Tricube kernel ``(1 - |u|^3)^3`` clipped outside ``|u| < 1``."""
    a = np.clip(np.abs(u), 0.0, 1.0)
    return (1.0 - a**3) ** 3


def _neighbourhood(x: np.ndarray, x0: float, q: int) -> tuple[np.ndarray, float]:
    """Indices of the ``q`` nearest points to ``x0`` and the max distance.

    When ``q`` exceeds the number of points, all points are used and the
    bandwidth is inflated as in the original STL implementation so that the
    fit degrades gracefully toward a global regression.
    """
    n = x.size
    dist = np.abs(x - x0)
    if q >= n:
        h = dist.max() * (q / max(n, 1))
        return np.arange(n), max(h, 1e-12)
    # q nearest points via partial sort
    idx = np.argpartition(dist, q - 1)[:q]
    h = dist[idx].max()
    return idx, max(h, 1e-12)


def _sorted_window(x: np.ndarray, x0: float, q: int) -> tuple[int, int, float]:
    """Contiguous window of the ``q`` nearest points in a sorted array.

    Returns ``(lo, hi, bandwidth)`` with the window ``x[lo:hi]``.  For
    sorted abscissae the nearest-``q`` neighbourhood is always contiguous,
    which makes LOESS O(n*q) instead of O(n^2).
    """
    n = x.size
    if q >= n:
        h = max(abs(x0 - x[0]), abs(x[-1] - x0)) * (q / max(n, 1))
        return 0, n, max(h, 1e-12)
    pos = int(np.searchsorted(x, x0))
    lo = max(pos - q, 0)
    hi = min(pos + q, n)
    window = x[lo:hi]
    dist = np.abs(window - x0)
    keep = np.argpartition(dist, q - 1)[:q]
    w_lo = lo + int(keep.min())
    w_hi = lo + int(keep.max()) + 1
    h = float(dist[keep].max())
    return w_lo, w_hi, max(h, 1e-12)


def _loess_uniform(
    x: np.ndarray,
    y: np.ndarray,
    q: int,
    *,
    degree: int,
    xout: np.ndarray,
    robustness_weights: np.ndarray,
) -> np.ndarray | None:
    """Vectorized LOESS for a uniform grid evaluated at its own points.

    On a uniform grid the nearest-``q`` neighbourhood of point ``i`` is the
    centered window clipped at the edges, and every window shares one
    offset pattern, so the whole fit reduces to sliding-window matrix
    arithmetic.  Returns ``None`` when the fast path does not apply.
    """
    n = x.size
    if n < 3 or q >= n or xout is not x and (
        xout.size != n or not np.array_equal(xout, x)
    ):
        return None
    dx = x[1] - x[0]
    if dx <= 0 or not np.allclose(np.diff(x), dx, rtol=1e-9, atol=0):
        return None

    idx = np.arange(n)
    starts = np.clip(idx - (q - 1) // 2, 0, n - q)
    offsets = idx - starts  # position of the query point within its window
    rel = np.arange(q)[None, :] - offsets[:, None]  # window offsets in grid units
    h = np.maximum(np.abs(rel).max(axis=1), 1)[:, None].astype(np.float64)
    base_w = tricube(rel / h)

    from numpy.lib.stride_tricks import sliding_window_view

    y_win = sliding_window_view(y, q)[starts]
    rw_win = sliding_window_view(robustness_weights, q)[starts]
    w = base_w * rw_win
    xc = rel * dx

    sw = w.sum(axis=1)
    swy = (w * y_win).sum(axis=1)
    safe_sw = np.maximum(sw, 1e-300)
    if degree == 0:
        out = swy / safe_sw
    else:
        swx = (w * xc).sum(axis=1)
        swxx = (w * xc * xc).sum(axis=1)
        swxy = (w * xc * y_win).sum(axis=1)
        denom = sw * swxx - swx * swx
        ok = np.abs(denom) > 1e-12 * np.maximum(sw * swxx, 1e-12)
        slope = np.where(ok, (sw * swxy - swx * swy) / np.where(ok, denom, 1.0), 0.0)
        out = (swy - slope * swx) / safe_sw
    # windows whose weights all vanished fall back to the plain window mean
    dead = sw <= 0
    if dead.any():
        out = out.copy()
        out[dead] = y_win[dead].mean(axis=1)
    return out


def loess_smooth(
    x: np.ndarray,
    y: np.ndarray,
    q: int,
    *,
    degree: int = 1,
    xout: np.ndarray | None = None,
    robustness_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Smooth ``y`` observed at ``x`` with LOESS.

    Parameters
    ----------
    x, y:
        Sample abscissae and values, same length.  ``x`` need not be
        regular but must be finite.
    q:
        Neighbourhood size in points (the STL smoothing parameter).
    degree:
        Local polynomial degree, 0 (weighted mean) or 1 (weighted line).
    xout:
        Points at which to evaluate; defaults to ``x``.
    robustness_weights:
        Optional per-sample weights from STL's outer loop.

    Returns
    -------
    numpy.ndarray of smoothed values at ``xout``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-d arrays of equal length")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")
    if x.size == 0:
        return np.array([], dtype=np.float64)
    q = max(int(q), 2)
    if xout is None:
        xout = x
    xout = np.asarray(xout, dtype=np.float64)
    rw = (
        np.ones_like(y)
        if robustness_weights is None
        else np.asarray(robustness_weights, dtype=np.float64)
    )

    fast = _loess_uniform(x, y, q, degree=degree, xout=xout, robustness_weights=rw)
    if fast is not None:
        return fast

    sorted_x = x.size < 2 or bool(np.all(np.diff(x) > 0))

    out = np.empty(xout.size, dtype=np.float64)
    for j, x0 in enumerate(xout):
        if sorted_x:
            lo, hi, h = _sorted_window(x, x0, q)
            xi = x[lo:hi]
            yi = y[lo:hi]
            w = tricube((xi - x0) / h) * rw[lo:hi]
        else:
            idx, h = _neighbourhood(x, x0, q)
            xi = x[idx]
            yi = y[idx]
            w = tricube((xi - x0) / h) * rw[idx]
        wsum = w.sum()
        if wsum <= 0:
            # all neighbourhood weights vanished (heavy robustness
            # down-weighting); fall back to the unweighted local mean
            out[j] = float(np.mean(yi))
            continue
        if degree == 0:
            out[j] = float(np.dot(w, yi) / wsum)
            continue
        # weighted linear fit around x0
        xc = xi - x0
        sw = wsum
        swx = float(np.dot(w, xc))
        swxx = float(np.dot(w, xc * xc))
        swy = float(np.dot(w, yi))
        swxy = float(np.dot(w, xc * yi))
        denom = sw * swxx - swx * swx
        if abs(denom) < 1e-12 * max(sw * swxx, 1e-12):
            out[j] = swy / sw
        else:
            slope = (sw * swxy - swx * swy) / denom
            intercept = (swy - slope * swx) / sw
            out[j] = intercept  # evaluated at xc = 0
    return out
