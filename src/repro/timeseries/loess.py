"""LOESS (locally weighted regression) smoothing.

This is the smoother underlying STL (Cleveland et al., 1990).  We implement
local linear regression with the tricube kernel and optional robustness
weights, on arbitrary (not necessarily regular) abscissae.

Only the pieces STL needs are implemented: degree 0 or 1 local fits, a
nearest-``q`` neighbourhood bandwidth, and evaluation either at the input
points or at arbitrary query points.

The uniform-grid fast path operates on a ``(B, n)`` value matrix so that
batched STL can smooth every block's series in one sliding-window pass
(:func:`loess_smooth_batch`); the 1-D entry point routes through the same
code with ``B == 1``, which is what makes per-block and batched results
bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["loess_smooth", "loess_smooth_batch", "tricube"]

# cap the (rows, nout, q) sliding-window temporaries at ~32 MB per array
_CHUNK_ELEMS = 4_000_000


def tricube(u: np.ndarray) -> np.ndarray:
    """Tricube kernel ``(1 - |u|^3)^3`` clipped outside ``|u| < 1``."""
    a = np.clip(np.abs(u), 0.0, 1.0)
    return (1.0 - a**3) ** 3


def _neighbourhood(x: np.ndarray, x0: float, q: int) -> tuple[np.ndarray, float]:
    """Indices of the ``q`` nearest points to ``x0`` and the max distance.

    When ``q`` exceeds the number of points, all points are used and the
    bandwidth is inflated as in the original STL implementation so that the
    fit degrades gracefully toward a global regression.
    """
    n = x.size
    dist = np.abs(x - x0)
    if q >= n:
        h = dist.max() * (q / max(n, 1))
        return np.arange(n), max(h, 1e-12)
    # q nearest points via partial sort
    idx = np.argpartition(dist, q - 1)[:q]
    h = dist[idx].max()
    return idx, max(h, 1e-12)


def _sorted_window(x: np.ndarray, x0: float, q: int) -> tuple[int, int, float]:
    """Contiguous window of the ``q`` nearest points in a sorted array.

    Returns ``(lo, hi, bandwidth)`` with the window ``x[lo:hi]``.  For
    sorted abscissae the nearest-``q`` neighbourhood is always contiguous,
    which makes LOESS O(n*q) instead of O(n^2).
    """
    n = x.size
    if q >= n:
        h = max(abs(x0 - x[0]), abs(x[-1] - x0)) * (q / max(n, 1))
        return 0, n, max(h, 1e-12)
    pos = int(np.searchsorted(x, x0))
    lo = max(pos - q, 0)
    hi = min(pos + q, n)
    window = x[lo:hi]
    dist = np.abs(window - x0)
    keep = np.argpartition(dist, q - 1)[:q]
    w_lo = lo + int(keep.min())
    w_hi = lo + int(keep.max()) + 1
    h = float(dist[keep].max())
    return w_lo, w_hi, max(h, 1e-12)


def _loess_uniform(
    x: np.ndarray,
    y: np.ndarray,
    q: int,
    *,
    degree: int,
    xout: np.ndarray,
    robustness_weights: np.ndarray | None,
) -> np.ndarray | None:
    """Vectorized LOESS for a uniform grid, batched over rows.

    On a uniform grid the nearest-``q`` neighbourhood of a query point is
    the centered window clipped at the edges, and every window shares one
    offset pattern, so the whole fit reduces to sliding-window matrix
    arithmetic.  ``y`` and ``robustness_weights`` may be ``(n,)`` or
    ``(B, n)``; the output has the matching leading shape.  ``xout`` may be
    any set of points aligned to the grid of ``x``, including points
    outside it — the cycle-subseries extension ``-1..m`` lands here instead
    of the scalar loop, with windows and bandwidths identical to
    :func:`_sorted_window`'s (the farthest-point distance is always >= one
    grid step, so the >=1 bandwidth clamp is inert).  Row results do not
    depend on the batch size (every reduction is a per-row sum over
    ``q < 128`` window elements, which numpy sums sequentially), so batched
    rows are bit-identical to one-at-a-time calls.  Returns ``None`` when
    the fast path does not apply.

    ``robustness_weights=None`` means all-ones (STL's first outer pass,
    and every non-robust smoother): the weight matrix is then the shared
    ``(nout, q)`` tricube pattern, so ``sw``/``swx``/``swxx`` are
    row-independent and computed once.  Multiplying by an exact 1.0 is
    the identity in IEEE arithmetic, so this branch is bit-identical to
    passing an explicit ones matrix.
    """
    n = x.size
    if n < 3 or q >= n:
        return None
    dx = x[1] - x[0]
    if dx <= 0 or not np.allclose(np.diff(x), dx, rtol=1e-9, atol=0):
        return None
    if xout is x:
        gpos = np.arange(n)
    else:
        g = (xout - x[0]) / dx
        rounded = np.rint(g)
        if not np.allclose(g, rounded, rtol=0, atol=1e-6):
            return None
        gpos = rounded.astype(np.intp)

    starts = np.clip(gpos - (q - 1) // 2, 0, n - q)
    rel = np.arange(q)[None, :] + (starts - gpos)[:, None]  # offsets in grid units
    h = np.maximum(np.abs(rel).max(axis=1), 1)[:, None].astype(np.float64)
    base_w = tricube(rel / h)
    xc = rel * dx

    from numpy.lib.stride_tricks import sliding_window_view

    y2 = np.atleast_2d(y)
    rw2 = (
        None
        if robustness_weights is None
        else np.atleast_2d(robustness_weights)
    )
    nout = gpos.size
    out = np.empty((y2.shape[0], nout), dtype=np.float64)
    if rw2 is None:
        # the weight matrix is row-independent: fold it once
        ones_sw = base_w.sum(axis=-1)
        ones_wxc = base_w * xc
        ones_swx = ones_wxc.sum(axis=-1)
        ones_swxx = (ones_wxc * xc).sum(axis=-1)
    step = max(_CHUNK_ELEMS // max(nout * q, 1), 1)
    for lo in range(0, y2.shape[0], step):
        rows = slice(lo, lo + step)
        y_win = sliding_window_view(y2[rows], q, axis=-1)[:, starts, :]
        if rw2 is None:
            w, wxc = base_w, None
            sw, swx, swxx = ones_sw, ones_swx, ones_swxx
        else:
            rw_win = sliding_window_view(rw2[rows], q, axis=-1)[:, starts, :]
            w = base_w * rw_win
            sw = w.sum(axis=-1)
        swy = (w * y_win).sum(axis=-1)
        safe_sw = np.maximum(sw, 1e-300)
        if degree == 0:
            block = swy / safe_sw
        else:
            if rw2 is None:
                swxy = (ones_wxc * y_win).sum(axis=-1)
            else:
                wxc = w * xc
                swx = wxc.sum(axis=-1)
                swxx = (wxc * xc).sum(axis=-1)
                swxy = (wxc * y_win).sum(axis=-1)
            denom = sw * swxx - swx * swx
            ok = np.abs(denom) > 1e-12 * np.maximum(sw * swxx, 1e-12)
            slope = np.where(
                ok, (sw * swxy - swx * swy) / np.where(ok, denom, 1.0), 0.0
            )
            block = (swy - slope * swx) / safe_sw
        # windows whose weights all vanished fall back to the plain window mean
        dead = sw <= 0
        if dead.any():
            if rw2 is None:
                block[:, dead] = y_win[:, dead, :].mean(axis=-1)
            else:
                block[dead] = y_win[dead].mean(axis=-1)
        out[rows] = block
    return out if y.ndim == 2 else out[0]


def loess_smooth(
    x: np.ndarray,
    y: np.ndarray,
    q: int,
    *,
    degree: int = 1,
    xout: np.ndarray | None = None,
    robustness_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Smooth ``y`` observed at ``x`` with LOESS.

    Parameters
    ----------
    x, y:
        Sample abscissae and values, same length.  ``x`` need not be
        regular but must be finite.
    q:
        Neighbourhood size in points (the STL smoothing parameter).
    degree:
        Local polynomial degree, 0 (weighted mean) or 1 (weighted line).
    xout:
        Points at which to evaluate; defaults to ``x``.
    robustness_weights:
        Optional per-sample weights from STL's outer loop.

    Returns
    -------
    numpy.ndarray of smoothed values at ``xout``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-d arrays of equal length")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")
    if x.size == 0:
        return np.array([], dtype=np.float64)
    q = max(int(q), 2)
    if xout is None:
        xout = x
    xout = np.asarray(xout, dtype=np.float64)
    rw_in = (
        None
        if robustness_weights is None
        else np.asarray(robustness_weights, dtype=np.float64)
    )

    fast = _loess_uniform(x, y, q, degree=degree, xout=xout, robustness_weights=rw_in)
    if fast is not None:
        return fast

    rw = np.ones_like(y) if rw_in is None else rw_in
    sorted_x = x.size < 2 or bool(np.all(np.diff(x) > 0))

    out = np.empty(xout.size, dtype=np.float64)
    for j, x0 in enumerate(xout):
        if sorted_x:
            lo, hi, h = _sorted_window(x, x0, q)
            xi = x[lo:hi]
            yi = y[lo:hi]
            w = tricube((xi - x0) / h) * rw[lo:hi]
        else:
            idx, h = _neighbourhood(x, x0, q)
            xi = x[idx]
            yi = y[idx]
            w = tricube((xi - x0) / h) * rw[idx]
        wsum = w.sum()
        if wsum <= 0:
            # all neighbourhood weights vanished (heavy robustness
            # down-weighting); fall back to the unweighted local mean
            out[j] = float(np.mean(yi))
            continue
        if degree == 0:
            out[j] = float(np.dot(w, yi) / wsum)
            continue
        # weighted linear fit around x0
        xc = xi - x0
        sw = wsum
        swx = float(np.dot(w, xc))
        swxx = float(np.dot(w, xc * xc))
        swy = float(np.dot(w, yi))
        swxy = float(np.dot(w, xc * yi))
        denom = sw * swxx - swx * swx
        if abs(denom) < 1e-12 * max(sw * swxx, 1e-12):
            out[j] = swy / sw
        else:
            slope = (sw * swxy - swx * swy) / denom
            intercept = (swy - slope * swx) / sw
            out[j] = intercept  # evaluated at xc = 0
    return out


def loess_smooth_batch(
    x: np.ndarray,
    values: np.ndarray,
    q: int,
    *,
    degree: int = 1,
    xout: np.ndarray | None = None,
    robustness_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise :func:`loess_smooth` over a ``(B, n)`` value matrix.

    Every row's result is identical to ``loess_smooth(x, values[i], ...)``:
    the uniform-grid fast path computes per-row reductions that do not
    depend on the batch size, and inputs that miss the fast path fall back
    to the scalar smoother one row at a time.
    """
    x = np.asarray(x, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2 or x.ndim != 1 or values.shape[1] != x.size:
        raise ValueError("values must be a (B, n) matrix with n matching x")
    if degree not in (0, 1):
        raise ValueError("degree must be 0 or 1")
    if xout is None:
        xout = x
    xout = np.asarray(xout, dtype=np.float64)
    if values.shape[0] == 0:
        return np.empty((0, xout.size), dtype=np.float64)
    if x.size == 0:
        return np.empty((values.shape[0], 0), dtype=np.float64)
    q = max(int(q), 2)
    rw_in = (
        None
        if robustness_weights is None
        else np.asarray(robustness_weights, dtype=np.float64)
    )
    if rw_in is not None and rw_in.shape != values.shape:
        raise ValueError("robustness_weights must match the shape of values")

    fast = _loess_uniform(
        x, values, q, degree=degree, xout=xout, robustness_weights=rw_in
    )
    if fast is not None:
        return fast
    return np.stack(
        [
            loess_smooth(
                x,
                values[i],
                q,
                degree=degree,
                xout=xout,
                robustness_weights=None if rw_in is None else rw_in[i],
            )
            for i in range(values.shape[0])
        ]
    )
