"""CUSUM change-point detection.

Implements the cumulative-sum change detector the paper applies to the
z-normalized STL trend (§2.6), with the parameters it fixes for every
block: ``threshold=1``, ``drift=0.001``.  The algorithm follows
Gustafsson (*Adaptive Filtering and Change Detection*, 2000) as popularised
by the ``detecta`` package [26]: two one-sided cumulative sums of the
first difference, reset on alarm, with change-onset tracking and an
optional backward pass to estimate change endings.

The forward pass is vectorized with the running-minimum identity: with
``s = cumsum(x_diff - drift)``, the clamped statistic is
``g = s - minimum.accumulate(min(s, 0))`` (and the mirrored form with
``-x_diff`` for the downward statistic), recomputed per inter-alarm
segment because an alarm resets both sums.  The scalar recursion is kept
as :func:`detect_cusum_reference`; ``tests/test_kernels.py`` asserts the
two agree.  Agreement is exact on alarm/start/end indices for any input
whose statistic does not graze the threshold within float re-association
error (~1e-12 relative): the vectorized form computes each clamped sum as
one subtraction of prefix sums where the reference accumulates terms one
by one, so ``gp``/``gn`` traces match to ``allclose`` (rtol 1e-9) rather
than bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

#: (alarm indices, onset indices, directions, gp trace, gn trace) of one
#: forward pass — the contract shared by the scalar and vectorized kernels.
_CusumPassResult = tuple["list[int]", "list[int]", "list[int]", np.ndarray, np.ndarray]
_CusumPass = Callable[[np.ndarray, float, float], _CusumPassResult]

__all__ = [
    "CusumAlarm",
    "CusumResult",
    "detect_cusum",
    "detect_cusum_batch",
    "detect_cusum_reference",
    "zscore_rows",
]


@dataclass(frozen=True)
class CusumAlarm:
    """One detected change.

    Indices refer to samples of the input series.  ``direction`` is +1 for
    an upward change (positive cumulative sum alarmed) and -1 for a
    downward change.
    """

    alarm: int
    start: int
    end: int
    direction: int
    amplitude: float


@dataclass(frozen=True)
class CusumResult:
    """All alarms plus the cumulative-sum traces (paper Figure 1c)."""

    alarms: tuple[CusumAlarm, ...]
    gp: np.ndarray  # positive (upward) cumulative sum
    gn: np.ndarray  # negative (downward) cumulative sum

    def __len__(self) -> int:
        return len(self.alarms)

    @property
    def downward(self) -> tuple[CusumAlarm, ...]:
        return tuple(a for a in self.alarms if a.direction < 0)

    @property
    def upward(self) -> tuple[CusumAlarm, ...]:
        return tuple(a for a in self.alarms if a.direction > 0)


def _cusum_pass_reference(
    x: np.ndarray, threshold: float, drift: float
) -> _CusumPassResult:
    """Scalar forward CUSUM pass; the oracle the vectorized pass must match."""
    n = x.size
    gp = np.zeros(n)
    gn = np.zeros(n)
    alarms: list[int] = []
    starts: list[int] = []
    directions: list[int] = []
    tap = 0
    tan = 0
    for i in range(1, n):
        s = x[i] - x[i - 1]
        gp[i] = gp[i - 1] + s - drift
        gn[i] = gn[i - 1] - s - drift
        if gp[i] < 0:
            gp[i] = 0.0
            tap = i
        if gn[i] < 0:
            gn[i] = 0.0
            tan = i
        if gp[i] > threshold or gn[i] > threshold:
            up = gp[i] > threshold
            alarms.append(i)
            starts.append(tap if up else tan)
            directions.append(1 if up else -1)
            gp[i] = 0.0
            gn[i] = 0.0
            tap = i
            tan = i
    return alarms, starts, directions, gp, gn


def _cusum_pass(x: np.ndarray, threshold: float, drift: float) -> _CusumPassResult:
    """Vectorized forward CUSUM pass (running-minimum identity).

    Each inter-alarm segment is computed in bulk: the clamped statistic
    over a segment starting at ``base`` (with both sums reset to zero at
    ``base - 1``) is ``g[i] = s[i] - min(0, min(s[base..i]))`` where
    ``s`` is the cumulative sum of the drift-adjusted first differences.
    Clamp points (where the reference sets ``g`` to zero and moves its
    onset tracker) are exactly the strict new minima of ``s`` below zero.
    The segment loop runs once per alarm, so the pass stays O(n) per
    alarm instead of O(n) Python iterations per sample.
    """
    n = x.size
    gp = np.zeros(n)
    gn = np.zeros(n)
    alarms: list[int] = []
    starts: list[int] = []
    directions: list[int] = []
    if n < 2:
        return alarms, starts, directions, gp, gn

    d = np.diff(x)  # d[i - 1] = x[i] - x[i - 1]
    dp = d - drift
    dn = -d - drift
    base = 1  # first sample the segment accumulates into; g[base-1] == 0
    window = 64  # initial per-segment window; grows geometrically
    while base < n:
        # compute the segment in growing windows so dense alarms (one
        # every few samples) don't pay a full-suffix cumsum per alarm:
        # a cumsum prefix equals the cumsum of the prefix, so widening
        # the window never changes already-computed values
        avail = n - base
        w = min(window, avail)
        while True:
            sp = np.cumsum(dp[base - 1 : base - 1 + w])
            sn = np.cumsum(dn[base - 1 : base - 1 + w])
            mp = np.minimum.accumulate(np.minimum(sp, 0.0))
            mn = np.minimum.accumulate(np.minimum(sn, 0.0))
            gpseg = sp - mp
            gnseg = sn - mn
            over = (gpseg > threshold) | (gnseg > threshold)
            hit = int(np.argmax(over)) if over.any() else -1
            if hit >= 0 or w == avail:
                break
            w = min(w * 4, avail)
        if hit < 0:
            gp[base:] = gpseg
            gn[base:] = gnseg
            break
        alarm = base + hit
        gp[base : alarm + 1] = gpseg[: hit + 1]
        gn[base : alarm + 1] = gnseg[: hit + 1]
        up = bool(gpseg[hit] > threshold)
        # the onset is the last clamp of the alarming sum: the last strict
        # new minimum (below zero) of its prefix sum, or the segment reset
        if up:
            seg_min = np.concatenate(([0.0], mp[:hit]))
            clamps = np.flatnonzero(sp[: hit + 1] < seg_min)
        else:
            seg_min = np.concatenate(([0.0], mn[:hit]))
            clamps = np.flatnonzero(sn[: hit + 1] < seg_min)
        onset = base + int(clamps[-1]) if clamps.size else base - 1
        alarms.append(alarm)
        starts.append(onset)
        directions.append(1 if up else -1)
        gp[alarm] = 0.0
        gn[alarm] = 0.0
        base = alarm + 1
    return alarms, starts, directions, gp, gn


def _cusum_pass_batch(
    x: np.ndarray, threshold: float, drift: float
) -> list[_CusumPassResult]:
    """Row-parallel forward CUSUM pass over a ``(B, n)`` matrix.

    Runs the same segment algorithm as :func:`_cusum_pass` — same window
    start (64), same x4 growth, same running-minimum identity — but
    advances every row's active segment together: each round groups rows
    by their current window size, gathers each row's segment into one
    ``(rows, w)`` matrix, and computes all cumulative sums with 2-D
    ``axis=1`` reductions.  ``np.cumsum``/``np.minimum.accumulate`` are
    strictly sequential per row, and a cumsum prefix equals the cumsum
    of the prefix, so every value matches the per-row kernel bit for
    bit; the only remaining Python work is O(alarms), not O(rows x
    segments).  Returned ``gp``/``gn`` are C-contiguous rows of one
    ``(B, n)`` backing array — indistinguishable from standalone arrays
    under ``pickle.dumps``.
    """
    n_rows, n = x.shape
    gp = np.zeros((n_rows, n))
    gn = np.zeros((n_rows, n))
    alarms: list[list[int]] = [[] for _ in range(n_rows)]
    starts: list[list[int]] = [[] for _ in range(n_rows)]
    directions: list[list[int]] = [[] for _ in range(n_rows)]
    if n >= 2 and n_rows:
        d = np.diff(x, axis=1)
        dp = d - drift
        dn = -d - drift
        base = np.ones(n_rows, dtype=np.int64)
        wcur = np.full(n_rows, 64, dtype=np.int64)  # _cusum_pass's start
        active = np.ones(n_rows, dtype=bool)
        while active.any():
            for wval in np.unique(wcur[active]).tolist():
                rows = np.flatnonzero(active & (wcur == wval))
                avail = n - base[rows]
                w = np.minimum(wval, avail)
                width = int(w.max())
                col = base[rows][:, None] - 1 + np.arange(width)[None, :]
                np.clip(col, 0, n - 2, out=col)  # clipped tails are masked
                sp = np.cumsum(np.take_along_axis(dp[rows], col, axis=1), axis=1)
                sn = np.cumsum(np.take_along_axis(dn[rows], col, axis=1), axis=1)
                mp = np.minimum.accumulate(np.minimum(sp, 0.0), axis=1)
                mn = np.minimum.accumulate(np.minimum(sn, 0.0), axis=1)
                gpseg = sp - mp
                gnseg = sn - mn
                valid = np.arange(width)[None, :] < w[:, None]
                over = ((gpseg > threshold) | (gnseg > threshold)) & valid
                has_hit = over.any(axis=1)
                hits = np.argmax(over, axis=1)
                hit_rows = np.flatnonzero(has_hit).tolist()
                if hit_rows:
                    # clamp points (strict new prefix minima below zero)
                    # for the whole round at once: last_p[k, j] is the
                    # last clamp of sp at or before j, -1 when none —
                    # the same answer the per-row kernel extracts with
                    # flatnonzero over each alarm's prefix
                    idx = np.arange(width)[None, :]
                    prev_mp = np.concatenate(
                        (np.zeros((len(rows), 1)), mp[:, :-1]), axis=1
                    )
                    prev_mn = np.concatenate(
                        (np.zeros((len(rows), 1)), mn[:, :-1]), axis=1
                    )
                    last_p = np.maximum.accumulate(
                        np.where(sp < prev_mp, idx, -1), axis=1
                    )
                    last_n = np.maximum.accumulate(
                        np.where(sn < prev_mn, idx, -1), axis=1
                    )
                for k in hit_rows:
                    r = int(rows[k])
                    hit = int(hits[k])
                    b = int(base[r])
                    alarm = b + hit
                    gp[r, b : alarm + 1] = gpseg[k, : hit + 1]
                    gn[r, b : alarm + 1] = gnseg[k, : hit + 1]
                    up = bool(gpseg[k, hit] > threshold)
                    clamp = int(last_p[k, hit] if up else last_n[k, hit])
                    onset = b + clamp if clamp >= 0 else b - 1
                    alarms[r].append(alarm)
                    starts[r].append(onset)
                    directions[r].append(1 if up else -1)
                    gp[r, alarm] = 0.0
                    gn[r, alarm] = 0.0
                    base[r] = alarm + 1
                    wcur[r] = 64
                    if alarm + 1 >= n:
                        active[r] = False
                for k in np.flatnonzero(~has_hit).tolist():
                    r = int(rows[k])
                    if int(w[k]) == int(avail[k]):
                        b = int(base[r])
                        gp[r, b:] = gpseg[k, : int(avail[k])]
                        gn[r, b:] = gnseg[k, : int(avail[k])]
                        active[r] = False
                    else:
                        wcur[r] = wval * 4
    return [
        (alarms[i], starts[i], directions[i], gp[i], gn[i])
        for i in range(n_rows)
    ]


def _forward_fill(x: np.ndarray) -> np.ndarray:
    """Forward-fill NaNs in place (leading NaNs take the first finite value)."""
    good = np.isfinite(x)
    first = int(np.argmax(good))
    x[:first] = x[first]
    idx = np.where(np.isfinite(x), np.arange(x.size), 0)
    np.maximum.accumulate(idx, out=idx)
    return x[idx]


def _paired_endings(
    alarms: list[int], starts: list[int], rev_starts: list[int], n: int
) -> list[int]:
    """First backward-estimated ending at or after each onset.

    ``rev_ends`` is sorted once and each onset looks up its ending with a
    single ``searchsorted`` — one sorted sweep instead of the O(alarms^2)
    rescan of the candidate list per alarm.  Pairing results are exactly
    the old ones: the first ``rev_end >= onset``, falling back to the
    alarm sample itself.
    """
    ends = list(alarms)
    if not rev_starts:
        return ends
    rev_ends = np.sort(n - 1 - np.asarray(rev_starts, dtype=int))
    idx = np.searchsorted(rev_ends, np.asarray(starts, dtype=int), side="left")
    for k, (alarm, j) in enumerate(zip(alarms, idx)):
        ends[k] = int(rev_ends[j]) if j < rev_ends.size else alarm
    return ends


def _finish(
    x: np.ndarray,
    threshold: float,
    drift: float,
    estimate_ending: bool,
    cusum_pass: _CusumPass,
) -> CusumResult:
    """Forward/backward passes and alarm assembly for one filled series."""
    alarms, starts, directions, gp, gn = cusum_pass(x, threshold, drift)

    ends = list(alarms)
    if estimate_ending and alarms:
        _, rev_starts, _, _, _ = cusum_pass(x[::-1], threshold, drift)
        ends = _paired_endings(alarms, starts, rev_starts, x.size)

    out = tuple(
        CusumAlarm(
            alarm=int(a),
            start=int(s),
            end=int(e),
            direction=int(d),
            amplitude=float(x[min(int(e), x.size - 1)] - x[int(s)]),
        )
        for a, s, e, d in zip(alarms, starts, ends, directions)
    )
    return CusumResult(out, gp, gn)


def _detect(
    values: np.ndarray,
    threshold: float,
    drift: float,
    estimate_ending: bool,
    cusum_pass: _CusumPass,
) -> CusumResult:
    x = np.asarray(values, dtype=np.float64).copy()
    if x.ndim != 1:
        raise ValueError("values must be one-dimensional")
    good = np.isfinite(x)
    if not good.any():
        return CusumResult((), np.zeros(x.size), np.zeros(x.size))
    if not good.all():
        x = _forward_fill(x)
    return _finish(x, threshold, drift, estimate_ending, cusum_pass)


def detect_cusum(
    values: np.ndarray,
    threshold: float = 1.0,
    drift: float = 0.001,
    *,
    estimate_ending: bool = True,
) -> CusumResult:
    """Detect changes in ``values`` with the two-sided CUSUM algorithm.

    Parameters
    ----------
    values:
        The series to scan (the pipeline passes the z-scored STL trend).
        NaNs are forward-filled; an all-NaN series yields no alarms.
    threshold:
        Alarm when either cumulative sum exceeds this value.
    drift:
        Per-sample drift subtracted from both sums; suppresses slow trends.
    estimate_ending:
        Run a backward pass to estimate where each change ends (detecta's
        ``ending=True``).  Without it, ``end`` equals the alarm index.
    """
    return _detect(values, threshold, drift, estimate_ending, _cusum_pass)


def detect_cusum_reference(
    values: np.ndarray,
    threshold: float = 1.0,
    drift: float = 0.001,
    *,
    estimate_ending: bool = True,
) -> CusumResult:
    """The scalar-recursion oracle for :func:`detect_cusum` (tests only)."""
    return _detect(values, threshold, drift, estimate_ending, _cusum_pass_reference)


def detect_cusum_batch(
    values: np.ndarray,
    threshold: float = 1.0,
    drift: float = 0.001,
    *,
    estimate_ending: bool = True,
) -> list[CusumResult]:
    """Row-wise :func:`detect_cusum` over a ``(B, n)`` matrix.

    NaN forward-filling is vectorized across all rows at once, then the
    forward pass runs row-parallel through :func:`_cusum_pass_batch`
    (every row's segments advance together as 2-D reductions) and one
    more batched pass over the reversed rows that alarmed estimates the
    endings.  Row ``i`` is identical to ``detect_cusum(values[i], ...)``
    bit for bit — the batch kernel performs the same float operations in
    the same order, just across rows at once.
    """
    x = np.asarray(values, dtype=np.float64).copy()
    if x.ndim != 2:
        raise ValueError("values must be a (B, n) matrix")
    n_rows, n = x.shape
    good = np.isfinite(x)
    usable = good.any(axis=1)
    if n and not good.all():
        # leading NaNs take the row's first finite value, then forward-fill:
        # the same index/maximum.accumulate trick as _forward_fill, batched
        first = np.argmax(good, axis=1)
        lead = np.arange(n)[None, :] < first[:, None]
        x = np.where(lead, x[np.arange(n_rows), first][:, None], x)
        idx = np.where(np.isfinite(x), np.arange(n)[None, :], 0)
        np.maximum.accumulate(idx, axis=1, out=idx)
        x = np.take_along_axis(x, idx, axis=1)

    live = np.flatnonzero(usable)
    forward = _cusum_pass_batch(x[live], threshold, drift)
    # backward pass only for rows that alarmed (matching _finish, which
    # skips it for alarm-free rows), batched over the reversed rows
    need = [k for k, (alarms, _, _, _, _) in enumerate(forward) if alarms]
    rev_starts_for: dict[int, list[int]] = {}
    if estimate_ending and need:
        backward = _cusum_pass_batch(
            np.ascontiguousarray(x[live[need]][:, ::-1]), threshold, drift
        )
        rev_starts_for = {k: backward[j][1] for j, k in enumerate(need)}

    out: list[CusumResult] = []
    by_live = {int(i): k for k, i in enumerate(live)}
    for i in range(n_rows):
        k = by_live.get(i)
        if k is None:
            out.append(CusumResult((), np.zeros(n), np.zeros(n)))
            continue
        alarms, starts, directions, gp, gn = forward[k]
        ends = list(alarms)
        if estimate_ending and alarms:
            ends = _paired_endings(alarms, starts, rev_starts_for[k], n)
        row = x[i]
        out.append(
            CusumResult(
                tuple(
                    CusumAlarm(
                        alarm=int(a),
                        start=int(s),
                        end=int(e),
                        direction=int(d),
                        amplitude=float(row[min(int(e), n - 1)] - row[int(s)]),
                    )
                    for a, s, e, d in zip(alarms, starts, ends, directions)
                ),
                gp,
                gn,
            )
        )
    return out


def zscore_rows(
    values: np.ndarray,
    *,
    min_abs_scale: float = 0.0,
    min_rel_scale: float = 0.0,
) -> np.ndarray:
    """Row-wise z-normalization with a floored scale.

    Each row is normalized as ``(x - mean) / scale`` with
    ``scale = max(std, min_abs_scale, min_rel_scale * |mean|)`` over the
    row's finite samples — the same floor logic as
    :meth:`repro.core.trend.TrendResult.normalize`, which routes through
    this kernel with ``B == 1``.  Rows without any finite sample are
    returned unchanged.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("values must be a (B, n) matrix")
    good = np.isfinite(x)
    live = good.any(axis=1)
    if good.all():
        mean = x.mean(axis=1)
        std = x.std(axis=1)
    else:
        mean = np.zeros(x.shape[0])
        std = np.zeros(x.shape[0])
        for i in np.flatnonzero(live):
            row = x[i][good[i]]
            mean[i] = float(np.mean(row))
            std[i] = float(np.std(row))
    scale = np.maximum(std, np.maximum(min_abs_scale, min_rel_scale * np.abs(mean)))
    out = x.copy()
    rows = np.flatnonzero(live)
    out[rows] = (x[rows] - mean[rows, None]) / scale[rows, None]
    return out
