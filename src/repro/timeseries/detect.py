"""CUSUM change-point detection.

Implements the cumulative-sum change detector the paper applies to the
z-normalized STL trend (§2.6), with the parameters it fixes for every
block: ``threshold=1``, ``drift=0.001``.  The algorithm follows
Gustafsson (*Adaptive Filtering and Change Detection*, 2000) as popularised
by the ``detecta`` package [26]: two one-sided cumulative sums of the
first difference, reset on alarm, with change-onset tracking and an
optional backward pass to estimate change endings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CusumAlarm", "CusumResult", "detect_cusum"]


@dataclass(frozen=True)
class CusumAlarm:
    """One detected change.

    Indices refer to samples of the input series.  ``direction`` is +1 for
    an upward change (positive cumulative sum alarmed) and -1 for a
    downward change.
    """

    alarm: int
    start: int
    end: int
    direction: int
    amplitude: float


@dataclass(frozen=True)
class CusumResult:
    """All alarms plus the cumulative-sum traces (paper Figure 1c)."""

    alarms: tuple[CusumAlarm, ...]
    gp: np.ndarray  # positive (upward) cumulative sum
    gn: np.ndarray  # negative (downward) cumulative sum

    def __len__(self) -> int:
        return len(self.alarms)

    @property
    def downward(self) -> tuple[CusumAlarm, ...]:
        return tuple(a for a in self.alarms if a.direction < 0)

    @property
    def upward(self) -> tuple[CusumAlarm, ...]:
        return tuple(a for a in self.alarms if a.direction > 0)


def _cusum_pass(x: np.ndarray, threshold: float, drift: float):
    """Forward CUSUM pass; returns (alarm_idx, start_idx, direction) lists."""
    n = x.size
    gp = np.zeros(n)
    gn = np.zeros(n)
    alarms: list[int] = []
    starts: list[int] = []
    directions: list[int] = []
    tap = 0
    tan = 0
    for i in range(1, n):
        s = x[i] - x[i - 1]
        gp[i] = gp[i - 1] + s - drift
        gn[i] = gn[i - 1] - s - drift
        if gp[i] < 0:
            gp[i] = 0.0
            tap = i
        if gn[i] < 0:
            gn[i] = 0.0
            tan = i
        if gp[i] > threshold or gn[i] > threshold:
            up = gp[i] > threshold
            alarms.append(i)
            starts.append(tap if up else tan)
            directions.append(1 if up else -1)
            gp[i] = 0.0
            gn[i] = 0.0
            tap = i
            tan = i
    return alarms, starts, directions, gp, gn


def detect_cusum(
    values: np.ndarray,
    threshold: float = 1.0,
    drift: float = 0.001,
    *,
    estimate_ending: bool = True,
) -> CusumResult:
    """Detect changes in ``values`` with the two-sided CUSUM algorithm.

    Parameters
    ----------
    values:
        The series to scan (the pipeline passes the z-scored STL trend).
        NaNs are forward-filled; an all-NaN series yields no alarms.
    threshold:
        Alarm when either cumulative sum exceeds this value.
    drift:
        Per-sample drift subtracted from both sums; suppresses slow trends.
    estimate_ending:
        Run a backward pass to estimate where each change ends (detecta's
        ``ending=True``).  Without it, ``end`` equals the alarm index.
    """
    x = np.asarray(values, dtype=np.float64).copy()
    if x.ndim != 1:
        raise ValueError("values must be one-dimensional")
    good = np.isfinite(x)
    if not good.any():
        return CusumResult((), np.zeros(x.size), np.zeros(x.size))
    # forward-fill NaNs (leading NaNs take the first finite value)
    if not good.all():
        first = int(np.argmax(good))
        x[:first] = x[first]
        for i in range(first + 1, x.size):
            if not np.isfinite(x[i]):
                x[i] = x[i - 1]

    alarms, starts, directions, gp, gn = _cusum_pass(x, threshold, drift)

    ends = list(alarms)
    if estimate_ending and alarms:
        rev_alarms, rev_starts, _, _, _ = _cusum_pass(x[::-1], threshold, drift)
        rev_ends = sorted(x.size - 1 - np.asarray(rev_starts, dtype=int)) if rev_starts else []
        # pair each forward alarm with the first backward-estimated ending
        # at or after its onset; fall back to the alarm sample itself
        for k, (onset, alarm) in enumerate(zip(starts, alarms)):
            candidates = [e for e in rev_ends if e >= onset]
            ends[k] = int(candidates[0]) if candidates else alarm

    out = tuple(
        CusumAlarm(
            alarm=int(a),
            start=int(s),
            end=int(e),
            direction=int(d),
            amplitude=float(x[min(int(e), x.size - 1)] - x[int(s)]),
        )
        for a, s, e, d in zip(alarms, starts, ends, directions)
    )
    return CusumResult(out, gp, gn)
