"""Seasonal-Trend decomposition using LOESS (STL).

Implements the procedure of Cleveland, Cleveland, McRae & Terpenning
(*STL: A seasonal-trend decomposition procedure based on Loess*, Journal of
Official Statistics, 1990), which the paper adopts for trend extraction
(paper §2.5, [19]).  The input must be a regularly sampled series; NaNs
should be interpolated first (see :meth:`TimeSeries.interpolate_nan`).

The decomposition satisfies ``y = trend + seasonal + residual`` exactly.

Both entry points run the same batched core over a ``(B, n)`` matrix —
:func:`stl_decompose` with ``B == 1`` and :func:`stl_decompose_batch` for a
whole campaign batch — so per-block and batched decompositions are
bit-identical by construction (every step is a per-row operation: strided
subseries sums, batched LOESS, moving averages, row medians).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loess import loess_smooth_batch

__all__ = ["STLResult", "stl_decompose", "stl_decompose_batch"]


@dataclass(frozen=True)
class STLResult:
    """Components of an STL decomposition (all same length as the input)."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    robustness_weights: np.ndarray

    @property
    def observed(self) -> np.ndarray:
        return self.trend + self.seasonal + self.residual


def _next_odd(value: float) -> int:
    v = int(np.ceil(value))
    return v if v % 2 == 1 else v + 1


def _moving_average_reference(x: np.ndarray, window: int) -> np.ndarray:
    """Convolution moving average; the oracle for the cumsum fast path."""
    kernel = np.full(window, 1.0 / window)
    return np.convolve(x, kernel, mode="valid")


def _moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Simple moving average over the last axis; output shorter by ``window - 1``.

    Cumsum-based: O(n) with no kernel allocation, batched over any leading
    axes.  ``tests/test_kernels.py`` checks it against the convolve oracle
    (:func:`_moving_average_reference`); the two differ only by prefix-sum
    cancellation error, ~1e-12 relative for count-scale inputs.
    """
    c = np.cumsum(x, axis=-1, dtype=np.float64)
    out = c[..., window - 1 :].copy()
    out[..., 1:] -= c[..., :-window]
    out /= window
    return out


def _low_pass(x: np.ndarray, period: int, n_l: int) -> np.ndarray:
    """STL low-pass filter: MA(p), MA(p), MA(3), then LOESS(n_l, degree 1).

    ``x`` is the extended subseries matrix ``(B, n + 2 * period)``; the
    result is ``(B, n)``.
    """
    smoothed = _moving_average(_moving_average(_moving_average(x, period), period), 3)
    grid = np.arange(smoothed.shape[-1], dtype=np.float64)
    return loess_smooth_batch(grid, smoothed, n_l, degree=1)


def _smooth_cycle_subseries(
    detrended: np.ndarray,
    period: int,
    seasonal_smoother: int | None,
    robustness_weights: np.ndarray | None,
) -> np.ndarray:
    """Smooth each cycle subseries, extending one period at both ends.

    Operates row-wise on a ``(B, n)`` matrix and returns ``(B, n + 2 * period)``
    (positions -period..n+period).  With ``seasonal_smoother=None`` the
    subseries are replaced by their (robustness-weighted) means, i.e. a
    strictly periodic seasonal.
    """
    n_rows, n = detrended.shape
    extended = np.empty((n_rows, n + 2 * period), dtype=np.float64)
    for phase in range(period):
        sub = detrended[:, phase::period]
        rw = (
            None
            if robustness_weights is None
            else robustness_weights[:, phase::period]
        )
        m = sub.shape[1]
        positions = np.arange(m, dtype=np.float64)
        # evaluate at -1 .. m so the low-pass filter has full support
        xout = np.arange(-1, m + 1, dtype=np.float64)
        if seasonal_smoother is None:
            if rw is None:
                rw = np.ones_like(sub)
            wsum = rw.sum(axis=1)
            weighted = (rw * sub).sum(axis=1) / np.where(wsum > 0, wsum, 1.0)
            mean = np.where(wsum > 0, weighted, sub.mean(axis=1))
            smoothed = np.broadcast_to(mean[:, None], (n_rows, m + 2))
        else:
            smoothed = loess_smooth_batch(
                positions, sub, seasonal_smoother, degree=1, xout=xout, robustness_weights=rw
            )
        slot = extended[:, phase::period]
        if smoothed.shape != slot.shape:
            raise AssertionError("cycle subseries smoothing returned unexpected length")
        slot[...] = smoothed
    return extended


def _bisquare(u: np.ndarray) -> np.ndarray:
    a = np.clip(np.abs(u), 0.0, 1.0)
    return (1.0 - a**2) ** 2


def stl_decompose(
    values: np.ndarray,
    period: int,
    *,
    seasonal_smoother: int | None = 7,
    trend_smoother: int | None = None,
    low_pass_smoother: int | None = None,
    inner_iterations: int = 2,
    outer_iterations: int = 1,
) -> STLResult:
    """Decompose ``values`` into trend + seasonal + residual via STL.

    Parameters
    ----------
    values:
        Regularly sampled, finite series; at least two full periods.
    period:
        Samples per seasonal cycle (24 for daily seasonality on hourly data).
    seasonal_smoother:
        LOESS neighbourhood (odd, >= 3) for cycle-subseries smoothing, or
        ``None`` for a strictly periodic seasonal component.
    trend_smoother:
        LOESS neighbourhood for the trend pass; defaults to the smallest
        odd integer >= ``1.5 * period / (1 - 1.5 / seasonal_smoother)``.
    low_pass_smoother:
        LOESS neighbourhood for the low-pass filter; defaults to the
        smallest odd integer >= ``period``.
    inner_iterations, outer_iterations:
        Loop counts; ``outer_iterations > 0`` enables the robustness
        weighting that makes STL resistant to outliers (the property the
        paper cites for preferring STL over the naive model).
    """
    y = np.asarray(values, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("values must be one-dimensional")
    trend_smoother, low_pass_smoother = _validate(
        y, period, seasonal_smoother, trend_smoother, low_pass_smoother
    )
    trend, seasonal, residual, rho = _stl_core(
        y[None, :],
        period,
        seasonal_smoother,
        trend_smoother,
        low_pass_smoother,
        inner_iterations,
        outer_iterations,
    )
    return STLResult(
        trend=trend[0], seasonal=seasonal[0], residual=residual[0],
        robustness_weights=rho[0],
    )


def stl_decompose_batch(
    values: np.ndarray,
    period: int,
    *,
    seasonal_smoother: int | None = 7,
    trend_smoother: int | None = None,
    low_pass_smoother: int | None = None,
    inner_iterations: int = 2,
    outer_iterations: int = 1,
) -> STLResult:
    """Decompose every row of a ``(B, n)`` matrix via STL in one pass.

    Returns an :class:`STLResult` whose components are ``(B, n)`` matrices.
    Row ``i`` is bit-identical to ``stl_decompose(values[i], ...)`` because
    both run the same batched core (see ``docs/algorithms.md`` §12); the
    batched form amortises the hundreds of small LOESS/moving-average calls
    per block into one sliding-window pass per stage.
    """
    y = np.asarray(values, dtype=np.float64)
    if y.ndim != 2:
        raise ValueError("values must be a (B, n) matrix")
    if y.shape[0] == 0:
        empty = np.empty_like(y)
        return STLResult(
            trend=empty, seasonal=empty.copy(), residual=empty.copy(),
            robustness_weights=np.ones_like(y),
        )
    trend_smoother, low_pass_smoother = _validate(
        y, period, seasonal_smoother, trend_smoother, low_pass_smoother
    )
    trend, seasonal, residual, rho = _stl_core(
        y,
        period,
        seasonal_smoother,
        trend_smoother,
        low_pass_smoother,
        inner_iterations,
        outer_iterations,
    )
    return STLResult(
        trend=trend, seasonal=seasonal, residual=residual, robustness_weights=rho
    )


def _validate(
    y: np.ndarray,
    period: int,
    seasonal_smoother: int | None,
    trend_smoother: int | None,
    low_pass_smoother: int | None,
) -> tuple[int, int]:
    """Shared input checks; resolves the default smoother spans."""
    if not np.all(np.isfinite(y)):
        raise ValueError("values must be finite; interpolate NaNs first")
    if period < 2:
        raise ValueError("period must be at least 2")
    n = y.shape[-1]
    if n < 2 * period:
        raise ValueError(f"need at least two periods of data ({2 * period}), got {n}")
    if seasonal_smoother is not None and seasonal_smoother < 3:
        raise ValueError("seasonal_smoother must be None or >= 3")
    if trend_smoother is None:
        ns_eff = seasonal_smoother if seasonal_smoother is not None else 10 * n + 1
        trend_smoother = _next_odd(1.5 * period / (1.0 - 1.5 / ns_eff))
    if low_pass_smoother is None:
        low_pass_smoother = _next_odd(period)
    return trend_smoother, low_pass_smoother


def _stl_core(
    y: np.ndarray,
    period: int,
    seasonal_smoother: int | None,
    trend_smoother: int,
    low_pass_smoother: int,
    inner_iterations: int,
    outer_iterations: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The STL inner/outer loops over a ``(B, n)`` matrix.

    Every step is a per-row operation (strided subseries reductions,
    batched LOESS, moving averages, row medians), so the result of any row
    is independent of the batch size.
    """
    n_rows, n = y.shape
    grid = np.arange(n, dtype=np.float64)
    trend = np.zeros((n_rows, n))
    seasonal = np.zeros((n_rows, n))
    rho = np.ones((n_rows, n))
    # None = "still all ones": the LOESS fast path then skips the per-row
    # weight algebra entirely (bit-identical — see _loess_uniform)
    rho_arg: np.ndarray | None = None

    for outer in range(max(outer_iterations, 0) + 1):
        for _ in range(max(inner_iterations, 1)):
            detrended = y - trend
            extended = _smooth_cycle_subseries(
                detrended, period, seasonal_smoother, rho_arg
            )
            low = _low_pass(extended, period, low_pass_smoother)
            seasonal = extended[:, period : period + n] - low
            deseasonalized = y - seasonal
            trend = loess_smooth_batch(
                grid,
                deseasonalized,
                trend_smoother,
                degree=1,
                robustness_weights=rho_arg,
            )
        if outer == max(outer_iterations, 0):
            break
        residual = y - trend - seasonal
        scale = 6.0 * np.median(np.abs(residual), axis=1)
        safe = np.where(scale > 0, scale, 1.0)
        # keep weights strictly positive so neighbourhoods never vanish
        weights = np.maximum(_bisquare(residual / safe[:, None]), 1e-6)
        rho = np.where((scale > 0)[:, None], weights, 1.0)
        rho_arg = rho

    residual = y - trend - seasonal
    return trend, seasonal, residual, rho
