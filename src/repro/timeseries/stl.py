"""Seasonal-Trend decomposition using LOESS (STL).

Implements the procedure of Cleveland, Cleveland, McRae & Terpenning
(*STL: A seasonal-trend decomposition procedure based on Loess*, Journal of
Official Statistics, 1990), which the paper adopts for trend extraction
(paper §2.5, [19]).  The input must be a regularly sampled series; NaNs
should be interpolated first (see :meth:`TimeSeries.interpolate_nan`).

The decomposition satisfies ``y = trend + seasonal + residual`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .loess import loess_smooth

__all__ = ["STLResult", "stl_decompose"]


@dataclass(frozen=True)
class STLResult:
    """Components of an STL decomposition (all same length as the input)."""

    trend: np.ndarray
    seasonal: np.ndarray
    residual: np.ndarray
    robustness_weights: np.ndarray

    @property
    def observed(self) -> np.ndarray:
        return self.trend + self.seasonal + self.residual


def _next_odd(value: float) -> int:
    v = int(np.ceil(value))
    return v if v % 2 == 1 else v + 1


def _moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Simple moving average; output is shorter by ``window - 1``."""
    kernel = np.full(window, 1.0 / window)
    return np.convolve(x, kernel, mode="valid")


def _low_pass(x: np.ndarray, period: int, n_l: int) -> np.ndarray:
    """STL low-pass filter: MA(p), MA(p), MA(3), then LOESS(n_l, degree 1)."""
    smoothed = _moving_average(_moving_average(_moving_average(x, period), period), 3)
    grid = np.arange(smoothed.size, dtype=np.float64)
    return loess_smooth(grid, smoothed, n_l, degree=1)


def _smooth_cycle_subseries(
    detrended: np.ndarray,
    period: int,
    seasonal_smoother: int | None,
    robustness_weights: np.ndarray,
) -> np.ndarray:
    """Smooth each cycle subseries, extending one period at both ends.

    Returns an array of length ``n + 2 * period`` (positions -period..n+period).
    With ``seasonal_smoother=None`` the subseries are replaced by their
    (robustness-weighted) means, i.e. a strictly periodic seasonal.
    """
    n = detrended.size
    extended = np.empty(n + 2 * period, dtype=np.float64)
    for phase in range(period):
        idx = np.arange(phase, n, period)
        sub = detrended[idx]
        rw = robustness_weights[idx]
        positions = np.arange(sub.size, dtype=np.float64)
        # evaluate at -1 .. m so the low-pass filter has full support
        xout = np.arange(-1, sub.size + 1, dtype=np.float64)
        if seasonal_smoother is None:
            wsum = rw.sum()
            mean = float(np.dot(rw, sub) / wsum) if wsum > 0 else float(sub.mean())
            smoothed = np.full(xout.size, mean)
        else:
            smoothed = loess_smooth(
                positions, sub, seasonal_smoother, degree=1, xout=xout, robustness_weights=rw
            )
        extended[phase::period] = _place(smoothed, xout.size)
    return extended


def _place(smoothed: np.ndarray, expect: int) -> np.ndarray:
    if smoothed.size != expect:
        raise AssertionError("cycle subseries smoothing returned unexpected length")
    return smoothed


def _bisquare(u: np.ndarray) -> np.ndarray:
    a = np.clip(np.abs(u), 0.0, 1.0)
    return (1.0 - a**2) ** 2


def stl_decompose(
    values: np.ndarray,
    period: int,
    *,
    seasonal_smoother: int | None = 7,
    trend_smoother: int | None = None,
    low_pass_smoother: int | None = None,
    inner_iterations: int = 2,
    outer_iterations: int = 1,
) -> STLResult:
    """Decompose ``values`` into trend + seasonal + residual via STL.

    Parameters
    ----------
    values:
        Regularly sampled, finite series; at least two full periods.
    period:
        Samples per seasonal cycle (24 for daily seasonality on hourly data).
    seasonal_smoother:
        LOESS neighbourhood (odd, >= 3) for cycle-subseries smoothing, or
        ``None`` for a strictly periodic seasonal component.
    trend_smoother:
        LOESS neighbourhood for the trend pass; defaults to the smallest
        odd integer >= ``1.5 * period / (1 - 1.5 / seasonal_smoother)``.
    low_pass_smoother:
        LOESS neighbourhood for the low-pass filter; defaults to the
        smallest odd integer >= ``period``.
    inner_iterations, outer_iterations:
        Loop counts; ``outer_iterations > 0`` enables the robustness
        weighting that makes STL resistant to outliers (the property the
        paper cites for preferring STL over the naive model).
    """
    y = np.asarray(values, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if not np.all(np.isfinite(y)):
        raise ValueError("values must be finite; interpolate NaNs first")
    if period < 2:
        raise ValueError("period must be at least 2")
    n = y.size
    if n < 2 * period:
        raise ValueError(f"need at least two periods of data ({2 * period}), got {n}")
    if seasonal_smoother is not None and seasonal_smoother < 3:
        raise ValueError("seasonal_smoother must be None or >= 3")

    if trend_smoother is None:
        ns_eff = seasonal_smoother if seasonal_smoother is not None else 10 * n + 1
        trend_smoother = _next_odd(1.5 * period / (1.0 - 1.5 / ns_eff))
    if low_pass_smoother is None:
        low_pass_smoother = _next_odd(period)

    grid = np.arange(n, dtype=np.float64)
    trend = np.zeros(n)
    seasonal = np.zeros(n)
    rho = np.ones(n)

    for outer in range(max(outer_iterations, 0) + 1):
        for _ in range(max(inner_iterations, 1)):
            detrended = y - trend
            extended = _smooth_cycle_subseries(detrended, period, seasonal_smoother, rho)
            low = _low_pass(extended, period, low_pass_smoother)
            seasonal = extended[period : period + n] - low
            deseasonalized = y - seasonal
            trend = loess_smooth(
                grid, deseasonalized, trend_smoother, degree=1, robustness_weights=rho
            )
        if outer == max(outer_iterations, 0):
            break
        residual = y - trend - seasonal
        scale = 6.0 * float(np.median(np.abs(residual)))
        if scale <= 0:
            rho = np.ones(n)
        else:
            rho = _bisquare(residual / scale)
            # keep weights strictly positive so neighbourhoods never vanish
            rho = np.maximum(rho, 1e-6)

    residual = y - trend - seasonal
    return STLResult(trend=trend, seasonal=seasonal, residual=residual, robustness_weights=rho)
