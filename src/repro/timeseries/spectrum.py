"""Periodogram helpers for diurnality detection.

The paper identifies diurnal blocks "by taking the FFT of the active
addresses over time and looking for energy in frequencies corresponding to
24 hours, or harmonics of that frequency" (§2.4, following [72]).  These
helpers compute the power spectrum of a regularly sampled series and the
fraction of (non-DC) power that falls in the diurnal bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .series import SECONDS_PER_DAY

__all__ = ["Periodogram", "periodogram", "diurnal_energy_ratio"]


@dataclass(frozen=True)
class Periodogram:
    """One-sided power spectrum of a detrended series."""

    frequencies: np.ndarray  # cycles per second
    power: np.ndarray

    @property
    def total_power(self) -> float:
        """Total power, excluding the DC bin."""
        return float(self.power[1:].sum())

    def power_near(self, frequency: float, tolerance_bins: int = 1) -> float:
        """Power within ``tolerance_bins`` bins of ``frequency`` (excl. DC)."""
        if self.frequencies.size < 2:
            return 0.0
        df = self.frequencies[1] - self.frequencies[0]
        center = int(round(frequency / df))
        lo = max(center - tolerance_bins, 1)
        hi = min(center + tolerance_bins + 1, self.power.size)
        if lo >= hi:
            return 0.0
        return float(self.power[lo:hi].sum())


def periodogram(values: np.ndarray, sample_seconds: float) -> Periodogram:
    """One-sided FFT power spectrum of a series after mean removal.

    NaNs are replaced by the series mean (contributing no power), which
    keeps blocks with short unreconstructed prefixes usable.
    """
    y = np.asarray(values, dtype=np.float64)
    good = np.isfinite(y)
    if not good.any():
        return Periodogram(np.array([0.0]), np.array([0.0]))
    mean = float(y[good].mean())
    y = np.where(good, y, mean) - mean
    spectrum = np.fft.rfft(y)
    power = np.abs(spectrum) ** 2 / max(y.size, 1)
    freqs = np.fft.rfftfreq(y.size, d=sample_seconds)
    return Periodogram(freqs, power)


def diurnal_energy_ratio(
    values: np.ndarray,
    sample_seconds: float,
    *,
    harmonics: int = 4,
    tolerance_bins: int = 1,
) -> float:
    """Fraction of non-DC spectral power at 24 h and its harmonics.

    A ratio near 1 means nearly all variation is diurnal; always-on and
    random blocks score near 0.  Returns 0.0 for series with no power.
    """
    pg = periodogram(values, sample_seconds)
    total = pg.total_power
    if total <= 0:
        return 0.0
    base = 1.0 / SECONDS_PER_DAY
    diurnal = sum(
        pg.power_near(base * k, tolerance_bins=tolerance_bins) for k in range(1, harmonics + 1)
    )
    return min(diurnal / total, 1.0)
