"""Periodogram helpers for diurnality detection.

The paper identifies diurnal blocks "by taking the FFT of the active
addresses over time and looking for energy in frequencies corresponding to
24 hours, or harmonics of that frequency" (§2.4, following [72]).  These
helpers compute the power spectrum of a regularly sampled series and the
fraction of (non-DC) power that falls in the diurnal bins.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .series import SECONDS_PER_DAY

__all__ = [
    "Periodogram",
    "diurnal_energy_ratio",
    "diurnal_energy_ratio_batch",
    "periodogram",
    "periodogram_batch",
]


@dataclass(frozen=True)
class Periodogram:
    """One-sided power spectrum of a detrended series."""

    frequencies: np.ndarray  # cycles per second
    power: np.ndarray

    @property
    def total_power(self) -> float:
        """Total power, excluding the DC bin."""
        return float(self.power[1:].sum())

    def power_near(self, frequency: float, tolerance_bins: int = 1) -> float:
        """Power within ``tolerance_bins`` bins of ``frequency`` (excl. DC)."""
        if self.frequencies.size < 2:
            return 0.0
        df = self.frequencies[1] - self.frequencies[0]
        center = int(round(frequency / df))
        lo = max(center - tolerance_bins, 1)
        hi = min(center + tolerance_bins + 1, self.power.size)
        if lo >= hi:
            return 0.0
        return float(self.power[lo:hi].sum())


def periodogram(values: np.ndarray, sample_seconds: float) -> Periodogram:
    """One-sided FFT power spectrum of a series after mean removal.

    NaNs are replaced by the series mean (contributing no power), which
    keeps blocks with short unreconstructed prefixes usable.
    """
    y = np.asarray(values, dtype=np.float64)
    good = np.isfinite(y)
    if not good.any():
        return Periodogram(np.array([0.0]), np.array([0.0]))
    mean = float(y[good].mean())
    y = np.where(good, y, mean) - mean
    spectrum = np.fft.rfft(y)
    power = np.abs(spectrum) ** 2 / max(y.size, 1)
    freqs = np.fft.rfftfreq(y.size, d=sample_seconds)
    return Periodogram(freqs, power)


def diurnal_energy_ratio(
    values: np.ndarray,
    sample_seconds: float,
    *,
    harmonics: int = 4,
    tolerance_bins: int = 1,
) -> float:
    """Fraction of non-DC spectral power at 24 h and its harmonics.

    A ratio near 1 means nearly all variation is diurnal; always-on and
    random blocks score near 0.  Returns 0.0 for series with no power.
    """
    pg = periodogram(values, sample_seconds)
    total = pg.total_power
    if total <= 0:
        return 0.0
    base = 1.0 / SECONDS_PER_DAY
    diurnal = sum(
        pg.power_near(base * k, tolerance_bins=tolerance_bins) for k in range(1, harmonics + 1)
    )
    return min(diurnal / total, 1.0)


def periodogram_batch(values: np.ndarray, sample_seconds: float) -> list[Periodogram]:
    """One :func:`periodogram` per row of a ``(B, n)`` matrix.

    All rows with any finite sample share a single 2-D ``rfft`` call; mean
    removal stays per-row.  numpy transforms each row of a 2-D real FFT
    independently with the same kernel as the 1-D call, so row ``i`` is
    bit-identical to ``periodogram(values[i], sample_seconds)``.
    """
    y = np.asarray(values, dtype=np.float64)
    if y.ndim != 2:
        raise ValueError("values must be a (B, n) matrix")
    n_rows, n = y.shape
    good = np.isfinite(y)
    out: list[Periodogram | None] = [None] * n_rows
    live = np.flatnonzero(good.any(axis=1))
    if live.size:
        means = np.array([float(y[i][good[i]].mean()) for i in live])
        centered = np.where(good[live], y[live], means[:, None]) - means[:, None]
        power = np.abs(np.fft.rfft(centered, axis=1)) ** 2 / max(n, 1)
        freqs = np.fft.rfftfreq(n, d=sample_seconds)
        for k, i in enumerate(live):
            out[i] = Periodogram(freqs, power[k])
    return [
        pg if pg is not None else Periodogram(np.array([0.0]), np.array([0.0]))
        for pg in out
    ]


def diurnal_energy_ratio_batch(
    values: np.ndarray,
    sample_seconds: float,
    *,
    harmonics: int = 4,
    tolerance_bins: int = 1,
) -> np.ndarray:
    """Row-wise :func:`diurnal_energy_ratio` over a ``(B, n)`` matrix."""
    ratios = np.zeros(values.shape[0], dtype=np.float64)
    base = 1.0 / SECONDS_PER_DAY
    for i, pg in enumerate(periodogram_batch(values, sample_seconds)):
        total = pg.total_power
        if total <= 0:
            continue
        diurnal = sum(
            pg.power_near(base * k, tolerance_bins=tolerance_bins)
            for k in range(1, harmonics + 1)
        )
        ratios[i] = min(diurnal / total, 1.0)
    return ratios
