"""Time-series substrate: containers, LOESS/STL, spectra, CUSUM.

Everything here is independent of the networking layers; it is the
from-scratch replacement for the statsmodels/detecta functionality the
paper relied on (offline environment: neither package is available).
"""

from .detect import CusumAlarm, CusumResult, detect_cusum
from .loess import loess_smooth, tricube
from .naive import naive_decompose
from .series import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    TimeSeries,
    day_index,
    second_of_day,
    utc_datetime,
)
from .spectrum import Periodogram, diurnal_energy_ratio, periodogram
from .stl import STLResult, stl_decompose

__all__ = [
    "CusumAlarm",
    "CusumResult",
    "detect_cusum",
    "loess_smooth",
    "tricube",
    "naive_decompose",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "TimeSeries",
    "day_index",
    "second_of_day",
    "utc_datetime",
    "Periodogram",
    "diurnal_energy_ratio",
    "periodogram",
    "STLResult",
    "stl_decompose",
]
