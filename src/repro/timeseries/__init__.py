"""Time-series substrate: containers, LOESS/STL, spectra, CUSUM.

Everything here is independent of the networking layers; it is the
from-scratch replacement for the statsmodels/detecta functionality the
paper relied on (offline environment: neither package is available).

Each kernel exists in two shapes: the scalar per-series form and a
``*_batch`` form over ``(B, n)`` matrices (see :class:`BlockMatrix`).
The scalar forms route through the batched cores with ``B == 1``, so
the pair is bit-identical by construction.
"""

from .detect import CusumAlarm, CusumResult, detect_cusum, detect_cusum_batch, zscore_rows
from .loess import loess_smooth, loess_smooth_batch, tricube
from .naive import naive_decompose
from .series import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    BlockMatrix,
    TimeSeries,
    day_index,
    group_block_matrices,
    second_of_day,
    utc_datetime,
)
from .spectrum import (
    Periodogram,
    diurnal_energy_ratio,
    diurnal_energy_ratio_batch,
    periodogram,
    periodogram_batch,
)
from .stl import STLResult, stl_decompose, stl_decompose_batch

__all__ = [
    "CusumAlarm",
    "CusumResult",
    "detect_cusum",
    "detect_cusum_batch",
    "zscore_rows",
    "loess_smooth",
    "loess_smooth_batch",
    "tricube",
    "naive_decompose",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "BlockMatrix",
    "TimeSeries",
    "day_index",
    "group_block_matrices",
    "second_of_day",
    "utc_datetime",
    "Periodogram",
    "diurnal_energy_ratio",
    "diurnal_energy_ratio_batch",
    "periodogram",
    "periodogram_batch",
    "STLResult",
    "stl_decompose",
    "stl_decompose_batch",
]
