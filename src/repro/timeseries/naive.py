"""Naive (classical) seasonal decomposition.

The paper (§2.5) compared the "naive" seasonality model [80] with STL and
chose STL for its robustness to outliers.  We implement the classical
moving-average decomposition so the comparison can be reproduced (see the
trend-extraction ablation experiment).

``y = trend + seasonal + residual`` with

* trend: centered moving average over one period (edges extended flat),
* seasonal: per-phase mean of the detrended series, de-meaned,
* residual: the rest.
"""

from __future__ import annotations

import numpy as np

from .stl import STLResult

__all__ = ["naive_decompose"]


def _centered_moving_average(y: np.ndarray, period: int) -> np.ndarray:
    """Centered MA over one period; even periods use the standard 2x(p) MA."""
    n = y.size
    if period % 2 == 1:
        kernel = np.full(period, 1.0 / period)
    else:
        # 2 x p moving average: half weight on the two edge samples
        kernel = np.full(period + 1, 1.0 / period)
        kernel[0] *= 0.5
        kernel[-1] *= 0.5
    valid = np.convolve(y, kernel, mode="valid")
    pad_front = (n - valid.size) // 2
    pad_back = n - valid.size - pad_front
    return np.concatenate(
        (np.full(pad_front, valid[0]), valid, np.full(pad_back, valid[-1]))
    )


def naive_decompose(values: np.ndarray, period: int) -> STLResult:
    """Classical additive decomposition (the paper's "naive" model)."""
    y = np.asarray(values, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError("values must be one-dimensional")
    if not np.all(np.isfinite(y)):
        raise ValueError("values must be finite; interpolate NaNs first")
    if period < 2:
        raise ValueError("period must be at least 2")
    if y.size < 2 * period:
        raise ValueError(f"need at least two periods of data ({2 * period}), got {y.size}")

    trend = _centered_moving_average(y, period)
    detrended = y - trend
    phases = np.arange(y.size) % period
    seasonal_means = np.array(
        [detrended[phases == k].mean() for k in range(period)], dtype=np.float64
    )
    seasonal_means -= seasonal_means.mean()
    seasonal = seasonal_means[phases]
    residual = y - trend - seasonal
    return STLResult(
        trend=trend,
        seasonal=seasonal,
        residual=residual,
        robustness_weights=np.ones_like(y),
    )
