"""Result export: sharing detections like the paper's website (§2.9).

The paper publishes detections through a pan-and-zoom map and
downloadable datasets.  This module writes the equivalent artifacts from
an analysis campaign:

* ``gridcell_csv`` — per-gridcell, per-day downward/upward fractions
  (the series behind Figures 8-10);
* ``gridcell_geojson`` — a GeoJSON FeatureCollection of gridcells with
  change-sensitive counts (the Figure 7 map);
* ``blocks_csv`` — per-block classification and change days.

All writers take an open text file or a path and stay dependency-free
(``json`` and manual CSV; no pandas offline).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Iterable

from .core.aggregate import BlockRecord, GridAggregator

__all__ = ["gridcell_csv", "gridcell_geojson", "blocks_csv"]


def _open(destination: str | Path | IO[str]):
    if hasattr(destination, "write"):
        return destination, False
    return open(destination, "w", newline=""), True


def gridcell_csv(
    aggregator: GridAggregator,
    destination: str | Path | IO[str],
    *,
    first_day: int,
    n_days: int,
) -> int:
    """Write per-cell daily fractions; returns the number of rows."""
    handle, should_close = _open(destination)
    try:
        writer = csv.writer(handle)
        writer.writerow(
            ["cell_lat", "cell_lon", "continent", "n_change_sensitive", "day", "down_fraction", "up_fraction"]
        )
        rows = 0
        for cell, stats in sorted(aggregator.cells.items()):
            if stats.n_change_sensitive == 0:
                continue
            down, up = aggregator.cell_daily_fractions(cell, first_day, n_days)
            for offset in range(n_days):
                if down[offset] == 0 and up[offset] == 0:
                    continue
                writer.writerow(
                    [
                        cell.lat,
                        cell.lon,
                        stats.continent,
                        stats.n_change_sensitive,
                        first_day + offset,
                        f"{down[offset]:.6f}",
                        f"{up[offset]:.6f}",
                    ]
                )
                rows += 1
        return rows
    finally:
        if should_close:
            handle.close()


def gridcell_geojson(
    aggregator: GridAggregator,
    destination: str | Path | IO[str],
    *,
    size_degrees: int = 2,
) -> int:
    """Write the Figure 7 map as GeoJSON; returns the feature count."""
    features = []
    for cell, stats in sorted(aggregator.cells.items()):
        if stats.n_change_sensitive == 0:
            continue
        lat, lon = cell.lat, cell.lon
        ring = [
            [lon, lat],
            [lon + size_degrees, lat],
            [lon + size_degrees, lat + size_degrees],
            [lon, lat + size_degrees],
            [lon, lat],
        ]
        features.append(
            {
                "type": "Feature",
                "geometry": {"type": "Polygon", "coordinates": [ring]},
                "properties": {
                    "continent": stats.continent,
                    "change_sensitive_blocks": stats.n_change_sensitive,
                    "responsive_blocks": stats.n_responsive,
                },
            }
        )
    payload = {"type": "FeatureCollection", "features": features}
    handle, should_close = _open(destination)
    try:
        json.dump(payload, handle, indent=1)
    finally:
        if should_close:
            handle.close()
    return len(features)


def blocks_csv(
    records: Iterable[BlockRecord],
    destination: str | Path | IO[str],
) -> int:
    """Write per-block rows (aggregated geolocation only, like the paper:
    no per-address data ever leaves the pipeline).  Returns row count."""
    handle, should_close = _open(destination)
    try:
        writer = csv.writer(handle)
        writer.writerow(
            ["lat", "lon", "country", "continent", "responsive", "change_sensitive", "downward_days", "upward_days"]
        )
        rows = 0
        for record in records:
            writer.writerow(
                [
                    f"{record.geo.lat:.3f}",
                    f"{record.geo.lon:.3f}",
                    record.geo.country,
                    record.geo.continent,
                    int(record.responsive),
                    int(record.change_sensitive),
                    " ".join(map(str, record.downward_days)),
                    " ".join(map(str, record.upward_days)),
                ]
            )
            rows += 1
        return rows
    finally:
        if should_close:
            handle.close()
