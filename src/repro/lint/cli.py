"""The ``repro lint`` subcommand.

Thin argparse front-end over :func:`repro.lint.run_lint`.  The rule
catalogue in ``--help`` (and ``--list-rules``) is generated from the
registry at invocation time, so adding a rule updates the CLI and the
docs' source of truth in one place.

Exit codes: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import Baseline, default_baseline_path
from .driver import build_context, find_root, run_lint
from .registry import all_rules
from .report import render_json, render_text
from .rules.cachekey import write_fingerprint

__all__ = ["build_parser", "main"]


def _rule_epilog() -> str:
    rules = all_rules()
    width = max(len(r.name) for r in rules)
    lines = "\n".join(f"  {r.id}  {r.name:<{width}}  {r.summary}" for r in rules)
    return (
        "rules:\n"
        f"{lines}\n\n"
        "suppress one finding with a trailing comment on the flagged line\n"
        "(`# repro-lint: disable=REP002`) or the line above it\n"
        "(`# repro-lint: disable-next-line=REP002`); see docs/dev.md for\n"
        "when a suppression is acceptable."
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Statically check the repository's correctness invariants "
            "(oracle pairing, determinism, picklability, cache-key "
            "completeness, metrics hygiene, resource lifecycle, import "
            "layering, env boundary)."
        ),
        epilog=_rule_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the machine-diffable CI artifact)",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="repository root (default: discovered from cwd / install path)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file of accepted findings (default: <root>/lint_baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file and report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--update-fingerprint",
        action="store_true",
        help=(
            "re-record the REP004 cache fingerprint (run this after "
            "bumping CACHE_SCHEMA) and exit"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="include the rule catalogue in the text report",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        print(_rule_epilog())
        return 0

    try:
        root = Path(args.root).resolve() if args.root else find_root()
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    context = build_context(root)

    if args.update_fingerprint:
        path = write_fingerprint(context)
        print(f"cache fingerprint recorded at {path}")
        return 0

    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path(root)
    )
    try:
        baseline = None if args.no_baseline else Baseline.load(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2

    rule_ids = (
        [part.strip() for part in args.rules.split(",") if part.strip()]
        if args.rules
        else None
    )
    try:
        result = run_lint(root, rule_ids=rule_ids, baseline=baseline, context=context)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.update_baseline:
        Baseline.from_violations(result.violations).save(baseline_path)
        print(
            f"baseline of {len(result.violations)} finding(s) written to "
            f"{baseline_path}"
        )
        return 0

    report = (
        render_json(result)
        if args.format == "json"
        else render_text(result, verbose=args.verbose) + "\n"
    )
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)
    return result.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
