"""The lint driver: collect sources, run rules, apply suppressions/baseline.

The driver parses every Python file under ``src/repro`` (plus the
kernel-equivalence test module, which the oracle-pairing rule inspects)
into one :class:`LintContext`, hands the context to each registered
rule, and post-processes the raw findings:

1. **per-line suppressions** — a violation whose flagged line (or the
   line above) carries ``# repro-lint: disable=REP002`` (or
   ``disable-next-line=...``, or ``disable=all``) is dropped and counted
   as suppressed;
2. **baseline** — findings matching an entry in the checked-in baseline
   file are dropped and counted as baselined (the shipped baseline is
   empty; the mechanism exists so a future rule can land before its
   legacy findings are burned down).

Everything that survives is a hard failure (exit code 1).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .baseline import Baseline
from .project import ProjectContext
from .registry import Rule, Violation, all_rules

__all__ = ["LintContext", "LintResult", "build_context", "find_root", "run_lint"]

#: Files given to the rules besides the ``src/repro`` tree.
EXTRA_FILES = ("tests/test_kernels.py",)

_SUPPRESS = re.compile(r"#\s*repro-lint:\s*disable(?P<next>-next-line)?=(?P<ids>[A-Za-z0-9_,\s]+)")


@dataclass
class LintContext:
    """Parsed view of the repository handed to every rule."""

    root: Path
    files: dict[str, ast.Module] = field(default_factory=dict)
    sources: dict[str, list[str]] = field(default_factory=dict)
    #: paths that failed to parse: path -> SyntaxError message
    broken: dict[str, str] = field(default_factory=dict)
    _project: ProjectContext | None = field(default=None, repr=False)

    @property
    def project(self) -> ProjectContext:
        """Pass-1 whole-program view (import graph + symbol table).

        Built once per context, on first use, so single-file rules pay
        nothing and cross-file rules share one graph.
        """
        if self._project is None:
            self._project = ProjectContext.build(self)
        return self._project

    def tree(self, path: str) -> ast.Module | None:
        return self.files.get(path)

    def iter_src(self, prefix: str = "src/repro") -> Iterator[tuple[str, ast.Module]]:
        """(path, tree) pairs under ``prefix``, sorted for stable output."""
        for path in sorted(self.files):
            if path.startswith(prefix):
                yield path, self.files[path]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    violations: list[Violation]
    suppressed: int
    baselined: int
    rules: list[Rule]
    n_files: int

    @property
    def exit_code(self) -> int:
        return 1 if self.violations else 0


def find_root(start: Path | None = None) -> Path:
    """The repository root: the closest ancestor holding ``src/repro``.

    Falls back to the checkout this package was imported from, so
    ``repro lint`` works from any working directory.
    """
    candidates: list[Path] = []
    if start is not None:
        candidates.extend([start, *start.resolve().parents])
    else:
        cwd = Path.cwd()
        candidates.extend([cwd, *cwd.parents])
    # src/repro/lint/driver.py -> parents[3] is the checkout root
    candidates.append(Path(__file__).resolve().parents[3])
    for cand in candidates:
        if (cand / "src" / "repro").is_dir():
            return cand
    raise FileNotFoundError("cannot locate a repository root containing src/repro")


def build_context(root: Path) -> LintContext:
    """Parse the lintable tree rooted at ``root``."""
    ctx = LintContext(root=root)
    paths = sorted((root / "src" / "repro").rglob("*.py"))
    paths.extend(root / extra for extra in EXTRA_FILES if (root / extra).is_file())
    for path in paths:
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            ctx.broken[rel] = str(exc)
            continue
        try:
            ctx.files[rel] = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            ctx.broken[rel] = f"syntax error: {exc.msg} (line {exc.lineno})"
            continue
        ctx.sources[rel] = text.splitlines()
    return ctx


def _suppressed_ids(line: str) -> tuple[set[str], bool]:
    """(rule IDs disabled on this line, applies-to-next-line)."""
    m = _SUPPRESS.search(line)
    if not m:
        return set(), False
    ids = {part.strip() for part in m.group("ids").split(",") if part.strip()}
    return ids, bool(m.group("next"))


def _is_suppressed(violation: Violation, ctx: LintContext) -> bool:
    lines = ctx.sources.get(violation.path)
    if not lines or violation.line <= 0:
        return False  # cross-file findings have no line to annotate
    if violation.line <= len(lines):
        ids, is_next = _suppressed_ids(lines[violation.line - 1])
        if not is_next and ids and (violation.rule in ids or "all" in ids):
            return True
    if violation.line >= 2:
        ids, is_next = _suppressed_ids(lines[violation.line - 2])
        if is_next and ids and (violation.rule in ids or "all" in ids):
            return True
    return False


def run_lint(
    root: Path | None = None,
    *,
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
    context: LintContext | None = None,
) -> LintResult:
    """Run the registered rules and return the post-processed result."""
    root = find_root() if root is None else root
    ctx = context if context is not None else build_context(root)
    rules = all_rules()
    if rule_ids:
        wanted = set(rule_ids)
        unknown = wanted - {r.id for r in rules}
        if unknown:
            raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.id in wanted]

    raw: list[Violation] = [
        Violation(rule="PARSE", path=path, line=0, message=msg)
        for path, msg in sorted(ctx.broken.items())
    ]
    for rule in rules:
        raw.extend(rule.check(ctx))

    suppressed = 0
    baselined = 0
    kept: list[Violation] = []
    for violation in sorted(raw, key=Violation.sort_key):
        if _is_suppressed(violation, ctx):
            suppressed += 1
        elif baseline is not None and baseline.covers(violation):
            baselined += 1
        else:
            kept.append(violation)
    return LintResult(
        violations=kept,
        suppressed=suppressed,
        baselined=baselined,
        rules=rules,
        n_files=len(ctx.files),
    )
