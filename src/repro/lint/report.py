"""Render a :class:`~repro.lint.driver.LintResult` as text or JSON.

The text form is for humans at a terminal (one ``path:line: RULE
message`` finding per line, grouped summary at the end); the JSON form
is the machine-diffable artifact CI uploads, so rule output can be
compared across PRs.  Both render the rule table straight from the
registry — the same source ``repro lint --help`` uses — so neither can
drift from the code.
"""

from __future__ import annotations

import json
from typing import Any

from .driver import LintResult

__all__ = ["render_json", "render_text", "rule_table"]

REPORT_VERSION = 1


def rule_table(result: LintResult) -> str:
    """One ``ID  name  summary`` line per rule that ran."""
    width = max((len(r.name) for r in result.rules), default=0)
    return "\n".join(
        f"  {rule.id}  {rule.name:<{width}}  {rule.summary}" for rule in result.rules
    )


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """The human-facing report: findings first, one summary line last."""
    lines = [
        f"{v.path}:{v.line}: {v.rule} {v.message}" for v in result.violations
    ]
    by_rule: dict[str, int] = {}
    for v in result.violations:
        by_rule[v.rule] = by_rule.get(v.rule, 0) + 1
    if result.violations:
        breakdown = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
        summary = (
            f"repro lint: {len(result.violations)} violation"
            f"{'s' if len(result.violations) != 1 else ''} ({breakdown}) "
            f"in {result.n_files} files"
        )
    else:
        summary = f"repro lint: OK ({result.n_files} files, {len(result.rules)} rules)"
    tail: list[str] = []
    if result.suppressed:
        tail.append(f"{result.suppressed} suppressed")
    if result.baselined:
        tail.append(f"{result.baselined} baselined")
    if tail:
        summary += f" [{', '.join(tail)}]"
    if verbose:
        lines.append("rules:")
        lines.append(rule_table(result))
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-diffable report (stable key order, sorted findings)."""
    payload: dict[str, Any] = {
        "version": REPORT_VERSION,
        "rules": [
            {"id": r.id, "name": r.name, "summary": r.summary} for r in result.rules
        ],
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line, "message": v.message}
            for v in result.violations
        ],
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "n_files": result.n_files,
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2) + "\n"
