"""Checked-in lint baseline: known findings that do not fail the build.

The baseline exists as a *mechanism*, not a dumping ground: the shipped
``lint_baseline.json`` is empty and CI enforces that it stays empty for
the current rules.  Its purpose is migration — a future rule can land
together with a recorded baseline of legacy findings and burn them down
over subsequent PRs without blocking unrelated work.

Entries match on ``(rule, path, message)``; line numbers are excluded on
purpose, so unrelated edits that shift a finding a few lines do not
un-baseline it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .registry import Violation

__all__ = ["Baseline", "BASELINE_VERSION", "default_baseline_path"]

BASELINE_VERSION = 1


def default_baseline_path(root: Path) -> Path:
    return root / "lint_baseline.json"


@dataclass
class Baseline:
    """Set of accepted findings loaded from / saved to JSON."""

    entries: set[tuple[str, str, str]] = field(default_factory=set)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load ``path``; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(f"{path}: unsupported baseline format")
        entries = {
            (e["rule"], e["path"], e["message"]) for e in data.get("entries", [])
        }
        return cls(entries=entries)

    @classmethod
    def from_violations(cls, violations: list[Violation]) -> "Baseline":
        return cls(entries={(v.rule, v.path, v.message) for v in violations})

    def covers(self, violation: Violation) -> bool:
        return (violation.rule, violation.path, violation.message) in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": r, "path": p, "message": m}
                for r, p, m in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
