"""Rule registry for ``repro lint``.

A rule is a named invariant checker over the whole parsed tree (not a
single file): several invariants — oracle pairing, cache-key
fingerprints — are cross-file properties, so every rule receives the
full :class:`~repro.lint.driver.LintContext` and returns the violations
it found.  Rules self-register at import time via :func:`register`;
:mod:`repro.lint.rules` imports each rule module so importing the
package populates the registry.

The registry is the single source of truth for rule IDs and their
one-line summaries: ``repro lint --help`` and the JSON report both
render from it, so documentation cannot drift from the code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .driver import LintContext

__all__ = ["Rule", "Violation", "all_rules", "get_rule", "register"]


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a place, and what is wrong there."""

    rule: str  # rule ID, e.g. "REP002"
    path: str  # repo-relative posix path
    line: int  # 1-based line number (0 = whole-file / cross-file finding)
    message: str

    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule)


@dataclass(frozen=True)
class Rule:
    """A registered invariant checker."""

    id: str  # "REP001"
    name: str  # short kebab-case slug, e.g. "oracle-pairing"
    summary: str  # one line for --help / reports
    check: "Callable[[LintContext], list[Violation]]"


_RULES: dict[str, Rule] = {}


def register(
    id: str, name: str, summary: str
) -> "Callable[[Callable[[LintContext], list[Violation]]], Callable[[LintContext], list[Violation]]]":
    """Decorator: register ``fn`` as the checker for rule ``id``."""

    def deco(
        fn: "Callable[[LintContext], list[Violation]]",
    ) -> "Callable[[LintContext], list[Violation]]":
        if id in _RULES:
            raise ValueError(f"duplicate lint rule id {id!r}")
        _RULES[id] = Rule(id=id, name=name, summary=summary, check=fn)
        return fn

    return deco


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by ID."""
    from . import rules as _rules  # noqa: F401  (imports trigger registration)

    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(id: str) -> Rule:
    from . import rules as _rules  # noqa: F401

    return _RULES[id]
