"""``repro lint``: static verification of the repo's correctness invariants.

The runtime test suite proves the pipeline's invariants *today*; this
package proves they cannot silently rot *tomorrow*.  Five AST-based
rules check, at review time, the properties the reproduction's
credibility rests on:

==========  ====================  =============================================
rule ID     name                  invariant
==========  ====================  =============================================
``REP001``  oracle-pairing        every public ``*_reference``/``*_batch``
                                  kernel twin is co-tested with its base in
                                  ``tests/test_kernels.py``
``REP002``  determinism           no global RNG, wall-clock, or process-salted
                                  ``hash()`` calls in deterministic packages
``REP003``  picklability          engine-dispatched ``*Job`` classes capture no
                                  lambdas, nested functions, or open handles
``REP004``  cache-key-            ``cache_key``/``cache_token`` cover every
            completeness          public field; token-shaping code edits
                                  require a ``CACHE_SCHEMA`` bump
``REP005``  metrics-hygiene       instrument names are literals registered in
                                  ``repro.obs.names`` (or built via
                                  ``metric_name`` from a registered family)
==========  ====================  =============================================

Entry points: the ``repro lint`` CLI subcommand (:mod:`repro.lint.cli`),
or :func:`run_lint` for tests and tooling.
"""

from __future__ import annotations

from .baseline import Baseline, default_baseline_path
from .driver import LintContext, LintResult, build_context, find_root, run_lint
from .registry import Rule, Violation, all_rules, get_rule

__all__ = [
    "Baseline",
    "LintContext",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "build_context",
    "default_baseline_path",
    "find_root",
    "get_rule",
    "run_lint",
]
