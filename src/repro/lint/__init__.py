"""``repro lint``: static verification of the repo's correctness invariants.

The runtime test suite proves the pipeline's invariants *today*; this
package proves they cannot silently rot *tomorrow*.  The analyzer runs
in two passes: pass 1 builds a :class:`~repro.lint.project.ProjectContext`
(module import graph + exported-symbol table over all of ``src/repro``),
pass 2 runs eight AST-based rules — the newer ones reasoning across
files and along control flow — checking the properties the
reproduction's credibility rests on:

==========  ====================  =============================================
rule ID     name                  invariant
==========  ====================  =============================================
``REP001``  oracle-pairing        every public ``*_reference``/``*_batch``
                                  kernel twin is co-tested with its base in
                                  ``tests/test_kernels.py``
``REP002``  determinism           no global RNG, wall-clock, or process-salted
                                  ``hash()`` calls in deterministic packages
``REP003``  picklability          engine-dispatched ``*Job`` classes capture no
                                  lambdas, nested functions, or open handles
``REP004``  cache-key-            ``cache_key``/``cache_token`` cover every
            completeness          public field; token-shaping code edits
                                  require a ``CACHE_SCHEMA`` bump
``REP005``  metrics-hygiene       instrument names are literals registered in
                                  ``repro.obs.names`` (or built via
                                  ``metric_name`` from a registered family)
``REP006``  resource-lifecycle    every shm segment, process pool, spill/temp
                                  dir, and mmap acquisition is released on all
                                  paths (``with`` / ``try-finally`` /
                                  ``weakref.finalize``), flow-sensitively
``REP007``  import-layering       module-level imports follow the declarative
                                  layer map, form no cycles, and name symbols
                                  that exist (``rules/layering.LAYER_MAP``)
``REP008``  env-boundary          raw ``os.environ``/``os.getenv`` access only
                                  inside ``runtime/envconfig.py``, where every
                                  knob is registered and typed
==========  ====================  =============================================

The static tier has a dynamic oracle: :mod:`repro.lint.sanitizer`
(``REPRO_SANITIZE=1``) tracks live segments/pools/spill dirs at runtime
and fails on leaks at engine close and process exit — what REP006
approximates statically, the sanitizer proves on real runs.

Entry points: the ``repro lint`` CLI subcommand (:mod:`repro.lint.cli`),
or :func:`run_lint` for tests and tooling.
"""

from __future__ import annotations

from .baseline import Baseline, default_baseline_path
from .driver import LintContext, LintResult, build_context, find_root, run_lint
from .registry import Rule, Violation, all_rules, get_rule

__all__ = [
    "Baseline",
    "LintContext",
    "LintResult",
    "Rule",
    "Violation",
    "all_rules",
    "build_context",
    "default_baseline_path",
    "find_root",
    "get_rule",
    "run_lint",
]
