"""Pass 1 of the two-pass analyzer: the whole-program ``ProjectContext``.

Rules that reason across files (REP006's class-lifecycle lookups,
REP007's layering and cycle checks) need a view of the project that no
single ``ast.Module`` provides: which dotted module each file is, what
each module imports **at module level** (the imports that form the
architecture graph — function-level lazy imports are deliberately
excluded, they exist precisely to break import-time edges), and which
names each module defines.  :class:`ProjectContext` is that view,
built once per lint run and handed to every rule through
``LintContext.project``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from .driver import LintContext

__all__ = ["ModuleInfo", "ProjectContext"]


@dataclass(frozen=True)
class ModuleInfo:
    """One module's place in the project graph."""

    name: str
    path: str
    #: repro-internal modules imported at module level, with the line
    #: of the import statement that created each edge.
    imports: tuple[tuple[str, int], ...]
    #: names bound at module top level (defs, classes, assignments,
    #: imported aliases) — the exported-symbol table.
    exports: frozenset[str]

    def imported_modules(self) -> tuple[str, ...]:
        return tuple(target for target, _ in self.imports)


def module_name_for(path: str) -> str | None:
    """Dotted module name for a repo-relative path, or ``None``.

    ``src/repro/runtime/engine.py`` -> ``repro.runtime.engine``;
    a package ``__init__.py`` maps to the package itself.
    """
    if not path.startswith("src/") or not path.endswith(".py"):
        return None
    parts = path[len("src/") : -len(".py")].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    if not parts:
        return None
    return ".".join(parts)


def _is_type_checking_test(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _iter_top_level(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Module-level statements, descending into ``if``/``try`` blocks.

    ``if TYPE_CHECKING:`` bodies are skipped: those imports exist only
    for the type checker and never execute, so they are not
    architecture edges.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.If):
            if not _is_type_checking_test(stmt.test):
                yield from _iter_top_level(stmt.body)
            yield from _iter_top_level(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _iter_top_level(stmt.body)
            for handler in stmt.handlers:
                yield from _iter_top_level(handler.body)
            yield from _iter_top_level(stmt.orelse)
            yield from _iter_top_level(stmt.finalbody)


class ProjectContext:
    """Module import graph + exported-symbol table over ``src/repro``."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.by_path: dict[str, str] = {}

    # -- construction -------------------------------------------------
    @classmethod
    def build(cls, ctx: "LintContext") -> "ProjectContext":
        project = cls()
        names: dict[str, str] = {}
        for path in ctx.files:
            name = module_name_for(path)
            if name is not None:
                names[path] = name
        known = set(names.values())
        for path, name in names.items():
            tree = ctx.files[path]
            info = ModuleInfo(
                name=name,
                path=path,
                imports=tuple(_module_imports(tree, name, path, known)),
                exports=frozenset(_module_exports(tree)),
            )
            project.modules[name] = info
            project.by_path[path] = name
        return project

    # -- queries ------------------------------------------------------
    def module_for_path(self, path: str) -> ModuleInfo | None:
        name = self.by_path.get(path)
        return self.modules.get(name) if name is not None else None

    def package_of(self, module: str) -> str:
        """Top-level package below ``repro`` (``''`` for root modules).

        ``repro.runtime.engine`` -> ``runtime``; ``repro.cli`` -> ``''``
        (root modules such as the CLI sit above the layer stack).
        """
        parts = module.split(".")
        if len(parts) <= 2:
            return ""
        return parts[1]

    def import_edges(self) -> Iterator[tuple[str, str, int]]:
        """Every (importer, imported, line) module-level edge."""
        for info in self.modules.values():
            for target, line in info.imports:
                yield info.name, target, line

    def cycles(self) -> list[list[str]]:
        """Module-level import cycles (each as a closed name path).

        Iterative DFS over the module graph; self-loops from package
        ``__init__`` re-exports (``from . import x`` making ``repro.x``
        "import itself") are ignored — they are how packages publish
        submodules, not architecture edges.
        """
        graph: dict[str, list[str]] = {
            name: sorted(
                {t for t in info.imported_modules() if t in self.modules and t != name}
            )
            for name, info in self.modules.items()
        }
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(graph, WHITE)
        found: list[list[str]] = []
        seen_cycles: set[frozenset[str]] = set()
        for start in sorted(graph):
            if color[start] != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [(start, iter(graph[start]))]
            trail: list[str] = [start]
            color[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == GRAY:
                        cycle = trail[trail.index(nxt) :] + [nxt]
                        key = frozenset(cycle)
                        if key not in seen_cycles:
                            seen_cycles.add(key)
                            found.append(cycle)
                    elif color[nxt] == WHITE:
                        color[nxt] = GRAY
                        stack.append((nxt, iter(graph[nxt])))
                        trail.append(nxt)
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
                    trail.pop()
        return found


def _module_imports(
    tree: ast.Module, module: str, path: str, known: set[str]
) -> list[tuple[str, int]]:
    """repro-internal module-level imports of one module, resolved.

    Relative imports resolve against the importing module's package;
    ``from X import name`` resolves to the submodule ``X.name`` when
    that is a known module, else to ``X`` itself.
    """
    package = module if path.endswith("__init__.py") else module.rsplit(".", 1)[0]
    out: list[tuple[str, int]] = []

    def note(target: str, line: int) -> None:
        if target.split(".")[0] == "repro":
            out.append((target, line))

    for stmt in _iter_top_level(tree.body):
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                note(alias.name, stmt.lineno)
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level:
                parts = package.split(".")
                if stmt.level > len(parts):
                    continue  # beyond the project root; not ours
                base_parts = parts[: len(parts) - stmt.level + 1]
                base = ".".join(base_parts)
                if stmt.module:
                    base = f"{base}.{stmt.module}" if base else stmt.module
            else:
                base = stmt.module or ""
            if not base or base.split(".")[0] != "repro":
                continue
            for alias in stmt.names:
                sub = f"{base}.{alias.name}"
                note(sub if sub in known else base, stmt.lineno)
    return out


def _module_exports(tree: ast.Module) -> set[str]:
    """Names bound at module top level (the exported-symbol table)."""
    names: set[str] = set()
    for stmt in _iter_top_level(tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.split(".")[0]
                names.add(bound)
    return names
