"""Opt-in runtime ResourceSanitizer: the dynamic oracle behind REP006.

REP006 proves statically that every acquisition *site* is dominated by
a release; this module proves dynamically that no acquisition
*instance* outlives its owner.  When enabled (``REPRO_SANITIZE=1``, or
an explicit :func:`install`), it patches the runtime's acquisition and
release choke points with a tracking registry:

* shm segments — ``SharedArrayPool._new_segment`` registers, the
  pool's ``_release_segments`` (also its GC finalizer) unregisters;
* persistent process pools — ``SharedMemoryExecutor._ensure_pool``
  registers, ``_teardown_pool`` unregisters;
* spill directories — ``SpillDir.__init__`` registers, the module's
  ``_remove_tree`` (shared by ``cleanup()`` and the finalizer)
  unregisters.

Enforcement happens at two boundaries:

* **engine close** — ``CampaignEngine.close`` additionally asserts
  that the closed executor holds no live pool and that the segments
  its last map published are gone, raising :class:`ResourceLeakError`
  otherwise;
* **process exit** — an ``atexit`` hook (and the pytest
  ``sessionfinish`` hook in ``tests/conftest.py``) collects garbage,
  then fails the process if *anything* is still live.

The patches are reversible (:func:`ResourceSanitizer.uninstall`) and
all runtime imports are lazy: ``lint`` must stay loadable — and
layer-clean (REP007) — without importing ``runtime`` at module level.
"""

from __future__ import annotations

import atexit
import gc
import os
import sys
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable

__all__ = [
    "ResourceLeakError",
    "ResourceSanitizer",
    "TrackedResource",
    "enabled",
    "get_sanitizer",
    "install_if_enabled",
]

#: Exit code used by the atexit hook when leaks survive to process
#: exit (mirrors LeakSanitizer's hard-fail behaviour).
EXIT_LEAKED = 70


class ResourceLeakError(AssertionError):
    """A tracked resource outlived the boundary that owed its release."""


@dataclass(frozen=True)
class TrackedResource:
    """One live acquisition: what it is and where it was acquired."""

    kind: str
    name: str
    created_at: str

    def __str__(self) -> str:
        return f"{self.kind} {self.name!r} (acquired at {self.created_at})"


def _acquisition_site() -> str:
    """``file:line`` of the acquiring frame outside this module."""
    for frame in reversed(traceback.extract_stack(limit=12)[:-2]):
        if not frame.filename.endswith("sanitizer.py"):
            return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class ResourceSanitizer:
    """Tracking registry + reversible patches over the runtime tier."""

    def __init__(self) -> None:
        self._live: dict[tuple[str, str], TrackedResource] = {}
        self._lock = threading.Lock()
        self._saved: list[tuple[Any, str, Any]] = []
        self._installed = False
        self._atexit_registered = False

    # -- registry -----------------------------------------------------
    @property
    def installed(self) -> bool:
        return self._installed

    def register(self, kind: str, name: str) -> None:
        resource = TrackedResource(kind=kind, name=name, created_at=_acquisition_site())
        with self._lock:
            self._live[(kind, name)] = resource

    def unregister(self, kind: str, name: str) -> None:
        with self._lock:
            self._live.pop((kind, name), None)

    def live(self, kind: str | None = None) -> list[TrackedResource]:
        with self._lock:
            resources = list(self._live.values())
        if kind is not None:
            resources = [r for r in resources if r.kind == kind]
        return sorted(resources, key=lambda r: (r.kind, r.name))

    def is_live(self, kind: str, name: str) -> bool:
        with self._lock:
            return (kind, name) in self._live

    def report(self) -> str:
        resources = self.live()
        if not resources:
            return "ResourceSanitizer: no live resources"
        lines = [f"ResourceSanitizer: {len(resources)} leaked resource(s):"]
        lines.extend(f"  - {resource}" for resource in resources)
        return "\n".join(lines)

    def assert_clean(self, boundary: str = "process exit") -> None:
        """Raise :class:`ResourceLeakError` if anything is still live."""
        resources = self.live()
        if resources:
            raise ResourceLeakError(
                f"{len(resources)} resource(s) leaked past {boundary}:\n"
                + "\n".join(f"  - {resource}" for resource in resources)
            )

    # -- patches ------------------------------------------------------
    def _patch(self, owner: Any, attr: str, wrapper: Callable[..., Any]) -> None:
        self._saved.append((owner, attr, owner.__dict__[attr]))
        setattr(owner, attr, wrapper)

    def install(self) -> None:
        """Patch the runtime acquisition/release choke points (idempotent)."""
        if self._installed:
            return
        # lazy: lint stays import-light and layer-clean (REP007)
        from ..runtime import engine as engine_mod
        from ..runtime import executors as executors_mod
        from ..runtime import shm as shm_mod
        from ..runtime import spill as spill_mod

        sanitizer = self

        # shm segments ------------------------------------------------
        orig_new_segment = shm_mod.SharedArrayPool._new_segment

        def new_segment(self: Any, min_bytes: int) -> Any:
            seg = orig_new_segment(self, min_bytes)
            sanitizer.register("shm-segment", seg.name)
            return seg

        orig_release_segments = shm_mod.SharedArrayPool.__dict__["_release_segments"]

        def release_segments(segments: list[Any]) -> None:
            names = [seg.name for seg in segments]
            orig_release_segments.__func__(segments)
            for name in names:
                sanitizer.unregister("shm-segment", name)

        self._patch(shm_mod.SharedArrayPool, "_new_segment", new_segment)
        self._patch(
            shm_mod.SharedArrayPool, "_release_segments", staticmethod(release_segments)
        )

        # persistent pools ---------------------------------------------
        orig_ensure_pool = executors_mod.SharedMemoryExecutor._ensure_pool
        orig_teardown_pool = executors_mod.SharedMemoryExecutor._teardown_pool

        def ensure_pool(self: Any) -> Any:
            before = self._pool
            pool = orig_ensure_pool(self)
            if pool is not None and pool is not before:
                sanitizer.register("process-pool", _pool_name(pool))
            return pool

        def teardown_pool(self: Any) -> None:
            pool = self._pool
            orig_teardown_pool(self)
            if pool is not None:
                sanitizer.unregister("process-pool", _pool_name(pool))

        self._patch(executors_mod.SharedMemoryExecutor, "_ensure_pool", ensure_pool)
        self._patch(executors_mod.SharedMemoryExecutor, "_teardown_pool", teardown_pool)

        # spill directories --------------------------------------------
        orig_spill_init = spill_mod.SpillDir.__init__
        orig_remove_tree = spill_mod._remove_tree

        def spill_init(self: Any, directory: Any) -> None:
            orig_spill_init(self, directory)
            sanitizer.register("spill-dir", str(self.directory))

        def remove_tree(path: str) -> None:
            orig_remove_tree(path)
            sanitizer.unregister("spill-dir", path)

        self._patch(spill_mod.SpillDir, "__init__", spill_init)
        self._patch(spill_mod, "_remove_tree", remove_tree)

        # engine-close boundary ----------------------------------------
        orig_engine_close = engine_mod.CampaignEngine.close

        def engine_close(self: Any) -> None:
            executor = self.executor
            orig_engine_close(self)
            sanitizer.check_engine_close(executor)

        self._patch(engine_mod.CampaignEngine, "close", engine_close)

        self._installed = True
        if not self._atexit_registered:
            self._atexit_registered = True
            atexit.register(_atexit_check, self)

    def uninstall(self) -> None:
        """Undo every patch and forget the live set (idempotent)."""
        while self._saved:
            owner, attr, original = self._saved.pop()
            setattr(owner, attr, original)
        with self._lock:
            self._live.clear()
        self._installed = False

    # -- boundaries ---------------------------------------------------
    def check_engine_close(self, executor: Any) -> None:
        """Scoped post-close assertion for one engine's executor.

        The executor must hold no live pool, and the segments its most
        recent map published must be gone.  Scoped (rather than
        "nothing live anywhere") so closing one engine cannot trip over
        a neighbour's in-flight resources.
        """
        leaks: list[TrackedResource] = []
        pool = getattr(executor, "_pool", None)
        if pool is not None and self.is_live("process-pool", _pool_name(pool)):
            leaks.extend(
                r for r in self.live("process-pool") if r.name == _pool_name(pool)
            )
        for name in getattr(executor, "last_segments", []) or []:
            if self.is_live("shm-segment", name):
                leaks.extend(
                    r for r in self.live("shm-segment") if r.name == name
                )
        if leaks:
            raise ResourceLeakError(
                f"{len(leaks)} resource(s) leaked past engine close "
                f"({executor!r}):\n"
                + "\n".join(f"  - {resource}" for resource in leaks)
            )


def _pool_name(pool: Any) -> str:
    return f"pool-0x{id(pool):x}"


def _atexit_check(sanitizer: ResourceSanitizer) -> None:
    """Process-exit boundary: anything still live is a hard failure."""
    if not sanitizer.installed:
        return
    gc.collect()  # run pending finalizers before judging
    resources = sanitizer.live()
    if not resources:
        return
    print(sanitizer.report(), file=sys.stderr, flush=True)
    os._exit(EXIT_LEAKED)


_SANITIZER: ResourceSanitizer | None = None


def get_sanitizer() -> ResourceSanitizer:
    """The process-wide sanitizer instance (created on first use)."""
    global _SANITIZER
    if _SANITIZER is None:
        _SANITIZER = ResourceSanitizer()
    return _SANITIZER


def enabled() -> bool:
    """Is ``REPRO_SANITIZE`` set truthy?"""
    # lazy for the same REP007 reason as install()
    from ..runtime import envconfig

    return envconfig.get_bool("REPRO_SANITIZE", False)


def install_if_enabled() -> bool:
    """Install when ``REPRO_SANITIZE=1``; returns whether installed."""
    if enabled():
        get_sanitizer().install()
        return True
    return False
