"""Shared AST utilities for the lint rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "attribute_chain",
    "class_field_names",
    "collect_functions",
    "import_aliases",
    "iter_class_defs",
    "referenced_names",
    "string_set_literal",
]


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None when the base is not a Name.

    Call bases (``foo().bar``), subscripts, etc. return None — the rules
    only reason about plain dotted references.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def import_aliases(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """(module aliases, from-imports) of a module.

    ``import numpy as np``          -> aliases["np"] = "numpy"
    ``from datetime import date``   -> froms["date"] = ("datetime", "date")
    ``from x import y as z``        -> froms["z"] = ("x", "y")
    """
    aliases: dict[str, str] = {}
    froms: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                froms[alias.asname or alias.name] = (node.module, alias.name)
    return aliases, froms


def iter_class_defs(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def collect_functions(
    body: list[ast.stmt], context: str = ""
) -> dict[str, list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]]:
    """Top-level and method defs: name -> [(class context or "", node)]."""
    out: dict[str, list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]] = {}
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, []).append((context, node))
        elif isinstance(node, ast.ClassDef):
            for name, entries in collect_functions(node.body, node.name).items():
                out.setdefault(name, []).extend(entries)
    return out


def referenced_names(node: ast.AST) -> set[str]:
    """Every Name id and Attribute attr appearing under ``node``."""
    out: set[str] = set()
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            out.add(n.id)
        elif isinstance(n, ast.Attribute):
            out.add(n.attr)
    return out


def class_field_names(cls: ast.ClassDef) -> tuple[list[str], bool]:
    """(field names, is_dataclass) for a class definition.

    Dataclasses contribute their annotated class-level fields; plain
    classes contribute ``self.x = ...`` targets assigned in ``__init__``.
    """
    is_dataclass = any(
        (isinstance(d, ast.Name) and d.id == "dataclass")
        or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
        or (
            isinstance(d, ast.Call)
            and (
                (isinstance(d.func, ast.Name) and d.func.id == "dataclass")
                or (isinstance(d.func, ast.Attribute) and d.func.attr == "dataclass")
            )
        )
        for d in cls.decorator_list
    )
    fields: list[str] = []
    if is_dataclass:
        for node in cls.body:
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if not _is_classvar(node.annotation):
                    fields.append(node.target.id)
        return fields, True
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in fields
                        ):
                            fields.append(target.attr)
                elif (
                    isinstance(sub, ast.AnnAssign)
                    and isinstance(sub.target, ast.Attribute)
                    and isinstance(sub.target.value, ast.Name)
                    and sub.target.value.id == "self"
                    and sub.target.attr not in fields
                ):
                    fields.append(sub.target.attr)
    return fields, False


def _is_classvar(annotation: ast.expr) -> bool:
    chain = attribute_chain(annotation.value if isinstance(annotation, ast.Subscript) else annotation)
    return bool(chain) and chain[-1] == "ClassVar"


def string_set_literal(tree: ast.Module, name: str) -> set[str]:
    """The literal strings inside ``NAME = frozenset({...})`` / ``{...}``."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(isinstance(t, ast.Name) and t.id == name for t in targets):
            continue
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            return {
                el.value
                for el in value.elts
                if isinstance(el, ast.Constant) and isinstance(el.value, str)
            }
    return set()
