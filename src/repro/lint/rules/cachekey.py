"""REP004 — cache keys cover every input, and key-shaping code bumps CACHE_SCHEMA.

The content-addressed block cache (``repro.runtime.cache``) is only
correct while two properties hold:

1. **field coverage** — a class that contributes its own identity to the
   key (a ``cache_key`` job or a ``cache_token`` provider) must fold in
   *every* public field.  A forgotten field means two different
   configurations collide on one cache entry and silently share results.
2. **schema discipline** — any edit to the token-shaping code itself
   (``stable_token``, ``task_key``, every ``cache_key``/``cache_token``
   method) can move result bits without changing any input field, so it
   must be accompanied by a :data:`repro.runtime.cache.CACHE_SCHEMA`
   bump.  The rule enforces this mechanically: it hashes the
   (docstring-stripped) ASTs of all token-participating functions and
   compares digest + schema against the recorded fingerprint in
   ``src/repro/lint/cache_fingerprint.json``.  Changed code with an
   unchanged schema is a violation; after bumping the schema, run
   ``repro lint --update-fingerprint`` to re-record (the stale
   fingerprint is itself a violation until then, so the file can never
   silently rot).

Field coverage accepts an escape hatch: a method that iterates
``dataclasses.fields`` / ``astuple`` / ``asdict`` covers everything by
construction.
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from ..registry import Violation, register
from .common import class_field_names, iter_class_defs, referenced_names

if TYPE_CHECKING:  # pragma: no cover
    from ..driver import LintContext

FINGERPRINT_VERSION = 1
CACHE_MODULE = "src/repro/runtime/cache.py"
TOKEN_FUNCTIONS = ("stable_token", "task_key")
TOKEN_METHODS = ("cache_key", "cache_token")
_COVERS_ALL = ("fields", "astuple", "asdict")


def fingerprint_path(root: Path) -> Path:
    return root / "src" / "repro" / "lint" / "cache_fingerprint.json"


def _strip_docstrings(node: ast.AST) -> ast.AST:
    """Copy of ``node`` with every docstring removed (doc edits are free)."""
    node = copy.deepcopy(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)):
            body = sub.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                del body[0]
                if not body:
                    body.append(ast.Pass())
    return node


def _function_digest(node: ast.AST) -> str:
    return hashlib.sha256(ast.dump(_strip_docstrings(node)).encode()).hexdigest()[:16]


def _iter_token_functions(
    ctx: "LintContext",
) -> "Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]":
    """(qualified name, node) for every token-participating function."""
    cache_tree = ctx.tree(CACHE_MODULE)
    if cache_tree is not None:
        for node in cache_tree.body:
            if isinstance(node, ast.FunctionDef) and node.name in TOKEN_FUNCTIONS:
                yield f"{CACHE_MODULE}::{node.name}", node
    for path, tree in ctx.iter_src():
        for cls in iter_class_defs(tree):
            for method in cls.body:
                if (
                    isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and method.name in TOKEN_METHODS
                ):
                    yield f"{path}::{cls.name}.{method.name}", method


def current_schema(ctx: "LintContext") -> int | None:
    """The CACHE_SCHEMA value assigned in the cache module, if parseable."""
    tree = ctx.tree(CACHE_MODULE)
    if tree is None:
        return None
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if (
            any(isinstance(t, ast.Name) and t.id == "CACHE_SCHEMA" for t in targets)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, int)
        ):
            return value.value
    return None


def compute_fingerprint(ctx: "LintContext") -> dict:
    """The fingerprint payload for the current tree."""
    functions = {name: _function_digest(node) for name, node in _iter_token_functions(ctx)}
    return {
        "version": FINGERPRINT_VERSION,
        "schema": current_schema(ctx),
        "functions": dict(sorted(functions.items())),
    }


def write_fingerprint(ctx: "LintContext") -> Path:
    path = fingerprint_path(ctx.root)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(compute_fingerprint(ctx), indent=2) + "\n", encoding="utf-8")
    return path


def _fingerprint_violations(ctx: "LintContext") -> list[Violation]:
    current = compute_fingerprint(ctx)
    path = fingerprint_path(ctx.root)
    rel = path.relative_to(ctx.root).as_posix() if path.is_absolute() else str(path)
    if not path.is_file():
        return [
            Violation(
                rule="REP004",
                path=rel,
                line=0,
                message=(
                    "no recorded cache fingerprint; run "
                    "`repro lint --update-fingerprint` and commit the result"
                ),
            )
        ]
    try:
        recorded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [
            Violation(
                rule="REP004",
                path=rel,
                line=0,
                message=f"unreadable cache fingerprint ({exc}); regenerate it",
            )
        ]
    if recorded == current:
        return []
    changed = sorted(
        name
        for name in set(current["functions"]) | set(recorded.get("functions", {}))
        if current["functions"].get(name) != recorded.get("functions", {}).get(name)
    )
    if changed and recorded.get("schema") == current["schema"]:
        return [
            Violation(
                rule="REP004",
                path=rel,
                line=0,
                message=(
                    "token-participating code changed without a CACHE_SCHEMA "
                    f"bump: {', '.join(changed)}; bump "
                    "repro.runtime.cache.CACHE_SCHEMA, then run "
                    "`repro lint --update-fingerprint`"
                ),
            )
        ]
    return [
        Violation(
            rule="REP004",
            path=rel,
            line=0,
            message=(
                "recorded cache fingerprint is stale (schema "
                f"{recorded.get('schema')} -> {current['schema']}); run "
                "`repro lint --update-fingerprint` and commit the result"
            ),
        )
    ]


def _coverage_violations(ctx: "LintContext") -> list[Violation]:
    out: list[Violation] = []
    for path, tree in ctx.iter_src():
        for cls in iter_class_defs(tree):
            methods = {
                m.name: m
                for m in cls.body
                if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for kind in TOKEN_METHODS:
                method = methods.get(kind)
                if method is None:
                    continue
                fields, _ = class_field_names(cls)
                referenced = referenced_names(method)
                if any(escape in referenced for escape in _COVERS_ALL):
                    continue
                for name in fields:
                    if name.startswith("_"):
                        continue  # derived/private state, not identity
                    if name not in referenced:
                        out.append(
                            Violation(
                                rule="REP004",
                                path=path,
                                line=method.lineno,
                                message=(
                                    f"{cls.name}.{kind} does not cover field "
                                    f"{name!r}; every public field must "
                                    "contribute to the cache token (or the "
                                    "method must use dataclasses.fields/"
                                    "astuple/asdict)"
                                ),
                            )
                        )
    return out


@register(
    "REP004",
    "cache-key-completeness",
    "cache_key/cache_token must cover every public field, and token-"
    "shaping code edits require a CACHE_SCHEMA bump (AST fingerprint)",
)
def check(ctx: "LintContext") -> list[Violation]:
    return _fingerprint_violations(ctx) + _coverage_violations(ctx)
