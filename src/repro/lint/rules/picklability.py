"""REP003 — engine-dispatched job classes must stay picklable.

Everything the campaign engine fans out through ``SerialExecutor`` /
``ParallelExecutor`` is pickled to pool workers (and must round-trip
byte-identically for the serial==parallel guarantee).  Lambdas, nested
functions, and open file handles are the classic ways a job silently
becomes unpicklable — and the failure only shows up at runtime, on the
parallel path, after a fallback warning.

This rule inspects every class whose name ends in ``Job`` (the repo's
dispatch convention — ``BlockAnalysisJob``, ``BatchTailJob``,
``_ScanTimeJob``, ...) and flags attributes that capture:

* a ``lambda`` (dataclass field default, ``field(default=lambda...)``,
  or ``self.x = lambda ...``);
* a function nested inside a method (``def helper(): ...`` then
  ``self.x = helper``);
* an open handle (``self.x = open(...)``);
* a live shared-memory resource: a ``SharedMemory(...)`` handle, a
  ``memoryview(...)``, or a segment buffer (``self.x = seg.buf``).

The shared-memory cases exist for the shm dispatch tier
(:mod:`repro.runtime.shm`): a job must carry only plain-data
*descriptors* (:class:`~repro.runtime.shm.ArrayDescriptor`) across the
pool — live handles and buffer views are process-local, pickle either
not at all or into something that no longer aliases the segment, and
would tie a task's lifetime to a mapping the parent is about to unlink.

``field(default_factory=...)`` is fine — the factory runs at init time
and only its *result* is stored.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..registry import Violation, register
from .common import iter_class_defs

if TYPE_CHECKING:  # pragma: no cover
    from ..driver import LintContext

SUFFIX = "Job"


def _field_default_violations(cls: ast.ClassDef, path: str) -> list[Violation]:
    out: list[Violation] = []
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            value = node.value
            target = node.target.id if isinstance(node.target, ast.Name) else "?"
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            value = node.value
            t = node.targets[0]
            target = t.id if isinstance(t, ast.Name) else "?"
        else:
            continue
        if isinstance(value, ast.Lambda):
            out.append(
                Violation(
                    rule="REP003",
                    path=path,
                    line=value.lineno,
                    message=(
                        f"job class {cls.name}: field {target!r} defaults to a "
                        "lambda, which cannot be pickled to pool workers"
                    ),
                )
            )
        elif isinstance(value, ast.Call):
            for kw in value.keywords:
                if kw.arg == "default" and isinstance(kw.value, ast.Lambda):
                    out.append(
                        Violation(
                            rule="REP003",
                            path=path,
                            line=kw.value.lineno,
                            message=(
                                f"job class {cls.name}: field {target!r} has a "
                                "lambda default, which cannot be pickled to "
                                "pool workers"
                            ),
                        )
                    )
    return out


def _call_name(call: ast.Call) -> str | None:
    """Trailing name of a call target: ``open`` for both ``open(...)``
    and ``io.open(...)`` — attribute chains match on the last segment."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _method_violations(cls: ast.ClassDef, path: str) -> list[Violation]:
    out: list[Violation] = []
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nested = {
            n.name
            for n in ast.walk(method)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = node.value
                if isinstance(value, ast.Lambda):
                    problem = "a lambda"
                elif isinstance(value, ast.Name) and value.id in nested:
                    problem = f"nested function {value.id!r}"
                elif isinstance(value, ast.Call) and _call_name(value) == "open":
                    problem = "an open file handle"
                elif isinstance(value, ast.Call) and _call_name(value) == "SharedMemory":
                    problem = "a live SharedMemory handle"
                elif isinstance(value, ast.Call) and _call_name(value) == "memoryview":
                    problem = "a memoryview"
                elif isinstance(value, ast.Attribute) and value.attr == "buf":
                    problem = "a shared-memory buffer ('.buf')"
                else:
                    continue
                out.append(
                    Violation(
                        rule="REP003",
                        path=path,
                        line=node.lineno,
                        message=(
                            f"job class {cls.name}: attribute "
                            f"'self.{target.attr}' captures {problem}, which "
                            "cannot be pickled to pool workers"
                        ),
                    )
                )
    return out


@register(
    "REP003",
    "picklability",
    "*Job classes may not capture lambdas, nested functions, open "
    "handles, or live shared-memory resources (SharedMemory handles, "
    "memoryviews, segment buffers) in their attributes — shm crosses "
    "the pool as descriptors only",
)
def check(ctx: "LintContext") -> list[Violation]:
    violations: list[Violation] = []
    for path, tree in ctx.iter_src():
        for cls in iter_class_defs(tree):
            if not cls.name.endswith(SUFFIX):
                continue
            violations.extend(_field_default_violations(cls, path))
            violations.extend(_method_violations(cls, path))
    return violations
