"""REP001 — every vectorized kernel keeps its oracle, and a test pairs them.

The repo's performance story (docs/algorithms.md §11–§12) rests on
vectorized kernels proven bit-identical to retained scalar oracles.
This rule makes that pairing structural:

* any public ``<base>_reference`` / ``<base>_batch`` function or method
  whose module also defines a public ``<base>`` twin forms an *oracle
  pair*;
* each pair must be referenced together inside at least one test in
  ``tests/test_kernels.py`` — directly, or through one level of helper
  (a module-level function or a method the test calls, e.g. the
  ``both_observations`` twin-RNG harness).

Deleting an oracle, its vectorized twin, or the equivalence test that
binds them now fails lint instead of silently shrinking coverage.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..registry import Violation, register
from .common import collect_functions, referenced_names

if TYPE_CHECKING:  # pragma: no cover
    from ..driver import LintContext

KERNEL_TESTS = "tests/test_kernels.py"
SUFFIXES = ("_reference", "_batch")


def _module_pairs(tree: ast.Module) -> list[tuple[str, str, int]]:
    """(base, twin, twin lineno) pairs defined by one module."""
    functions = collect_functions(tree.body)
    pairs: list[tuple[str, str, int]] = []
    for name, entries in functions.items():
        if name.startswith("_"):
            continue
        for suffix in SUFFIXES:
            if not name.endswith(suffix):
                continue
            base = name[: -len(suffix)]
            if not base or base.startswith("_") or base not in functions:
                continue
            pairs.append((base, name, entries[0][1].lineno))
    return pairs


def _test_reference_sets(tree: ast.Module) -> list[set[str]]:
    """Identifier sets per test, with one level of helper resolution.

    A test's set is the names it references directly, unioned with the
    reference sets of any same-module function it names (helpers like
    ``check`` or ``both_observations`` that exercise both twins).
    """
    helpers = {
        name: referenced_names(entries[0][1])
        for name, entries in collect_functions(tree.body).items()
    }
    out: list[set[str]] = []
    for name, entries in collect_functions(tree.body).items():
        if not name.startswith("test"):
            continue
        for _, node in entries:
            names = set(referenced_names(node))
            for referenced in list(names):
                if referenced in helpers and not referenced.startswith("test"):
                    names |= helpers[referenced]
            out.append(names)
    return out


@register(
    "REP001",
    "oracle-pairing",
    "public *_reference/*_batch kernels must be co-tested with their twin "
    "in tests/test_kernels.py",
)
def check(ctx: "LintContext") -> list[Violation]:
    kernel_tests = ctx.tree(KERNEL_TESTS)
    test_sets = _test_reference_sets(kernel_tests) if kernel_tests is not None else []

    violations: list[Violation] = []
    for path, tree in ctx.iter_src():
        for base, twin, lineno in _module_pairs(tree):
            if kernel_tests is None:
                violations.append(
                    Violation(
                        rule="REP001",
                        path=path,
                        line=lineno,
                        message=(
                            f"oracle pair {base!r}/{twin!r} has no equivalence "
                            f"test: {KERNEL_TESTS} is missing"
                        ),
                    )
                )
                continue
            if not any(base in s and twin in s for s in test_sets):
                violations.append(
                    Violation(
                        rule="REP001",
                        path=path,
                        line=lineno,
                        message=(
                            f"{twin!r} and its twin {base!r} are never referenced "
                            f"together in any test in {KERNEL_TESTS}; add (or "
                            "restore) an equivalence test, or remove the "
                            "orphaned kernel"
                        ),
                    )
                )
    return violations
