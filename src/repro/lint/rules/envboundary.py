"""REP008 — every environment knob goes through ``runtime/envconfig.py``.

A measurement campaign's configuration *is* methodology: a knob that
is read straight off ``os.environ`` somewhere deep in the tree is
invisible in ``--help``, untyped, silent on typos, and impossible to
enumerate when writing down what a run actually did.  This rule bans
raw environment access — ``os.environ`` in any form (reads, writes,
``.get``/``.setdefault``/``.pop``, membership tests), ``os.getenv``,
``os.putenv``, ``os.unsetenv``, and their ``from os import ...``
aliases — everywhere except the one central resolver,
``src/repro/runtime/envconfig.py``, where each variable is registered
with a type, a default, and a description.

New knob workflow: add an ``EnvVar`` entry to ``envconfig.REGISTRY``,
then read it via ``envconfig.raw``/``get_int``/``get_bool``/... and
write it via ``envconfig.set_env``/``setdefault_env``/``overriding``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..registry import Violation, register
from .common import attribute_chain, import_aliases

if TYPE_CHECKING:
    from ..driver import LintContext

#: The one file allowed to touch the process environment.
RESOLVER_PATH = "src/repro/runtime/envconfig.py"

_BANNED_OS_CALLS = frozenset({"getenv", "putenv", "unsetenv"})


@register(
    "REP008",
    "env-boundary",
    "raw os.environ / os.getenv access is banned outside "
    "runtime/envconfig.py",
)
def check(ctx: "LintContext") -> list[Violation]:
    violations: list[Violation] = []
    for path, tree in ctx.iter_src():
        if path == RESOLVER_PATH:
            continue
        aliases, froms = import_aliases(tree)
        # names bound from `from os import environ/getenv/...`
        local_bans: dict[str, str] = {}
        for name, (module, attr) in froms.items():
            if module == "os" and (attr == "environ" or attr in _BANNED_OS_CALLS):
                local_bans[name] = f"os.{attr}"
        for node in ast.walk(tree):
            chain = attribute_chain(node) if isinstance(node, ast.Attribute) else None
            if chain is not None:
                head = aliases.get(chain[0], chain[0])
                resolved = [head, *chain[1:]]
                if resolved[0] == "os" and len(resolved) == 2:
                    # flagging only the exact two-element chain reports
                    # os.environ.get(...) once, at the inner attribute
                    if resolved[1] == "environ":
                        violations.append(_violation(path, node.lineno, "os.environ"))
                    elif resolved[1] in _BANNED_OS_CALLS:
                        violations.append(
                            _violation(path, node.lineno, f"os.{resolved[1]}")
                        )
            elif isinstance(node, ast.Name) and node.id in local_bans:
                if isinstance(getattr(node, "ctx", None), ast.Load):
                    violations.append(
                        _violation(path, node.lineno, local_bans[node.id])
                    )
    return violations


def _violation(path: str, line: int, what: str) -> Violation:
    return Violation(
        rule="REP008",
        path=path,
        line=line,
        message=(
            f"raw environment access ({what}) outside the central "
            "resolver; register the knob in repro.runtime.envconfig and "
            "use its typed helpers"
        ),
    )
