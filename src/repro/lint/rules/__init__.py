"""The shipped lint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry`; a new rule is one module with a
``@register(...)``-decorated checker plus an import line here.
"""

from __future__ import annotations

from . import (  # noqa: F401
    cachekey,
    determinism,
    envboundary,
    layering,
    lifecycle,
    metrics,
    oracle,
    picklability,
)

__all__ = [
    "cachekey",
    "determinism",
    "envboundary",
    "layering",
    "lifecycle",
    "metrics",
    "oracle",
    "picklability",
]
