"""The shipped lint rules.

Importing this package registers every rule with
:mod:`repro.lint.registry`; a new rule is one module with a
``@register(...)``-decorated checker plus an import line here.
"""

from __future__ import annotations

from . import cachekey, determinism, metrics, oracle, picklability  # noqa: F401

__all__ = ["cachekey", "determinism", "metrics", "oracle", "picklability"]
