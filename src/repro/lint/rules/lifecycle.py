"""REP006 — acquired OS resources must be released on *every* path.

The runtime's safety rules — "the parent publishes, the parent
unlinks" (shm segments), "the coordinator writes, the coordinator
deletes" (spill dirs) — only hold when every acquisition is dominated
by a release: a ``with`` block, a ``try/finally``, a registered
``weakref.finalize``, or escape into an object that owns the resource
and has a lifecycle method.  A named shm segment leaked on an
exception edge outlives the process in ``/dev/shm``; a leaked
``ProcessPoolExecutor`` strands worker processes.

This is a CFG-lite, flow-sensitive check.  For each acquisition of

* ``multiprocessing.shared_memory.SharedMemory(...)``
* ``repro.runtime.shm.SharedArrayPool(...)``
* ``concurrent.futures.ProcessPoolExecutor(...)``
* ``tempfile.TemporaryDirectory(...)`` / ``tempfile.mkdtemp(...)``
* ``np.load(..., mmap_mode=...)`` (a live mmap handle)

bound to a local name, the rule scans the *continuation* — the
statements that execute after the acquisition on the normal path,
including enclosing ``try`` else/finally blocks — until the resource
is **protected**:

* entered as a ``with`` context (directly, or as the first statement
  of an immediately following ``try``);
* released in a following ``try``'s ``finally`` (or the enclosing
  one's);
* registered with ``weakref.finalize``;
* released directly (``x.close()`` as the next effectful statement);
* ownership transferred: returned/yielded, aliased, or passed to
  another call (``self._segments.append(seg)``, ``_remove_tree(path)``);
* stored on ``self`` — allowed only when the enclosing class has a
  lifecycle method (``close``/``release``/``cleanup``/``shutdown``/
  ``stop``/``terminate``/``__exit__``/``__del__``) or registers a
  ``weakref.finalize`` — otherwise the object can never free it.

Any statement that can raise (contains a call or ``raise``) *before*
protection is an exception-edge leak and is flagged.  Acquisitions
used as a ``with`` context expression or nested inside a larger
expression (``return cls(tempfile.mkdtemp(...))``) are ownership
transfers and trusted; the runtime ResourceSanitizer
(``repro.lint.sanitizer``) is the dynamic oracle for what this static
approximation cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..registry import Violation, register
from .common import attribute_chain, import_aliases

if TYPE_CHECKING:
    from ..driver import LintContext

#: acquisition constructor -> method names that release it.
RELEASE_METHODS: dict[str, frozenset[str]] = {
    "SharedMemory": frozenset({"close", "unlink"}),
    "SharedArrayPool": frozenset({"release"}),
    "ProcessPoolExecutor": frozenset({"shutdown"}),
    "TemporaryDirectory": frozenset({"cleanup"}),
    "mkdtemp": frozenset(),
    "np.load": frozenset({"close"}),
}

#: Methods that make a class an owner: storing a resource on ``self``
#: is fine when one of these exists to let go of it again.
LIFECYCLE_METHODS = frozenset(
    {"close", "release", "cleanup", "shutdown", "stop", "terminate", "__exit__", "__del__"}
)

_PROTECT = "protect"
_UNMANAGED = "unmanaged-escape"
_HAZARD = "hazard"
_NEUTRAL = "neutral"


@dataclass(frozen=True)
class _Acquisition:
    """One matched acquisition call and how to release it."""

    ctor: str
    node: ast.Call


def _resolve(chain: list[str], aliases: dict[str, str], froms: dict[str, tuple[str, str]]) -> list[str]:
    head = chain[0]
    if head in aliases:
        return aliases[head].split(".") + chain[1:]
    if head in froms:
        module, attr = froms[head]
        return module.split(".") + [attr] + chain[1:]
    return chain


def _match_acquisition(
    node: ast.Call, aliases: dict[str, str], froms: dict[str, tuple[str, str]]
) -> _Acquisition | None:
    chain = attribute_chain(node.func)
    if chain is None:
        return None
    resolved = _resolve(chain, aliases, froms)
    last = resolved[-1]
    if last in ("SharedMemory", "SharedArrayPool", "ProcessPoolExecutor", "TemporaryDirectory", "mkdtemp"):
        return _Acquisition(ctor=last, node=node)
    if last == "load" and resolved[0] == "numpy":
        for kw in node.keywords:
            if kw.arg == "mmap_mode" and not (
                isinstance(kw.value, ast.Constant) and kw.value.value is None
            ):
                return _Acquisition(ctor="np.load", node=node)
    return None


def _contains(node: ast.AST, target: ast.AST) -> bool:
    return any(sub is target for sub in ast.walk(node))


def _references(node: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(node))


def _has_call_or_raise(stmt: ast.stmt) -> bool:
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Call, ast.Raise, ast.Assert, ast.Await)):
            return True
    return False


def _is_finalize_call(node: ast.expr) -> bool:
    chain = attribute_chain(node.func) if isinstance(node, ast.Call) else None
    return bool(chain) and chain[-1] == "finalize"


def _call_args(node: ast.Call) -> Iterator[ast.expr]:
    yield from node.args
    for kw in node.keywords:
        yield kw.value


def _releases_in_block(stmts: list[ast.stmt], name: str, release: frozenset[str]) -> bool:
    """Does this (finally) block release ``name``?

    ``x.close()``-style calls with a known release method, or any call
    taking ``x`` as an argument (``shutil.rmtree(path)``,
    ``_remove_tree(path)``) count.
    """
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            chain = attribute_chain(sub.func)
            if chain and len(chain) >= 2 and chain[0] == name:
                if chain[-1] in release or not release:
                    return True
            if any(_references(arg, name) for arg in _call_args(sub)):
                return True
    return False


def _self_escape_value(stmt: ast.stmt, name: str) -> bool:
    """``self.attr = x`` / ``self.c[k] = x`` / ``self.c.append(x)``?"""
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name) and stmt.value.id == name:
        for target in stmt.targets:
            base = target.value if isinstance(target, ast.Subscript) else target
            chain = attribute_chain(base) if isinstance(base, ast.Attribute) else None
            if chain and chain[0] == "self":
                return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        chain = attribute_chain(stmt.value.func)
        if chain and chain[0] == "self":
            if any(
                isinstance(arg, ast.Name) and arg.id == name
                for arg in _call_args(stmt.value)
            ):
                return True
    return False


def _class_is_owner(cls: ast.ClassDef | None) -> bool:
    if cls is None:
        return False
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if stmt.name in LIFECYCLE_METHODS:
                return True
    for sub in ast.walk(cls):
        if isinstance(sub, ast.Call) and _is_finalize_call(sub):
            return True
    return False


def _first_effective(stmts: list[ast.stmt]) -> ast.stmt | None:
    for stmt in stmts:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        return stmt
    return None


def _classify(
    stmt: ast.stmt, name: str, release: frozenset[str], cls: ast.ClassDef | None
) -> str:
    """One continuation statement's effect on a live resource ``name``."""
    # with x: / with x as y:
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if _references(item.context_expr, name):
                return _PROTECT  # with x: / with closing(x):
        return _HAZARD if _has_call_or_raise(stmt) else _NEUTRAL
    # try: ... finally: x.release()  /  try: with x: ...
    if isinstance(stmt, ast.Try):
        if stmt.finalbody and _releases_in_block(stmt.finalbody, name, release):
            return _PROTECT
        first = _first_effective(stmt.body)
        if first is not None and _classify(first, name, release, cls) == _PROTECT:
            return _PROTECT
        return _HAZARD if _has_call_or_raise(stmt) else _NEUTRAL
    # weakref.finalize(owner, fn, ..., x, ...)
    finalize_value: ast.expr | None = None
    if isinstance(stmt, ast.Expr):
        finalize_value = stmt.value
    elif isinstance(stmt, ast.Assign):
        finalize_value = stmt.value
    if (
        finalize_value is not None
        and isinstance(finalize_value, ast.Call)
        and _is_finalize_call(finalize_value)
        and any(_references(arg, name) for arg in _call_args(finalize_value))
    ):
        return _PROTECT
    # escape onto self: fine iff the class can let go again
    if _self_escape_value(stmt, name):
        return _PROTECT if _class_is_owner(cls) else _UNMANAGED
    # ownership transfer out of this frame
    if isinstance(stmt, ast.Return) and stmt.value is not None and _references(stmt.value, name):
        return _PROTECT
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, (ast.Yield, ast.YieldFrom)):
        if _references(stmt.value, name):
            return _PROTECT
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name) and stmt.value.id == name:
        return _PROTECT  # aliased; the alias carries the obligation
    # x.close() as the next effectful statement, or handoff f(..., x, ...)
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        chain = attribute_chain(call.func)
        if chain and chain[0] == name and len(chain) >= 2:
            if chain[-1] in release or not release:
                return _PROTECT
            return _HAZARD  # a use (seg.buf, pool.map) before any release
        if any(_references(arg, name) for arg in _call_args(call)):
            return _PROTECT
    if _has_call_or_raise(stmt) or isinstance(stmt, ast.Raise):
        return _HAZARD
    return _NEUTRAL


@dataclass
class _Finding:
    line: int
    message: str


class _FunctionScanner:
    """Scan one function body, tracking each block's continuation."""

    def __init__(
        self,
        aliases: dict[str, str],
        froms: dict[str, tuple[str, str]],
        cls: ast.ClassDef | None,
    ) -> None:
        self.aliases = aliases
        self.froms = froms
        self.cls = cls
        self.findings: list[_Finding] = []

    def scan(self, body: list[ast.stmt]) -> None:
        self._visit_block(body, [])

    # -- traversal ----------------------------------------------------
    def _visit_block(self, block: list[ast.stmt], continuation: list[ast.stmt]) -> None:
        for i, stmt in enumerate(block):
            rest = block[i + 1 :] + continuation
            self._check_stmt(stmt, rest)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._visit_block(stmt.body, rest)
            elif isinstance(stmt, ast.Try):
                self._visit_block(stmt.body, stmt.orelse + stmt.finalbody + rest)
                for handler in stmt.handlers:
                    self._visit_block(handler.body, stmt.finalbody + rest)
                self._visit_block(stmt.orelse, stmt.finalbody + rest)
                self._visit_block(stmt.finalbody, rest)
            elif isinstance(stmt, ast.If):
                self._visit_block(stmt.body, rest)
                self._visit_block(stmt.orelse, rest)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._visit_block(stmt.body, rest)
                self._visit_block(stmt.orelse, rest)
            # nested defs are scanned as functions of their own

    def _check_stmt(self, stmt: ast.stmt, continuation: list[ast.stmt]) -> None:
        for acq, binding in self._acquisitions_in(stmt):
            if binding is None:
                self.findings.append(
                    _Finding(
                        acq.node.lineno,
                        f"{acq.ctor}() acquired and dropped without a handle; "
                        "nothing can ever release it",
                    )
                )
            elif binding == "__self__":
                if not _class_is_owner(self.cls):
                    self.findings.append(
                        _Finding(
                            acq.node.lineno,
                            f"{acq.ctor}() stored on self, but "
                            f"{self.cls.name if self.cls else 'the class'} has no "
                            "lifecycle method (close/release/cleanup/shutdown) "
                            "and registers no weakref.finalize",
                        )
                    )
            else:
                self._check_continuation(acq, binding, continuation)

    def _check_continuation(
        self, acq: _Acquisition, name: str, continuation: list[ast.stmt]
    ) -> None:
        release = RELEASE_METHODS[acq.ctor]
        for stmt in continuation:
            status = _classify(stmt, name, release, self.cls)
            if status == _PROTECT:
                return
            if status == _UNMANAGED:
                self.findings.append(
                    _Finding(
                        acq.node.lineno,
                        f"{acq.ctor}() escapes onto self, but "
                        f"{self.cls.name if self.cls else 'the class'} has no "
                        "lifecycle method (close/release/cleanup/shutdown) "
                        "and registers no weakref.finalize",
                    )
                )
                return
            if status == _HAZARD:
                self.findings.append(
                    _Finding(
                        acq.node.lineno,
                        f"{acq.ctor}() may leak on an exception edge: "
                        f"line {stmt.lineno} can raise before the resource is "
                        "protected by with/try-finally/weakref.finalize",
                    )
                )
                return
        self.findings.append(
            _Finding(
                acq.node.lineno,
                f"{acq.ctor}() is never released on this path; protect it "
                "with with/try-finally/weakref.finalize or transfer "
                "ownership",
            )
        )

    # -- acquisition extraction ---------------------------------------
    def _acquisitions_in(
        self, stmt: ast.stmt
    ) -> Iterator[tuple[_Acquisition, str | None]]:
        """(acquisition, binding) pairs for one statement.

        binding is the local name, ``'__self__'`` for direct storage on
        self, or ``None`` for a dropped bare-expression acquisition.
        Acquisitions nested inside larger expressions (call arguments,
        return values, with-contexts) are ownership transfers and are
        not yielded.
        """
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return  # with ACQ() as x: -- managed by the with itself
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
            acq = _match_acquisition(stmt.value, self.aliases, self.froms)
            if acq is not None:
                target = stmt.targets[0] if len(stmt.targets) == 1 else None
                if isinstance(target, ast.Name):
                    yield acq, target.id
                    return
                base = (
                    target.value
                    if isinstance(target, ast.Subscript)
                    else target
                )
                chain = (
                    attribute_chain(base)
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if chain and chain[0] == "self":
                    yield acq, "__self__"
                    return
                return  # tuple targets etc.: out of scope
            return
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.value, ast.Call):
            acq = _match_acquisition(stmt.value, self.aliases, self.froms)
            if acq is not None and isinstance(stmt.target, ast.Name):
                yield acq, stmt.target.id
            return
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            acq = _match_acquisition(stmt.value, self.aliases, self.froms)
            if acq is not None:
                yield acq, None
            return


@register(
    "REP006",
    "resource-lifecycle",
    "shm segments, pools, spill/temp dirs, and mmap handles must be "
    "released on all paths (with / try-finally / weakref.finalize)",
)
def check(ctx: "LintContext") -> list[Violation]:
    violations: list[Violation] = []
    for path, tree in ctx.iter_src():
        aliases, froms = import_aliases(tree)
        # map each function to its enclosing class (one level: methods)
        owner: dict[ast.AST, ast.ClassDef | None] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        owner[sub] = node
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            scanner = _FunctionScanner(aliases, froms, owner.get(node))
            scanner.scan(node.body)
            for finding in scanner.findings:
                violations.append(
                    Violation(
                        rule="REP006",
                        path=path,
                        line=finding.line,
                        message=finding.message,
                    )
                )
    return violations
