"""REP005 — metric instrument names are registered literals, never f-strings.

Dashboards, the run-manifest schema, and the CI smoke greps all key on
exact instrument names; a name assembled ad hoc (``f"stage.{name}"``)
is invisible to ``git grep`` and silently forks a metric family the
moment the interpolation changes.  This rule pins every
``counter``/``gauge``/``histogram`` call site in ``src/repro`` to the
central registry in :mod:`repro.obs.names`:

* a **literal** name must appear in ``METRICS``;
* a **dynamic** name must be built with :func:`repro.obs.names.metric_name`
  whose family argument is a literal listed in ``METRIC_FAMILIES``;
* anything else — f-strings, concatenation, a plain variable — is a
  violation at the call site.

The registry itself is kept honest in both directions: a ``METRICS`` /
``METRIC_FAMILIES`` entry with no remaining call site is flagged as a
stale registration, so the name list never drifts from the code.

``repro.obs.metrics`` (the instrument implementation, whose ``merge``
replays snapshot names by variable) is the one module out of scope.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..registry import Violation, register
from .common import string_set_literal

if TYPE_CHECKING:  # pragma: no cover
    from ..driver import LintContext

NAMES_MODULE = "src/repro/obs/names.py"
#: The registry implementation: replays snapshot names by variable.
EXCLUDED = frozenset({"src/repro/obs/metrics.py", NAMES_MODULE})
INSTRUMENTS = frozenset({"counter", "gauge", "max_gauge", "histogram"})
BUILDER = "metric_name"


def _literal_lineno(tree: ast.Module, text: str) -> int:
    """Line of the first string constant equal to ``text`` (0 if absent)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and node.value == text:
            return node.lineno
    return 0


def _check_site(
    call: ast.Call, path: str, metrics: set[str], families: set[str]
) -> tuple[Violation | None, str | None, str | None]:
    """(violation, used metric literal, used family literal) for one call."""
    instrument = call.func.attr if isinstance(call.func, ast.Attribute) else "?"
    if not call.args:
        return None, None, None  # not an instrument-name call shape
    name = call.args[0]
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        if name.value in metrics:
            return None, name.value, None
        return (
            Violation(
                rule="REP005",
                path=path,
                line=name.lineno,
                message=(
                    f"metric name {name.value!r} is not registered in "
                    "repro.obs.names.METRICS; add it there (one line) or fix "
                    "the typo"
                ),
            ),
            None,
            None,
        )
    if isinstance(name, ast.Call):
        func = name.func
        builder = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if builder == BUILDER:
            if not name.args:
                return None, None, None  # runtime ValueError; nothing static to pin
            family = name.args[0]
            if not (isinstance(family, ast.Constant) and isinstance(family.value, str)):
                return (
                    Violation(
                        rule="REP005",
                        path=path,
                        line=family.lineno,
                        message=(
                            "metric_name family must be a literal string from "
                            "repro.obs.names.METRIC_FAMILIES, not a computed "
                            "value"
                        ),
                    ),
                    None,
                    None,
                )
            if family.value not in families:
                return (
                    Violation(
                        rule="REP005",
                        path=path,
                        line=family.lineno,
                        message=(
                            f"metric family {family.value!r} is not registered "
                            "in repro.obs.names.METRIC_FAMILIES"
                        ),
                    ),
                    None,
                    None,
                )
            return None, None, family.value
    return (
        Violation(
            rule="REP005",
            path=path,
            line=name.lineno,
            message=(
                f"{instrument}() name must be a literal registered in "
                "repro.obs.names.METRICS, or metric_name(<literal family>, "
                "...); f-strings and computed names fork metric families "
                "silently"
            ),
        ),
        None,
        None,
    )


@register(
    "REP005",
    "metrics-hygiene",
    "counter/gauge/histogram names must be literals registered in "
    "repro.obs.names (or metric_name() over a registered family)",
)
def check(ctx: "LintContext") -> list[Violation]:
    names_tree = ctx.tree(NAMES_MODULE)
    if names_tree is None:
        return [
            Violation(
                rule="REP005",
                path=NAMES_MODULE,
                line=0,
                message="central metric-name registry module is missing",
            )
        ]
    metrics = string_set_literal(names_tree, "METRICS")
    families = string_set_literal(names_tree, "METRIC_FAMILIES")

    violations: list[Violation] = []
    used_metrics: set[str] = set()
    used_families: set[str] = set()
    for path, tree in ctx.iter_src():
        if path in EXCLUDED:
            continue
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in INSTRUMENTS
            ):
                continue
            violation, metric, family = _check_site(node, path, metrics, families)
            if violation is not None:
                violations.append(violation)
            if metric is not None:
                used_metrics.add(metric)
            if family is not None:
                used_families.add(family)

    for stale in sorted(metrics - used_metrics):
        violations.append(
            Violation(
                rule="REP005",
                path=NAMES_MODULE,
                line=_literal_lineno(names_tree, stale),
                message=(
                    f"registered metric {stale!r} has no call site left in "
                    "src/repro; remove the stale registration"
                ),
            )
        )
    for stale in sorted(families - used_families):
        violations.append(
            Violation(
                rule="REP005",
                path=NAMES_MODULE,
                line=_literal_lineno(names_tree, stale),
                message=(
                    f"registered metric family {stale!r} has no metric_name() "
                    "call site left in src/repro; remove the stale "
                    "registration"
                ),
            )
        )
    return violations
