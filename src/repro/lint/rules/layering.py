"""REP007 — the architecture DAG is declared here and enforced everywhere.

The layer map below is the checked-in, reviewable statement of which
package may import which.  The intended stack, bottom to top::

    timeseries   obs          (leaves: kernels / telemetry vocabulary)
        \\        |
         net ----+            (simulated internet, emits telemetry)
          \\      |
           core --+           (deterministic per-block pipeline)
            \\     |
             datasets <-> runtime   (campaign specs / execution engine)
                   \\     /
                 experiments        (paper figures and tables)

``obs`` is deliberately a cross-cutting telemetry layer: deterministic
packages may *emit* telemetry (metrics names, spans), so ``core``/
``net`` importing ``obs`` is allowed, while ``obs`` itself may import
nothing — telemetry must never feed back into results.  ``timeseries``
imports nothing at all.  ``lint`` imports nothing from the rest of the
tree (in particular not ``runtime``): the analyzer must be loadable
even while the code it checks is broken, so its only runtime coupling
is the sanitizer's function-level lazy imports.

Two modules are **shared leaves**, importable from any layer because
they import nothing themselves and exist to be universal vocabulary:
``repro.obs.names`` (the metric-name registry) and
``repro.runtime.envconfig`` (the REP008 environment resolver).

Root modules (``repro.cli``, ``repro.bench``, ``repro.export``,
``repro/__init__``) sit above the stack and may import anything.

Besides the layer map, this rule fails on any module-level import
*cycle* (package ``__init__`` self re-exports excluded) and on
``from X import name`` statements naming symbols that do not exist in
the target module — drift the interpreter only catches at import time,
on whichever code path happens to hit it first.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..project import ModuleInfo, ProjectContext, module_name_for
from ..registry import Violation, register

if TYPE_CHECKING:
    from ..driver import LintContext

#: package -> packages it may import from (module-level imports only).
#: ``""`` keys/targets are the root modules (cli, bench, export, ...).
LAYER_MAP: dict[str, frozenset[str]] = {
    "timeseries": frozenset(),
    "obs": frozenset(),
    "net": frozenset({"obs"}),
    "core": frozenset({"timeseries", "net", "obs"}),
    "datasets": frozenset({"timeseries", "net", "obs", "core", "runtime"}),
    "runtime": frozenset({"timeseries", "net", "obs", "core", "datasets"}),
    "experiments": frozenset(
        {"timeseries", "net", "obs", "core", "datasets", "runtime"}
    ),
    "lint": frozenset(),
    "": frozenset(
        {
            "timeseries",
            "net",
            "obs",
            "core",
            "datasets",
            "runtime",
            "experiments",
            "lint",
        }
    ),
}

#: Modules importable from *any* layer: they import nothing from repro
#: (enforced below) and exist to be shared vocabulary.
SHARED_LEAVES: frozenset[str] = frozenset(
    {"repro.obs.names", "repro.runtime.envconfig"}
)


def _pkg_label(pkg: str) -> str:
    return f"package {pkg!r}" if pkg else "the root modules"


def _check_layers(project: ProjectContext) -> list[Violation]:
    out: list[Violation] = []
    for importer, imported, line in project.import_edges():
        if imported not in project.modules and not any(
            known == imported or known.startswith(imported + ".")
            for known in project.modules
        ):
            continue  # not a module we model (e.g. namespace drift)
        src_pkg = project.package_of(importer)
        dst_pkg = project.package_of(imported)
        if src_pkg == dst_pkg:
            continue
        if imported in SHARED_LEAVES:
            continue
        info = project.modules[importer]
        if src_pkg not in LAYER_MAP:
            out.append(
                Violation(
                    rule="REP007",
                    path=info.path,
                    line=line,
                    message=(
                        f"package {src_pkg!r} is not declared in the layer map; "
                        "register it in repro.lint.rules.layering.LAYER_MAP"
                    ),
                )
            )
            continue
        if dst_pkg not in LAYER_MAP[src_pkg]:
            out.append(
                Violation(
                    rule="REP007",
                    path=info.path,
                    line=line,
                    message=(
                        f"layering violation: {_pkg_label(src_pkg)} may not "
                        f"import {_pkg_label(dst_pkg)} ({importer} -> "
                        f"{imported}); allowed: "
                        f"{sorted(LAYER_MAP[src_pkg]) or 'nothing'}"
                    ),
                )
            )
    return out


def _check_shared_leaves(project: ProjectContext) -> list[Violation]:
    out: list[Violation] = []
    for leaf in sorted(SHARED_LEAVES):
        info = project.modules.get(leaf)
        if info is None:
            continue
        for target, line in info.imports:
            if target == leaf:
                continue
            out.append(
                Violation(
                    rule="REP007",
                    path=info.path,
                    line=line,
                    message=(
                        f"{leaf} is a declared shared leaf and must not "
                        f"import other repro modules (imports {target})"
                    ),
                )
            )
    return out


def _check_cycles(project: ProjectContext) -> list[Violation]:
    out: list[Violation] = []
    for cycle in project.cycles():
        first = min(cycle[:-1])
        info = project.modules[first]
        out.append(
            Violation(
                rule="REP007",
                path=info.path,
                line=0,
                message=(
                    "module-level import cycle: " + " -> ".join(cycle)
                ),
            )
        )
    return out


def _check_import_symbols(ctx: "LintContext", project: ProjectContext) -> list[Violation]:
    """``from repro.x import name`` must name something repro.x defines."""
    out: list[Violation] = []
    for path, tree in ctx.iter_src():
        module = module_name_for(path)
        if module is None or module not in project.modules:
            continue
        is_pkg = path.endswith("__init__.py")
        package = module if is_pkg else module.rsplit(".", 1)[0]
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.level:
                parts = package.split(".")
                if node.level > len(parts):
                    continue
                base = ".".join(parts[: len(parts) - node.level + 1])
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or ""
            if not base or base.split(".")[0] != "repro":
                continue
            target: ModuleInfo | None = project.modules.get(base)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                if f"{base}.{alias.name}" in project.modules:
                    continue  # a submodule, not a symbol
                if alias.name in target.exports:
                    continue
                out.append(
                    Violation(
                        rule="REP007",
                        path=path,
                        line=node.lineno,
                        message=(
                            f"from {base} import {alias.name}: {base} defines "
                            "no such module-level name"
                        ),
                    )
                )
    return out


@register(
    "REP007",
    "import-layering",
    "module-level imports must follow the declared layer map, form no "
    "cycles, and name symbols that exist",
)
def check(ctx: "LintContext") -> list[Violation]:
    project = ctx.project
    violations = _check_layers(project)
    violations.extend(_check_shared_leaves(project))
    violations.extend(_check_cycles(project))
    violations.extend(_check_import_symbols(ctx, project))
    return violations
