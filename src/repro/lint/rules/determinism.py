"""REP002 — randomness and wall-clock must not leak into analysis results.

The paper's pipeline promises bit-identical reconstruction regardless of
execution strategy (§2.3–§2.6); that only holds while every random draw
flows through an explicitly seeded ``numpy.random.Generator`` that is
*passed in*, and no analysis code consults the wall clock or the
process-salted ``hash()``.  Inside the deterministic packages
(``core``, ``timeseries``, ``net``, ``datasets``, ``experiments``) this
rule bans, at any nesting level:

* calls on the legacy numpy global RNG (``np.random.seed``,
  ``np.random.rand``, ...) — constructing seeded generators
  (``default_rng``, ``SeedSequence``, bit generators) stays allowed;
* calls on the stdlib ``random`` module (``random.random`` etc.;
  ``random.Random(seed)`` instances are allowed);
* ``time.time()`` / ``time.time_ns()`` (``perf_counter`` is fine — it
  feeds telemetry, never results);
* ``datetime.now()`` / ``utcnow()`` / ``today()`` and ``date.today()``;
* the builtin ``hash()``, whose value for strings and bytes changes per
  process (PYTHONHASHSEED) — use ``zlib.crc32`` or ``hashlib`` instead.

Telemetry modules (``obs``) are deliberately out of scope: manifests
record real wall-clock time.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from ..registry import Violation, register
from .common import attribute_chain, import_aliases

if TYPE_CHECKING:  # pragma: no cover
    from ..driver import LintContext

SCOPES = (
    "src/repro/core/",
    "src/repro/timeseries/",
    "src/repro/net/",
    "src/repro/datasets/",
    "src/repro/experiments/",
)

#: numpy.random attributes that construct seeded, passable generators.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

_BANNED_DT = frozenset({"now", "utcnow", "today"})


def _resolve(
    chain: list[str],
    aliases: dict[str, str],
    froms: dict[str, tuple[str, str]],
) -> list[str]:
    """Expand the chain head through the module's imports."""
    head = chain[0]
    if head in aliases:
        return aliases[head].split(".") + chain[1:]
    if head in froms:
        module, attr = froms[head]
        return module.split(".") + [attr] + chain[1:]
    return chain


def _check_call(
    node: ast.Call,
    aliases: dict[str, str],
    froms: dict[str, tuple[str, str]],
) -> str | None:
    """The violation message for one call, or None when it is fine."""
    if isinstance(node.func, ast.Name) and node.func.id == "hash":
        return (
            "builtin hash() is process-salted for str/bytes and breaks "
            "cross-run determinism; use zlib.crc32 or hashlib"
        )
    chain = attribute_chain(node.func)
    if chain is None or len(chain) < 2:
        return None
    chain = _resolve(chain, aliases, froms)
    if len(chain) >= 3 and chain[0] == "numpy" and chain[1] == "random":
        if chain[2] not in ALLOWED_NP_RANDOM:
            return (
                f"legacy global-RNG call numpy.random.{chain[2]}(); draw from "
                "a passed-in numpy.random.Generator instead"
            )
        return None
    if chain[0] == "random" and len(chain) == 2 and chain[1] != "Random":
        return (
            f"stdlib random.{chain[1]}() uses hidden global state; pass a "
            "seeded numpy Generator (or random.Random) instead"
        )
    if chain[0] == "time" and chain[-1] in ("time", "time_ns"):
        return (
            f"wall-clock time.{chain[-1]}() in deterministic code; results "
            "must not depend on when they are computed"
        )
    if chain[0] == "datetime":
        # datetime.datetime.now(), datetime.date.today(), or a
        # from-imported datetime/date class: from datetime import datetime
        if len(chain) >= 3 and chain[1] in ("datetime", "date") and chain[2] in _BANNED_DT:
            return (
                f"wall-clock {'.'.join(chain[1:3])}() in deterministic code; "
                "take the timestamp as a parameter"
            )
        if len(chain) == 2 and chain[1] in _BANNED_DT:
            return (
                f"wall-clock datetime.{chain[1]}() in deterministic code; "
                "take the timestamp as a parameter"
            )
    return None


@register(
    "REP002",
    "determinism",
    "no global RNG, wall-clock, or process-salted hash() calls in "
    "core/timeseries/net/datasets/experiments",
)
def check(ctx: "LintContext") -> list[Violation]:
    violations: list[Violation] = []
    for path, tree in ctx.iter_src():
        if not any(path.startswith(scope) for scope in SCOPES):
            continue
        aliases, froms = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            message = _check_call(node, aliases, froms)
            if message is not None:
                violations.append(
                    Violation(rule="REP002", path=path, line=node.lineno, message=message)
                )
    return violations
