"""Figure 15 / Appendix B.2: the pre-Covid USC VPN block.

A heavily used block (a campus VPN on 128.125.52.0/24) whose users are
migrated to a different address space right as WFH begins — address
usage *drops* although VPN demand rose.  The pipeline should classify
the block change-sensitive and place a downward change near 2020-03-15.
Tracking where the users went is out of scope, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime

import numpy as np

from ..core.pipeline import BlockAnalysis, BlockPipeline
from ..net.events import Calendar, Migration
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import DynamicPoolUsage, round_grid
from .common import fmt_table

__all__ = ["Fig15Result", "run"]

EPOCH = datetime(2020, 1, 1)
MIGRATION_DATE = date(2020, 3, 15)


@dataclass(frozen=True)
class Fig15Result:
    analysis: BlockAnalysis
    migration_day: int

    @property
    def detection_days(self) -> tuple[int, ...]:
        return self.analysis.downward_change_days()

    def shape_checks(self) -> dict[str, bool]:
        return {
            "VPN block is change-sensitive": self.analysis.is_change_sensitive,
            "a downward change lands within 4 days of the migration": any(
                abs(d - self.migration_day) <= 4 for d in self.detection_days
            ),
        }


def run(seed: int = 65) -> Fig15Result:
    migration_day = (MIGRATION_DATE - EPOCH.date()).days
    calendar = Calendar(
        epoch=EPOCH,
        tz_hours=-8.0,
        events=(Migration(time_s=migration_day * 86_400.0, residual_fraction=0.02),),
    )
    # a VPN pool: many users during the day, mostly idle overnight.  Low
    # overnight availability keeps adaptive scans fast enough to preserve
    # diurnality in reconstruction (the Figure 5 effect works against
    # denser pools).
    usage = DynamicPoolUsage(
        pool_size=220, peak=0.60, trough=0.06, peak_hour=14.0, quiet_week_probability=0.0
    )
    truth = usage.generate(
        np.random.default_rng(seed), round_grid(84 * 86_400.0), calendar
    )
    order = probe_order(truth.n_addresses, seed)
    logs = [
        TrinocularObserver(name, phase_offset_s=173.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, name in enumerate("ejnw")
    ]
    analysis = BlockPipeline(detect_on_all=True).analyze(logs, truth.addresses)
    return Fig15Result(analysis=analysis, migration_day=migration_day)


def format_report(result: Fig15Result) -> str:
    rows = [
        ["change-sensitive", result.analysis.is_change_sensitive],
        ["migration day (2020-03-15)", result.migration_day],
        ["downward change days", ", ".join(map(str, result.detection_days)) or "none"],
    ]
    out = [
        "Figure 15: USC VPN block migration (B.2)",
        fmt_table(["quantity", "value"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
