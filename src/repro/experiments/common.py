"""Shared infrastructure for the per-table/figure experiments.

Experiments share worlds and expensive analysis campaigns through the
memoized factories here.  Scale is controlled by ``n_blocks``; the
defaults are laptop-sized (the paper analyses 5.2M blocks, we report
fractions and shapes at 10^2-10^3 block scale — see DESIGN.md §2).

The *campaign* implements the paper's §3.4 protocol for the real-world
results: change-sensitive blocks are identified on 2020m1-ejnw (January,
pre-Covid baseline), then changes are detected over all of 2020h1-ejnw
for exactly those blocks.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from ..core.aggregate import BlockRecord, GridAggregator
from ..core.pipeline import BlockAnalysis, BlockPipeline
from ..datasets.builder import DatasetBuilder, DatasetResult, block_record
from ..datasets.catalog import dataset
from ..net.world import WorldModel, scenario_baseline2023, scenario_covid2020
from ..obs.trace import get_tracer
from ..runtime import envconfig
from ..runtime.engine import CampaignEngine, RunMetrics, default_engine

__all__ = [
    "Campaign",
    "bench_scale",
    "control_campaign",
    "covid_campaign",
    "covid_world",
    "control_world",
    "fmt_table",
    "sparkline",
    "top_peaks",
]


def bench_scale(default: int = 400) -> int:
    """World size for experiments, overridable via REPRO_SCALE."""
    return envconfig.get_int("REPRO_SCALE", default)


@functools.lru_cache(maxsize=4)
def covid_world(n_blocks: int = 400, seed: int = 20, diurnal_boost: float = 1.0) -> WorldModel:
    """The early-2020 world (memoized per scale/seed)."""
    return WorldModel(
        scenario_covid2020(), n_blocks=n_blocks, seed=seed, diurnal_boost=diurnal_boost
    )


@functools.lru_cache(maxsize=4)
def control_world(n_blocks: int = 400, seed: int = 23, diurnal_boost: float = 1.0) -> WorldModel:
    """The 2023 control world (Spring Festival, no Covid)."""
    return WorldModel(
        scenario_baseline2023(), n_blocks=n_blocks, seed=seed, diurnal_boost=diurnal_boost
    )


@dataclass(frozen=True)
class Campaign:
    """A §3.4-style analysis campaign over one world.

    ``baseline`` is the dataset that defines change-sensitivity;
    ``analysis_window`` is the dataset over which changes are detected
    for those blocks.  ``records`` feed the :class:`GridAggregator`.
    """

    world: WorldModel
    baseline: DatasetResult
    records: tuple[BlockRecord, ...]
    analyses: dict[str, BlockAnalysis]
    first_day: int
    n_days: int
    metrics: tuple[RunMetrics, ...] = ()  # (baseline run, detection run)

    def aggregator(
        self, *, min_responsive: int = 5, min_change_sensitive: int = 5
    ) -> GridAggregator:
        agg = GridAggregator(
            min_responsive=min_responsive, min_change_sensitive=min_change_sensitive
        )
        return agg.add_all(list(self.records))

    def day_of(self, when: date) -> int:
        """UTC day index (since the world epoch) of a calendar date."""
        return (when - self.world.epoch.date()).days

    def date_of(self, day: int) -> date:
        return self.world.epoch.date() + timedelta(days=int(day))


def _run_campaign(
    world: WorldModel,
    baseline_name: str,
    window_name: str,
    *,
    engine: CampaignEngine | None = None,
) -> Campaign:
    """The §3.4 protocol as two engine runs over one shared code path.

    Run 1 analyzes every block on the baseline window; run 2 re-analyzes
    exactly the change-sensitive responsive blocks on the detection
    window (``detect_on_all`` so trend/CUSUM run regardless of how the
    longer window classifies them).  Both runs dispatch through the same
    :class:`~repro.runtime.engine.CampaignEngine` the dataset builder
    uses — serial or parallel is purely the executor's business.
    """
    engine = engine if engine is not None else default_engine()
    # tag every span the engine opens below (the two campaign spans and
    # their block/stage children) with the protocol's identity, so a
    # saved trace says which §3.4 run each subtree belongs to
    with get_tracer().tagged(
        protocol="s3.4",
        baseline=baseline_name,
        window=window_name,
        n_blocks=world.n_blocks,
    ):
        return _run_campaign_tagged(world, baseline_name, window_name, engine=engine)


def _run_campaign_tagged(
    world: WorldModel,
    baseline_name: str,
    window_name: str,
    *,
    engine: CampaignEngine,
) -> Campaign:
    builder = DatasetBuilder(world)
    baseline = builder.analyze(baseline_name, engine=engine)
    cs_set = set(baseline.change_sensitive())
    window = dataset(window_name)
    start = window.start_s(world.epoch)
    first_day = int(start // 86_400)
    n_days = int(window.duration_days)

    def baseline_responsive(cidr: str) -> bool:
        base = baseline.analyses.get(cidr)
        return base is not None and base.classification.responsive

    targets = [
        spec
        for spec in world.blocks
        if spec.block.cidr in cs_set and baseline_responsive(spec.block.cidr)
    ]
    windowed = builder.analyze(
        window,
        blocks=targets,
        pipeline=BlockPipeline(detect_on_all=True),
        engine=engine,
    )

    records: list[BlockRecord] = []
    for spec in world.blocks:
        cidr = spec.block.cidr
        analysis = windowed.analyses.get(cidr)
        if analysis is not None:
            records.append(
                block_record(spec, analysis, responsive=True, change_sensitive=True)
            )
        else:
            records.append(
                BlockRecord(
                    geo=spec.geo,
                    responsive=baseline_responsive(cidr),
                    change_sensitive=False,
                )
            )
    metrics = tuple(
        m for m in (baseline.metrics, windowed.metrics) if m is not None
    )
    return Campaign(
        world=world,
        baseline=baseline,
        records=tuple(records),
        analyses=dict(windowed.analyses),
        first_day=first_day,
        n_days=n_days,
        metrics=metrics,
    )


def covid_campaign(n_blocks: int | None = None, seed: int = 20) -> Campaign:
    """Baseline on 2020m1-ejnw, change detection over 2020h1-ejnw.

    The effective scale is resolved *before* the memoized call so that
    changing ``REPRO_SCALE`` between calls yields a fresh campaign
    instead of silently replaying the old scale's cache.
    """
    n = bench_scale(1600) if n_blocks is None else n_blocks
    return _cached_campaign("covid", n, seed)


def control_campaign(n_blocks: int | None = None, seed: int = 23) -> Campaign:
    """The 2023q1 control campaign (Appendix B.3/B.4)."""
    n = bench_scale(1600) if n_blocks is None else n_blocks
    return _cached_campaign("control", n, seed)


@functools.lru_cache(maxsize=4)
def _cached_campaign(kind: str, n_blocks: int, seed: int) -> Campaign:
    if kind == "covid":
        world = covid_world(n_blocks, seed, diurnal_boost=3.0)
        return _run_campaign(world, "2020m1-ejnw", "2020h1-ejnw")
    world = control_world(n_blocks, seed, diurnal_boost=3.0)
    return _run_campaign(world, "2023q1-ejnw", "2023q1-ejnw")


# ---------------------------------------------------------------------------
# plain-text reporting helpers (no matplotlib offline)
# ---------------------------------------------------------------------------
def fmt_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


_SPARK = " .:-=+*#%@"


def sparkline(values: np.ndarray) -> str:
    """A coarse character sparkline for daily series."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return ""
    hi = np.nanmax(v)
    if not np.isfinite(hi) or hi <= 0:
        return " " * v.size
    idx = np.clip((v / hi * (len(_SPARK) - 1)).astype(int), 0, len(_SPARK) - 1)
    return "".join(_SPARK[i] for i in idx)


def top_peaks(values: np.ndarray, k: int = 3) -> list[tuple[int, float]]:
    """The k largest (index, value) entries of a daily series."""
    v = np.asarray(values, dtype=np.float64)
    order = np.argsort(v)[::-1][:k]
    return [(int(i), float(v[i])) for i in order]
