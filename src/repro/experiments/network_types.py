"""§2.6 future work: distinguishing workplace from home networks.

The paper suggests "detect daily bumps and count how many occur to
distinguish workplace networks from home networks."  This experiment
implements and validates that idea: build a mixed population of
workplace and home blocks with known labels, reconstruct them from
probe logs, classify each with :class:`NetworkTypeClassifier` (using
only the reconstructed counts and a longitude-derived timezone), and
score the confusion matrix.  Expected shapes: high accuracy on both
classes; pool blocks mostly land in "home" or "ambiguous", never
flooding "workplace".
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.network_type import NetworkTypeClassifier, timezone_from_longitude
from ..core.pipeline import BlockPipeline
from ..net.events import Calendar
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import DynamicPoolUsage, HomeEveningUsage, WorkplaceUsage, round_grid
from .common import fmt_table

__all__ = ["NetworkTypesResult", "run"]

EPOCH = datetime(2020, 1, 1)
DURATION_DAYS = 28
TZ_CASES = (-8.0, 0.0, 5.5, 8.0)  # LA, London, Delhi, Beijing


@dataclass(frozen=True)
class NetworkTypesResult:
    confusion: dict[tuple[str, str], int]  # (true kind, predicted label) -> count
    n_blocks: int

    def accuracy(self, kind: str, label: str) -> float:
        total = sum(c for (k, _), c in self.confusion.items() if k == kind)
        if total == 0:
            return float("nan")
        return self.confusion.get((kind, label), 0) / total

    def shape_checks(self) -> dict[str, bool]:
        return {
            "workplace blocks mostly classified workplace": self.accuracy(
                "workplace", "workplace"
            )
            >= 0.7,
            "home blocks mostly classified home": self.accuracy("home", "home") >= 0.7,
            "workplace blocks never classified home": self.accuracy("workplace", "home")
            <= 0.1,
            "pools do not flood the workplace class": self.accuracy("pool", "workplace")
            <= 0.3,
        }


def _blocks(seed: int):
    rng = np.random.default_rng(seed)
    cases = []
    for i, tz in enumerate(TZ_CASES):
        for j in range(3):
            s = seed + 101 * i + j
            cases.append(
                ("workplace", tz, WorkplaceUsage(n_desktops=int(rng.integers(24, 80)), n_servers=2), s)
            )
            cases.append(
                ("home", tz, HomeEveningUsage(n_devices=int(rng.integers(16, 40))), s + 17)
            )
            cases.append(
                (
                    "pool",
                    tz,
                    DynamicPoolUsage(
                        pool_size=int(rng.integers(64, 160)), quiet_week_probability=0.0
                    ),
                    s + 29,
                )
            )
    return cases


def run(seed: int = 33) -> NetworkTypesResult:
    classifier = NetworkTypeClassifier()
    pipeline = BlockPipeline()
    confusion: dict[tuple[str, str], int] = {}
    cases = _blocks(seed)
    for kind, tz, usage, block_seed in cases:
        calendar = Calendar(epoch=EPOCH, tz_hours=tz)
        truth = usage.generate(
            np.random.default_rng(block_seed),
            round_grid(DURATION_DAYS * 86_400.0),
            calendar,
        )
        order = probe_order(truth.n_addresses, block_seed)
        logs = [
            TrinocularObserver(name, phase_offset_s=113.0 * (i + 1)).observe(
                truth, order, rng=np.random.default_rng([block_seed, i])
            )
            for i, name in enumerate("ejnw")
        ]
        analysis = pipeline.analyze(logs, truth.addresses)
        # the classifier only gets what a real analyst has: counts and a
        # longitude-equivalent timezone estimate
        est_tz = timezone_from_longitude(tz * 15.0)
        verdict = classifier.classify(
            analysis.counts, tz_hours=est_tz, epoch_weekday=EPOCH.weekday()
        )
        key = (kind, verdict.label)
        confusion[key] = confusion.get(key, 0) + 1
    return NetworkTypesResult(confusion=confusion, n_blocks=len(cases))


def format_report(result: NetworkTypesResult) -> str:
    labels = ("workplace", "home", "ambiguous")
    rows = []
    for kind in ("workplace", "home", "pool"):
        rows.append(
            [kind] + [result.confusion.get((kind, label), 0) for label in labels]
        )
    out = [
        "S2.6 future work: workplace-vs-home classification "
        f"({result.n_blocks} labelled blocks)",
        fmt_table(["true kind \\ predicted", *labels], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
