"""Figure 1: the running-example block (128.9.144.0/24 at USC).

A workplace block in Los Angeles with work-week diurnal activity, the
MLK (2020-01-20) and Presidents' Day (2020-02-17) holidays, and WFH
beginning 2020-03-15.  The experiment reproduces all three panels:

(a) active addresses over the quarter (|E(b)| ~ 88, 8-18 active);
(b) the STL trend/seasonal/residual decomposition;
(c) CUSUM detection flagging a single change around 2020-03-15.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timedelta

import numpy as np

from ..core.pipeline import BlockAnalysis, BlockPipeline
from ..net.events import Calendar, Holiday, WorkFromHome
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import WorkplaceUsage, round_grid
from .common import fmt_table

__all__ = ["Fig1Result", "run", "build_usc_block"]

EPOCH = datetime(2020, 1, 1)
WFH_DATE = date(2020, 3, 15)
QUARTER_DAYS = 84


@dataclass(frozen=True)
class Fig1Result:
    analysis: BlockAnalysis
    eb_size: int
    peak_count: float
    weekend_floor: float
    detected_days: tuple[date, ...]
    wfh_date: date

    @property
    def detection_error_days(self) -> int | None:
        """Days between the detected change and the true WFH start."""
        if not self.detected_days:
            return None
        return min(abs((d - self.wfh_date).days) for d in self.detected_days)

    def shape_checks(self) -> dict[str, bool]:
        c = self.analysis.classification
        err = self.detection_error_days
        return {
            "block is change-sensitive": c.is_change_sensitive,
            "weekday peaks well above the weekend floor": (
                self.peak_count > 1.5 * max(self.weekend_floor, 1.0)
            ),
            "WFH detected within 4 days of 2020-03-15": err is not None and err <= 4,
        }


def build_usc_block(seed: int = 1144):
    """The USC-like ground truth: calendar, truth, probe order."""
    calendar = Calendar(
        epoch=EPOCH,
        tz_hours=-8.0,
        events=(
            Holiday(first=date(2020, 1, 20), name="MLK Day"),
            Holiday(first=date(2020, 2, 17), name="Presidents' Day"),
            WorkFromHome(start=WFH_DATE, work_factor=0.05, ramp_days=3),
        ),
    )
    usage = WorkplaceUsage(n_desktops=16, n_servers=2, presence=0.8, stale_addresses=70)
    rng = np.random.default_rng(seed)
    truth = usage.generate(rng, round_grid(QUARTER_DAYS * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, seed)
    return calendar, truth, order


def run(seed: int = 1144) -> Fig1Result:
    """Simulate and analyze the Figure 1 block."""
    calendar, truth, order = build_usc_block(seed)
    logs = [
        TrinocularObserver(name, phase_offset_s=137.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, name in enumerate("ejnw")
    ]
    analysis = BlockPipeline(detect_on_all=True).analyze(logs, truth.addresses)

    day_groups = analysis.counts.daily_groups()
    weekday_max = [g.max() for d, g in day_groups.items() if calendar.is_workday(d) and d < 70]
    weekend_max = [g.max() for d, g in day_groups.items() if calendar.is_weekend(d) and d < 70]
    detected = tuple(
        EPOCH.date() + timedelta(days=e.day)
        for e in (analysis.changes.human_candidates if analysis.changes else ())
        if e.is_downward
    )
    return Fig1Result(
        analysis=analysis,
        eb_size=truth.n_addresses,
        peak_count=float(np.mean(weekday_max)) if weekday_max else float("nan"),
        weekend_floor=float(np.mean(weekend_max)) if weekend_max else float("nan"),
        detected_days=detected,
        wfh_date=WFH_DATE,
    )


def format_report(result: Fig1Result) -> str:
    c = result.analysis.classification
    rows = [
        ["|E(b)| (probed addresses)", result.eb_size],
        ["mean weekday peak (pre-WFH)", f"{result.peak_count:.1f}"],
        ["mean weekend peak (pre-WFH)", f"{result.weekend_floor:.1f}"],
        ["diurnal energy ratio", f"{c.diurnal.energy_ratio:.2f}" if c.diurnal else "-"],
        ["change-sensitive", c.is_change_sensitive],
        ["detected downward changes", ", ".join(str(d) for d in result.detected_days) or "none"],
        ["true WFH start", result.wfh_date],
        ["detection error (days)", result.detection_error_days],
    ]
    return "Figure 1: USC example block\n" + fmt_table(["quantity", "value"], rows)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
