"""§3.7: validation by location — the UAE and Slovenia gridcells.

For each of the paper's two randomly selected gridcells — (24N, 54E)
around Abu Dhabi and (46N, 14E) around Ljubljana — sample up to 25
change-sensitive blocks, compare CUSUM detections to the country's WFH
date, and verify that the detection peak concentrates on the true WFH
period.  Expected shapes: high precision (paper: 100% at both), a
detection peak within days of the WFH date, and a peak day clearly
above the typical day.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from datetime import date

import numpy as np

from ..net.events import WorkFromHome
from ..net.geo import GridCell
from .common import Campaign, covid_campaign, fmt_table

__all__ = ["LocationResult", "LocationsResult", "run", "UAE_CELL", "SLOVENIA_CELL"]

UAE_CELL = GridCell(24, 54)
SLOVENIA_CELL = GridCell(46, 14)
TOLERANCE_DAYS = 4


@dataclass(frozen=True)
class LocationResult:
    cell: GridCell
    country: str
    wfh_date: date
    n_blocks_examined: int
    n_detected_near: int  # blocks with a downward change near the WFH date
    n_true_positive: int  # ...that truly followed WFH (ground truth)
    n_changed_in_truth: int  # blocks whose ground truth really changed
    peak_fraction: float
    median_fraction: float

    @property
    def precision(self) -> float:
        if self.n_detected_near == 0:
            return float("nan")
        return self.n_true_positive / self.n_detected_near

    @property
    def recall(self) -> float:
        if self.n_changed_in_truth == 0:
            return float("nan")
        return self.n_true_positive / self.n_changed_in_truth


@dataclass(frozen=True)
class LocationsResult:
    locations: tuple[LocationResult, ...]

    def shape_checks(self) -> dict[str, bool]:
        checks: dict[str, bool] = {}
        for loc in self.locations:
            tag = loc.country
            checks[f"{tag}: blocks examined"] = loc.n_blocks_examined > 0
            if loc.n_detected_near:
                checks[f"{tag}: precision is high (>= 80%)"] = loc.precision >= 0.8
            checks[f"{tag}: WFH-period peak dominates typical days"] = (
                loc.peak_fraction > 2 * max(loc.median_fraction, 1e-9)
                or loc.peak_fraction > 0.1
            )
        return checks


def _examine(campaign: Campaign, cell: GridCell, country: str, sample: int = 25) -> LocationResult:
    wfh_date = campaign.world.scenario.wfh_dates[country]
    wfh_day = campaign.day_of(wfh_date)

    cell_blocks = [
        (cidr, analysis)
        for cidr, analysis in campaign.analyses.items()
        if campaign.world.blocks[_index_of(cidr)].geo.gridcell == cell
    ]
    # crc32, not hash(): the builtin is PYTHONHASHSEED-salted for strings,
    # so the sampled block subset would differ between processes
    rng = np.random.default_rng(zlib.crc32(country.encode()) & 0xFFFF)
    if len(cell_blocks) > sample:
        picked = rng.permutation(len(cell_blocks))[:sample]
        cell_blocks = [cell_blocks[i] for i in picked]

    detected_near = true_pos = truth_changed = 0
    for cidr, analysis in cell_blocks:
        spec = campaign.world.blocks[_index_of(cidr)]
        followed = any(isinstance(e, WorkFromHome) for e in spec.events)
        truth_changed += int(followed)
        near = [
            e
            for e in (analysis.changes.human_candidates if analysis.changes else ())
            if e.is_downward and abs(e.day - wfh_day) <= TOLERANCE_DAYS
        ]
        if near:
            detected_near += 1
            true_pos += int(followed)

    agg = campaign.aggregator()
    down, _ = agg.cell_daily_fractions(cell, campaign.first_day, campaign.n_days)
    lo = max(wfh_day - TOLERANCE_DAYS - campaign.first_day, 0)
    hi = min(wfh_day + TOLERANCE_DAYS + 1 - campaign.first_day, down.size)
    peak = float(down[lo:hi].max()) if lo < hi else 0.0
    median = float(np.median(down)) if down.size else 0.0
    return LocationResult(
        cell=cell,
        country=country,
        wfh_date=wfh_date,
        n_blocks_examined=len(cell_blocks),
        n_detected_near=detected_near,
        n_true_positive=true_pos,
        n_changed_in_truth=truth_changed,
        peak_fraction=peak,
        median_fraction=median,
    )


def _index_of(cidr: str) -> int:
    """Block index from its CIDR (WorldModel assigns index+1 << 8)."""
    from ..net.addresses import BlockAddress

    return BlockAddress.from_cidr(cidr).index - 1


def run(campaign: Campaign | None = None) -> LocationsResult:
    campaign = campaign or covid_campaign()
    return LocationsResult(
        locations=(
            _examine(campaign, UAE_CELL, "United Arab Emirates"),
            _examine(campaign, SLOVENIA_CELL, "Slovenia"),
        )
    )


def format_report(result: LocationsResult) -> str:
    rows = [
        [
            loc.country,
            str(loc.cell),
            str(loc.wfh_date),
            loc.n_blocks_examined,
            loc.n_detected_near,
            f"{loc.precision:.0%}" if loc.n_detected_near else "-",
            f"{loc.recall:.0%}" if loc.n_changed_in_truth else "-",
            f"{loc.peak_fraction:.1%}",
        ]
        for loc in result.locations
    ]
    out = [
        "S3.7: validation by location (paper: precision 100%, recall 73%/77%)",
        fmt_table(
            ["country", "cell", "WFH date", "blocks", "detected", "precision", "recall", "peak"],
            rows,
        ),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
