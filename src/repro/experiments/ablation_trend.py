"""§2.5 ablation: STL versus the naive seasonality model.

The paper "considered two models ... and adopted STL after comparing the
two and finding it more robust to outliers."  We reproduce that design
decision: a synthetic diurnal series with a known step trend is injected
with impulsive outliers; both decompositions recover the trend, and the
robust STL should track the true step with lower error than the naive
moving-average model, while both behave comparably on clean data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..timeseries.naive import naive_decompose
from ..timeseries.stl import stl_decompose
from .common import fmt_table

__all__ = ["AblationResult", "run"]


@dataclass(frozen=True)
class AblationResult:
    clean_stl_rmse: float
    clean_naive_rmse: float
    outlier_stl_rmse: float
    outlier_naive_rmse: float

    def shape_checks(self) -> dict[str, bool]:
        return {
            # the step discontinuity itself costs ~1 rmse under any
            # smoother; what matters is that clean-data error is bounded
            "both models track the clean trend (rmse < 1.5)": (
                self.clean_stl_rmse < 1.5 and self.clean_naive_rmse < 1.5
            ),
            "clean-data error is comparable between models": (
                self.clean_stl_rmse < 1.3 * self.clean_naive_rmse
            ),
            "STL is more robust to outliers than naive": (
                self.outlier_stl_rmse < self.outlier_naive_rmse
            ),
            "outliers barely move robust STL (< 2x clean rmse)": (
                self.outlier_stl_rmse < 2.0 * max(self.clean_stl_rmse, 0.05)
            ),
        }


def _make_series(rng: np.random.Generator, n_days: int = 42):
    n = 24 * n_days
    t = np.arange(n)
    true_trend = np.where(t < n // 2, 14.0, 8.0)
    seasonal = 5.0 * np.sin(2 * np.pi * t / 24.0) + 1.5 * np.sin(2 * np.pi * t / 168.0)
    noise = rng.normal(0, 0.4, n)
    return true_trend, true_trend + seasonal + noise


def _rmse(a: np.ndarray, b: np.ndarray, margin: int = 24) -> float:
    """Trend error away from the edges (both models have edge bias)."""
    return float(np.sqrt(np.mean((a[margin:-margin] - b[margin:-margin]) ** 2)))


def run(seed: int = 31, outlier_magnitude: float = 60.0, n_outliers: int = 20) -> AblationResult:
    rng = np.random.default_rng(seed)
    true_trend, clean = _make_series(rng)

    dirty = clean.copy()
    hits = rng.choice(clean.size, size=n_outliers, replace=False)
    dirty[hits] += outlier_magnitude * rng.choice((-1.0, 1.0), size=n_outliers)

    period = 24
    clean_stl = stl_decompose(clean, period, outer_iterations=1).trend
    clean_naive = naive_decompose(clean, period).trend
    dirty_stl = stl_decompose(dirty, period, outer_iterations=2).trend
    dirty_naive = naive_decompose(dirty, period).trend

    return AblationResult(
        clean_stl_rmse=_rmse(clean_stl, true_trend),
        clean_naive_rmse=_rmse(clean_naive, true_trend),
        outlier_stl_rmse=_rmse(dirty_stl, true_trend),
        outlier_naive_rmse=_rmse(dirty_naive, true_trend),
    )


def format_report(result: AblationResult) -> str:
    rows = [
        ["clean series", f"{result.clean_stl_rmse:.3f}", f"{result.clean_naive_rmse:.3f}"],
        [
            "with outliers",
            f"{result.outlier_stl_rmse:.3f}",
            f"{result.outlier_naive_rmse:.3f}",
        ],
    ]
    out = [
        "S2.5 ablation: trend-recovery RMSE, STL vs naive decomposition",
        fmt_table(["input", "STL rmse", "naive rmse"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
