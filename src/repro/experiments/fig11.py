"""Figure 11 / Appendix B.1: two representative change-sensitive blocks.

(a) a block that is diurnal *every* day of the week (UAE-style home/pool
    usage) whose diurnality disappears at the 2020-03-20 lockdown —
    detected as a downward human-candidate change;
(b) a block with a mid-February ISP renumbering: activity stops, then
    resumes on different addresses — the pipeline must flag the paired
    down/up changes as outage-like, not human.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime

import numpy as np

from ..core.pipeline import BlockAnalysis, BlockPipeline
from ..net.events import Calendar, Renumbering, WorkFromHome
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import DynamicPoolUsage, round_grid
from .common import fmt_table

__all__ = ["Fig11Result", "run"]

EPOCH = datetime(2020, 1, 1)
LOCKDOWN = date(2020, 3, 20)
RENUMBER_DAY = 45  # mid-February


@dataclass(frozen=True)
class Fig11Result:
    lockdown_block: BlockAnalysis
    renumber_block: BlockAnalysis

    def lockdown_detection_days(self) -> tuple[int, ...]:
        return self.lockdown_block.downward_change_days()

    def shape_checks(self) -> dict[str, bool]:
        lockdown_day = (LOCKDOWN - EPOCH.date()).days
        down_days = self.lockdown_detection_days()
        renumber_events = (
            self.renumber_block.changes.events if self.renumber_block.changes else ()
        )
        outage_like = [e for e in renumber_events if e.cause == "outage-like"]
        human_near_renumber = [
            e
            for e in renumber_events
            if e.cause == "human-candidate" and abs(e.day - RENUMBER_DAY) <= 4
        ]
        return {
            "(a) lockdown block is change-sensitive": self.lockdown_block.is_change_sensitive,
            "(a) downward change within 4 days of lockdown": any(
                abs(d - lockdown_day) <= 4 for d in down_days
            ),
            "(b) renumbering yields paired outage-like changes": len(outage_like) >= 2,
            "(b) renumbering is not misread as human activity": not human_near_renumber,
        }


def _analyze(usage, calendar, seed: int) -> BlockAnalysis:
    # run past the end of March so the late-March lockdown clears the
    # detector's trailing boundary guard
    truth = usage.generate(
        np.random.default_rng(seed), round_grid(112 * 86_400.0), calendar
    )
    order = probe_order(truth.n_addresses, seed)
    logs = [
        TrinocularObserver(name, phase_offset_s=149.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, name in enumerate("ejnw")
    ]
    return BlockPipeline(detect_on_all=True).analyze(logs, truth.addresses)


def run(seed: int = 64) -> Fig11Result:
    # (a) seven-day diurnal block under a lockdown (UAE-style)
    lockdown_cal = Calendar(
        epoch=EPOCH,
        tz_hours=4.0,
        events=(WorkFromHome(start=LOCKDOWN, work_factor=0.1, pool_factor=0.35),),
    )
    lockdown = _analyze(
        DynamicPoolUsage(pool_size=24, peak=0.85, trough=0.02, quiet_week_probability=0.0),
        lockdown_cal,
        seed,
    )
    # (b) renumbering block: users move to other addresses mid-February
    renumber_cal = Calendar(
        epoch=EPOCH,
        tz_hours=3.0,
        events=(
            Renumbering(time_s=RENUMBER_DAY * 86_400.0, gap_s=36 * 3600.0, shift=100),
        ),
    )
    renumber = _analyze(
        DynamicPoolUsage(pool_size=110, peak=0.9, trough=0.35, quiet_week_probability=0.0),
        renumber_cal,
        seed + 1,
    )
    return Fig11Result(lockdown_block=lockdown, renumber_block=renumber)


def format_report(result: Fig11Result) -> str:
    rows = []
    for name, analysis in (
        ("(a) lockdown", result.lockdown_block),
        ("(b) renumbering", result.renumber_block),
    ):
        events = analysis.changes.events if analysis.changes else ()
        rows.append(
            [
                name,
                analysis.is_change_sensitive,
                len([e for e in events if e.cause == "human-candidate"]),
                len([e for e in events if e.cause == "outage-like"]),
            ]
        )
    out = [
        "Figure 11: representative blocks (B.1)",
        fmt_table(["block", "change-sensitive", "human changes", "outage-like"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
