"""Figure 4 / Appendix C: reconstruction vs ground truth for two blocks.

An easy block (moderately used workplace, fast scans) reconstructs with
high correlation; a hard block (dense dynamic pool, long scans) shows
the low-pass effect of adaptive probing — flattened peaks, raised
valleys, lower correlation.  The paper reports r = 0.89 vs r = 0.40.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.reconstruction import reconstruct
from ..net.events import Calendar
from ..net.observations import merge_observations
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import DynamicPoolUsage, WorkplaceUsage, round_grid
from ..timeseries.series import SECONDS_PER_HOUR, TimeSeries
from .common import fmt_table

__all__ = ["Fig4Result", "run"]

DURATION_DAYS = 14
EPOCH = datetime(2020, 2, 19)


@dataclass(frozen=True)
class BlockComparison:
    name: str
    eb_size: int
    correlation: float
    truth_peak: float
    recon_peak: float

    @property
    def peak_shortfall(self) -> float:
        """Relative underestimate of the peak (adaptive probing lag)."""
        if self.truth_peak <= 0:
            return float("nan")
        return 1.0 - self.recon_peak / self.truth_peak


@dataclass(frozen=True)
class Fig4Result:
    easy: BlockComparison
    hard: BlockComparison

    def shape_checks(self) -> dict[str, bool]:
        return {
            "easy block correlates strongly (r >= 0.7)": self.easy.correlation >= 0.7,
            "hard block correlates worse than easy": self.hard.correlation
            < self.easy.correlation,
            "hard block still carries signal (r > 0)": self.hard.correlation > 0.0,
            "reconstruction underestimates the peak": self.easy.peak_shortfall >= 0.0,
        }


def _compare(name: str, usage, seed: int) -> BlockComparison:
    calendar = Calendar(epoch=EPOCH, tz_hours=0.0)
    rng = np.random.default_rng(seed)
    truth = usage.generate(rng, round_grid(DURATION_DAYS * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, seed)
    logs = [
        TrinocularObserver(obs, phase_offset_s=131.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, obs in enumerate("ejnw")
    ]
    recon = reconstruct(merge_observations(logs), truth.addresses, truth.col_times)

    truth_series = TimeSeries(truth.col_times, truth.counts()).resample_mean(SECONDS_PER_HOUR)
    recon_series = recon.counts.resample_mean(SECONDS_PER_HOUR)
    r = truth_series.pearson(recon_series)
    good = ~np.isnan(recon_series.values)
    return BlockComparison(
        name=name,
        eb_size=truth.n_addresses,
        correlation=r,
        truth_peak=float(np.nanmax(truth_series.values)),
        recon_peak=float(np.nanmax(recon_series.values[good])) if good.any() else float("nan"),
    )


def run(seed: int = 27) -> Fig4Result:
    easy = _compare(
        "easy (sparse workplace, |E(b)|~76)",
        WorkplaceUsage(n_desktops=60, n_servers=2, stale_addresses=14),
        seed,
    )
    hard = _compare(
        "hard (dense pool, |E(b)|~226)",
        DynamicPoolUsage(pool_size=220, peak=0.65, trough=0.1, stale_addresses=6),
        seed + 1,
    )
    return Fig4Result(easy=easy, hard=hard)


def format_report(result: Fig4Result) -> str:
    rows = [
        [
            b.name,
            b.eb_size,
            f"{b.correlation:.2f}",
            f"{b.truth_peak:.0f}",
            f"{b.recon_peak:.0f}",
        ]
        for b in (result.easy, result.hard)
    ]
    out = [
        "Figure 4: reconstruction vs ground truth (paper: r=0.89 easy, r=0.40 hard)",
        fmt_table(["block", "|E(b)|", "Pearson r", "truth peak", "recon peak"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
