"""One experiment module per paper table/figure (see DESIGN.md §4).

Each module exposes ``run(...) -> <Result>`` returning a dataclass with
``shape_checks()`` (the reproduction assertions), ``format_report`` for a
plain-text rendering, and ``main()`` so it can run standalone via
``python -m repro.experiments.<name>`` or the ``repro`` CLI.
"""

from . import (
    ablation_repair,
    ablation_trend,
    additional_probing,
    appendix_e,
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12_13,
    fig14,
    fig15,
    locations,
    network_types,
    retraining,
    table2,
    table3,
    table4,
    table5,
)

#: experiment name -> module, for the CLI
REGISTRY = {
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12_13": fig12_13,
    "fig14": fig14,
    "fig15": fig15,
    "locations": locations,
    "additional-probing": additional_probing,
    "ablation-trend": ablation_trend,
    "ablation-repair": ablation_repair,
    "network-types": network_types,
    "retraining": retraining,
    "appendix-e": appendix_e,
}

__all__ = ["REGISTRY"]
