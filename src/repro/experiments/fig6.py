"""Figure 6: mitigating congestive loss with 1-loss repair (§3.3).

One block is observed through a congested path by observer w (diurnal
loss peaking in the destination's busy hours) and through clean paths by
c/e/g/n.  Two views are reproduced:

* panels (a)-(c): the per-address presence rasters — quantified as the
  mean length of uninterrupted inferred-presence runs.  Clean observers
  see long green runs (addresses hold state for days); the congested
  observer's runs are chopped short by lost replies, and 1-loss repair
  restores them;
* panel (d): per-observer mean reply rates without and with repair.
  Expected shapes: the lossy observer sits well below the others and
  biases the all-observer merge; repair restores it most of the way
  while moving clean observers barely at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.repair import one_loss_repair
from ..net.events import Calendar
from ..net.loss import BernoulliLoss, DiurnalCongestionLoss
from ..net.observations import ObservationSeries, merge_observations
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import SparseUsage, round_grid
from .common import fmt_table

__all__ = ["Fig6Result", "run"]

OBSERVERS = ("c", "e", "g", "n", "w")
LOSSY = "w"
DURATION_DAYS = 28
EPOCH = datetime(2023, 4, 1)


@dataclass(frozen=True)
class Fig6Result:
    rates_raw: dict[str, float]
    rates_repaired: dict[str, float]
    #: panels (a)-(c): mean presence-run length per observer, in probes
    run_raw: dict[str, float]
    run_repaired: dict[str, float]

    @property
    def clean_mean_raw(self) -> float:
        return float(
            np.mean([v for k, v in self.rates_raw.items() if k not in (LOSSY, "all")])
        )

    def shape_checks(self) -> dict[str, bool]:
        raw, rep = self.rates_raw, self.rates_repaired
        clean = self.clean_mean_raw
        clean_runs = np.mean([v for k, v in self.run_raw.items() if k != LOSSY])
        return {
            "(a) congestion chops the lossy observer's presence runs": (
                self.run_raw[LOSSY] < 0.6 * clean_runs
            ),
            "(c) repair restores the lossy observer's runs": (
                self.run_repaired[LOSSY] > 1.5 * self.run_raw[LOSSY]
            ),
            "lossy observer sits below the clean consensus": raw[LOSSY] < clean - 0.03,
            "loss biases the unrepaired merge": raw["all"] < clean - 0.01,
            "repair lifts the lossy observer substantially": (
                rep[LOSSY] - raw[LOSSY] > 3 * max(
                    rep[o] - raw[o] for o in OBSERVERS if o != LOSSY
                )
            ),
            "repaired merge approaches the clean consensus": abs(rep["all"] - clean)
            < abs(raw["all"] - clean),
        }


def run(seed: int = 63) -> Fig6Result:
    """Simulate the Figure 6 block and measure reply rates."""
    calendar = Calendar(epoch=EPOCH, tz_hours=8.0)
    # a Chinese destination whose addresses hold state for days (like the
    # paper's sample block: long green runs in the raster plots)
    usage = SparseUsage(n_addresses=120, mean_on_days=6.0, mean_off_days=3.0, stale_addresses=8)
    truth = usage.generate(
        np.random.default_rng(seed), round_grid(DURATION_DAYS * 86_400.0), calendar
    )
    order = probe_order(truth.n_addresses, seed)
    congested = DiurnalCongestionLoss(
        base=0.04, peak=0.50, peak_hour=21.0, width_hours=11.0, tz_hours=8.0
    )
    clean = BernoulliLoss(0.004)

    logs: dict[str, ObservationSeries] = {}
    for i, name in enumerate(OBSERVERS):
        loss = congested if name == LOSSY else clean
        logs[name] = TrinocularObserver(name, phase_offset_s=101.0 * (i + 1)).observe(
            truth, order, loss, np.random.default_rng([seed, i])
        )

    rates_raw = {name: series.reply_rate() for name, series in logs.items()}
    rates_raw["all"] = merge_observations(list(logs.values())).reply_rate()
    repaired = {name: one_loss_repair(series) for name, series in logs.items()}
    rates_repaired = {name: series.reply_rate() for name, series in repaired.items()}
    rates_repaired["all"] = merge_observations(list(repaired.values())).reply_rate()
    return Fig6Result(
        rates_raw=rates_raw,
        rates_repaired=rates_repaired,
        run_raw={name: mean_presence_run(series) for name, series in logs.items()},
        run_repaired={name: mean_presence_run(series) for name, series in repaired.items()},
    )


def mean_presence_run(series) -> float:
    """Mean length (in probes) of uninterrupted positive-reply runs per
    address — the quantitative version of Figure 6's green raster rows."""
    runs: list[int] = []
    for addr in series.probed_addresses():
        _, results = series.address_view(int(addr))
        current = 0
        for r in results:
            if r:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
    return float(np.mean(runs)) if runs else 0.0


def format_report(result: Fig6Result) -> str:
    rows = [
        [
            name,
            f"{result.rates_raw[name]:.3f}",
            f"{result.rates_repaired[name]:.3f}",
            f"{result.rates_repaired[name] - result.rates_raw[name]:+.3f}",
            f"{result.run_raw[name]:.1f}" if name in result.run_raw else "-",
            f"{result.run_repaired[name]:.1f}" if name in result.run_repaired else "-",
        ]
        for name in (*OBSERVERS, "all")
    ]
    out = [
        "Figure 6: reply rates (panel d) and presence-run lengths (panels a-c)",
        f"(observer {LOSSY!r} probes through a diurnally congested link)",
        fmt_table(
            ["observer", "raw rate", "repaired", "delta", "raw run", "repaired run"], rows
        ),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
