"""Figure 2: address reconstruction on the paper's toy 4-address block.

The paper walks a 4-address block through 10 rounds: addresses flip
state mid-stream, scanning covers a varying subset per round, and the
estimate row reads "-, 2, 2, 2, 3, 2, 2, 3, 4, 4" against a truth row of
"2, 2, 2, 2, 2, 2, 4, 4, 4, 4".  This experiment reconstructs exactly
that table from an explicit probe schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reconstruction import reconstruct
from ..net.observations import ObservationSeries

__all__ = ["Fig2Result", "run", "TRUTH_TABLE", "EXPECTED_ESTIMATES"]

#: per-address truth over the 10 rounds (addresses .1-.4)
TRUTH_TABLE = np.array(
    [
        [0, 0, 0, 0, 1, 1, 1, 1, 1, 1],  # .1
        [0, 0, 0, 0, 0, 0, 1, 1, 1, 1],  # .2
        [1, 1, 1, 1, 0, 0, 1, 1, 1, 1],  # .3
        [1, 1, 1, 1, 1, 1, 1, 1, 1, 1],  # .4
    ],
    dtype=bool,
)

#: which addresses are probed each round (0-based address index)
SCAN_SCHEDULE: tuple[tuple[int, ...], ...] = (
    (0, 2),  # round 1: .1, .3          -> incomplete, no estimate
    (1, 3),  # round 2: .2, .4          -> 2
    (0,),  # round 3                    -> 2
    (2,),  # round 4                    -> 2
    (0,),  # round 5: .1 now active     -> 3 (stale .3 still counted)
    (2,),  # round 6: .3 gone           -> 2
    (3,),  # round 7                    -> 2
    (2,),  # round 8: .3 back           -> 3
    (1,),  # round 9: .2 now active     -> 4
    (0,),  # round 10                   -> 4
)

EXPECTED_ESTIMATES = [None, 2, 2, 2, 3, 2, 2, 3, 4, 4]
TRUE_COUNTS = [2, 2, 2, 2, 2, 2, 4, 4, 4, 4]


@dataclass(frozen=True)
class Fig2Result:
    estimates: list[int | None]
    truth: list[int]

    @property
    def matches_paper(self) -> bool:
        return self.estimates == EXPECTED_ESTIMATES and self.truth == TRUE_COUNTS

    def shape_checks(self) -> dict[str, bool]:
        return {
            "estimates match the paper's table exactly": self.estimates
            == EXPECTED_ESTIMATES,
            "truth row matches the paper's table exactly": self.truth == TRUE_COUNTS,
        }


def run() -> Fig2Result:
    """Replay the Figure 2 schedule through the real reconstruction code."""
    times: list[float] = []
    addrs: list[int] = []
    results: list[bool] = []
    for round_idx, probed in enumerate(SCAN_SCHEDULE):
        for j, addr in enumerate(probed):
            times.append(round_idx * 660.0 + j * 3.0)
            addrs.append(addr + 1)  # last octets .1-.4
            results.append(bool(TRUTH_TABLE[addr, round_idx]))
    obs = ObservationSeries(
        times=np.array(times),
        addresses=np.array(addrs, dtype=np.int16),
        results=np.array(results),
        observer="toy",
    )
    # sample at end of each round
    sample_times = np.arange(1, 11) * 660.0 - 1.0
    recon = reconstruct(obs, np.array([1, 2, 3, 4], dtype=np.int16), sample_times)
    estimates = [
        None if np.isnan(v) else int(v) for v in recon.counts.values
    ]
    truth = TRUTH_TABLE.sum(axis=0).astype(int).tolist()
    return Fig2Result(estimates=estimates, truth=truth)


def format_report(result: Fig2Result) -> str:
    lines = [
        "Figure 2: toy reconstruction",
        "round:    " + " ".join(f"{i:>2d}" for i in range(1, 11)),
        "estimate: " + " ".join(" -" if e is None else f"{e:>2d}" for e in result.estimates),
        "truth:    " + " ".join(f"{t:>2d}" for t in result.truth),
        f"matches the paper's table: {result.matches_paper}",
    ]
    return "\n".join(lines)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
