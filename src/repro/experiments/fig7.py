"""Figure 7: where the change-sensitive blocks are.

Counts change-sensitive blocks per 2x2-degree gridcell for the January
2020 baseline and summarizes by continent.  Expected shapes: Asia leads,
Europe and North America are moderate, South America/Africa sparse with
Morocco over-represented — the regional address-use profiles of §3.5.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..net.geo import GridCell
from .common import Campaign, covid_campaign, fmt_table

__all__ = ["Fig7Result", "run"]


@dataclass(frozen=True)
class Fig7Result:
    cs_by_cell: dict[GridCell, int]
    cs_by_continent: dict[str, int]
    cell_continent: dict[GridCell, str]

    def top_cells(self, k: int = 10) -> list[tuple[GridCell, int]]:
        return sorted(self.cs_by_cell.items(), key=lambda kv: -kv[1])[:k]

    def shape_checks(self) -> dict[str, bool]:
        by_cont = self.cs_by_continent
        asia = by_cont.get("Asia", 0)
        return {
            "Asia has the most change-sensitive blocks": asia
            == max(by_cont.values(), default=0),
            "Europe and North America have some CS blocks": (
                by_cont.get("Europe", 0) > 0 and by_cont.get("North America", 0) > 0
            ),
            "Oceania is sparse relative to Asia": by_cont.get("Oceania", 0) <= asia * 0.25,
        }


def run(campaign: Campaign | None = None) -> Fig7Result:
    campaign = campaign or covid_campaign()
    cs_by_cell: Counter = Counter()
    cs_by_continent: Counter = Counter()
    cell_continent: dict[GridCell, str] = {}
    for record in campaign.records:
        if not record.change_sensitive:
            continue
        cell = record.geo.gridcell
        cs_by_cell[cell] += 1
        cs_by_continent[record.geo.continent] += 1
        cell_continent[cell] = record.geo.continent
    return Fig7Result(
        cs_by_cell=dict(cs_by_cell),
        cs_by_continent=dict(cs_by_continent),
        cell_continent=cell_continent,
    )


def format_report(result: Fig7Result) -> str:
    rows = [
        [str(cell), result.cell_continent[cell], count]
        for cell, count in result.top_cells(12)
    ]
    cont_rows = sorted(result.cs_by_continent.items(), key=lambda kv: -kv[1])
    out = [
        "Figure 7: change-sensitive blocks by gridcell (2020m1 baseline)",
        fmt_table(["gridcell", "continent", "CS blocks"], rows),
        "",
        fmt_table(["continent", "CS blocks"], [list(r) for r in cont_rows]),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
