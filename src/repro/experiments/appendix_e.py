"""Appendix E: Indiana University on 2020-03-15.

The paper's website surfaced 36 Indiana University blocks detected as
WFH on 2020-03-15 — spring break began Friday 2020-03-13 and remote
learning on 2020-03-19 — an event the authors did not know beforehand.
It highlights universities as prime change-sensitive networks (large
IPv4 allocations, public addresses in dynamic use).

We reproduce the story: a cluster of university blocks in Bloomington
with WFH starting at spring break; the pipeline should flag most of them
with downward changes in the break week, and the §2.6 network-type
classifier should call them workplace-like.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime

import numpy as np

from ..core.network_type import NetworkTypeClassifier
from ..core.pipeline import BlockPipeline
from ..net.events import Calendar, WorkFromHome
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import WorkplaceUsage, round_grid
from .common import fmt_table

__all__ = ["AppendixEResult", "run"]

EPOCH = datetime(2020, 1, 1)
SPRING_BREAK = date(2020, 3, 13)
N_BLOCKS = 12
TZ = -5.0  # Bloomington, Indiana


@dataclass(frozen=True)
class AppendixEResult:
    n_blocks: int
    n_change_sensitive: int
    n_detected_in_break_week: int
    n_classified_workplace: int

    def shape_checks(self) -> dict[str, bool]:
        return {
            "university blocks are change-sensitive": self.n_change_sensitive
            >= 0.7 * self.n_blocks,
            "most flag WFH during the break week": self.n_detected_in_break_week
            >= 0.6 * self.n_change_sensitive,
            "they classify as workplace networks": self.n_classified_workplace
            >= 0.7 * self.n_change_sensitive,
        }


def run(seed: int = 36) -> AppendixEResult:
    break_day = (SPRING_BREAK - EPOCH.date()).days
    pipeline = BlockPipeline(detect_on_all=True)
    classifier = NetworkTypeClassifier()
    rng = np.random.default_rng(seed)

    cs = detected = workplace = 0
    for b in range(N_BLOCKS):
        block_seed = seed + 43 * b
        calendar = Calendar(
            epoch=EPOCH,
            tz_hours=TZ,
            events=(
                WorkFromHome(start=SPRING_BREAK, work_factor=0.06, ramp_days=2),
            ),
        )
        usage = WorkplaceUsage(
            n_desktops=int(rng.integers(40, 120)),
            n_servers=int(rng.integers(1, 4)),
            presence=float(rng.uniform(0.75, 0.9)),
        )
        truth = usage.generate(
            np.random.default_rng(block_seed), round_grid(84 * 86_400.0), calendar
        )
        order = probe_order(truth.n_addresses, block_seed)
        logs = [
            TrinocularObserver(name, phase_offset_s=107.0 * (i + 1)).observe(
                truth, order, rng=np.random.default_rng([block_seed, i])
            )
            for i, name in enumerate("ejnw")
        ]
        analysis = pipeline.analyze(logs, truth.addresses)
        if not analysis.is_change_sensitive:
            continue
        cs += 1
        days = analysis.downward_change_days()
        if any(break_day - 2 <= d <= break_day + 7 for d in days):
            detected += 1
        verdict = classifier.classify(
            analysis.counts, tz_hours=TZ, epoch_weekday=EPOCH.weekday()
        )
        workplace += int(verdict.is_workplace)
    return AppendixEResult(
        n_blocks=N_BLOCKS,
        n_change_sensitive=cs,
        n_detected_in_break_week=detected,
        n_classified_workplace=workplace,
    )


def format_report(result: AppendixEResult) -> str:
    rows = [
        ["university blocks simulated", result.n_blocks],
        ["change-sensitive", result.n_change_sensitive],
        ["WFH detected in break week", result.n_detected_in_break_week],
        ["classified workplace", result.n_classified_workplace],
    ]
    out = [
        "Appendix E: Indiana University spring break (2020-03-13)",
        fmt_table(["quantity", "value"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
