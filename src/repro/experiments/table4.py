"""Table 4: geographic coverage of human-activity change detection.

Aggregates the campaign's blocks into 2x2-degree gridcells and reports
the observed/represented cell counts with block-weighted coverage.  The
paper's headline shapes: ~60% of observed cells are represented, but
those cells hold nearly all blocks (99.7% of change-sensitive, 98.5% of
ping-responsive blocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.aggregate import CoverageReport
from .common import Campaign, covid_campaign, fmt_table

__all__ = ["Table4Result", "run"]


@dataclass(frozen=True)
class Table4Result:
    coverage: CoverageReport
    n_blocks: int

    def shape_checks(self) -> dict[str, bool]:
        """Scale-robust versions of the paper's coverage claims.

        At 5.2M-block scale the paper gets 60% of cells covering 98.5% of
        blocks; the reproducible *shape* at any scale is concentration:
        block-weighted coverage far exceeds cell-weighted coverage.
        """
        c = self.coverage
        cell_frac = c.n_represented / max(c.n_cells, 1)
        return {
            "some cells are represented": c.n_represented > 0,
            "cell coverage is partial (some cells unrepresented)": (
                c.n_represented < c.n_cells
            ),
            "CS blocks concentrate in represented cells": (
                c.cs_block_weighted_coverage > cell_frac
            ),
            "responsive blocks concentrate in represented cells": (
                c.responsive_block_weighted_coverage > cell_frac
            ),
            "represented cells hold a large share of CS blocks (>= 40%)": (
                c.cs_block_weighted_coverage >= 0.40
            ),
        }


def run(campaign: Campaign | None = None) -> Table4Result:
    campaign = campaign or covid_campaign()
    coverage = campaign.aggregator().coverage()
    return Table4Result(coverage=coverage, n_blocks=len(campaign.records))


def format_report(result: Table4Result) -> str:
    c = result.coverage
    rows = [
        ["all cells (any responsive block)", c.n_cells, "", ""],
        ["under-observed (<5 responsive)", c.n_under_observed, "", ""],
        ["observed (>=5 responsive)", c.n_observed, "", c.responsive_blocks_observed],
        ["under-represented (<5 CS)", c.n_under_represented, "", ""],
        [
            "represented (>=5 CS)",
            c.n_represented,
            c.cs_blocks_represented,
            c.responsive_blocks_represented,
        ],
    ]
    out = [
        f"Table 4: geographic coverage ({result.n_blocks} blocks)",
        fmt_table(["category", "gridcells", "CS blocks", "responsive blocks"], rows),
        "",
        f"represented / observed cells: {c.represented_cell_fraction:.0%} (paper: 60%)",
        f"CS-block-weighted coverage:   {c.cs_block_weighted_coverage:.1%} (paper: 99.7%)",
        f"responsive-block-weighted:    {c.responsive_block_weighted_coverage:.1%} (paper: 98.5%)",
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
