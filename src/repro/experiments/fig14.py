"""Figure 14 / Appendix D: sensitivity of coverage to gridcell thresholds.

Sweeps the "observed" (>= N responsive blocks) and "represented" (>= N
change-sensitive blocks) thresholds and reports the fraction of accepted
gridcells.  Expected shapes: both curves fall as thresholds grow; the
block-weighted coverage stays nearly flat for small thresholds because
most blocks live in well-populated cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .common import Campaign, covid_campaign, fmt_table

__all__ = ["Fig14Result", "run"]

THRESHOLDS = (1, 2, 3, 5, 8, 12, 20, 35, 60, 100)


@dataclass(frozen=True)
class Fig14Result:
    thresholds: tuple[int, ...]
    observed_fraction: np.ndarray
    represented_fraction: np.ndarray
    cs_weighted: np.ndarray

    def shape_checks(self) -> dict[str, bool]:
        return {
            "observed-cell fraction is non-increasing": bool(
                np.all(np.diff(self.observed_fraction) <= 1e-9)
            ),
            "represented-cell fraction is non-increasing": bool(
                np.all(np.diff(self.represented_fraction) <= 1e-9)
            ),
            "represented <= observed at every threshold": bool(
                np.all(self.represented_fraction <= self.observed_fraction + 1e-9)
            ),
            "block-weighted coverage beats cell-weighted at every threshold": bool(
                np.all(self.cs_weighted >= self.represented_fraction - 1e-9)
            ),
        }


def run(campaign: Campaign | None = None) -> Fig14Result:
    campaign = campaign or covid_campaign()
    agg = campaign.aggregator()
    base = agg.coverage(min_responsive=1, min_change_sensitive=1)
    n_cells = max(base.n_cells, 1)

    observed, represented, weighted = [], [], []
    for t in THRESHOLDS:
        cov = agg.coverage(min_responsive=t, min_change_sensitive=t)
        observed.append(cov.n_observed / n_cells)
        represented.append(cov.n_represented / n_cells)
        weighted.append(cov.cs_block_weighted_coverage)
    return Fig14Result(
        thresholds=THRESHOLDS,
        observed_fraction=np.asarray(observed),
        represented_fraction=np.asarray(represented),
        cs_weighted=np.asarray(weighted),
    )


def format_report(result: Fig14Result) -> str:
    rows = [
        [
            t,
            f"{result.observed_fraction[i]:.2f}",
            f"{result.represented_fraction[i]:.2f}",
            f"{result.cs_weighted[i]:.2f}",
        ]
        for i, t in enumerate(result.thresholds)
    ]
    out = [
        "Figure 14: gridcell acceptance vs thresholds",
        fmt_table(
            ["threshold", "observed frac", "represented frac", "CS-weighted coverage"], rows
        ),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
