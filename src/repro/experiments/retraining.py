"""§3.4 ongoing work: quarterly target-list retraining.

The paper notes that non-stationarity (churned allocations, CG-NAT
migrations) "can be addressed by regular retraining, as is already done
for input targets."  This experiment closes that loop: blocks whose user
population shifts to *different addresses* between quarters are probed
with (a) a stale target list frozen at quarter 0 and (b) a list refreshed
each quarter from the previous quarter's replies plus a census sweep.

Expected shapes: with a stale list, change-sensitivity detection decays
in later quarters (the active addresses are no longer probed); the
refreshed list rediscovers them and restores detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.pipeline import BlockPipeline
from ..datasets.targets import TargetList, TargetListManager
from ..net.events import Calendar, Renumbering
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import BlockTruth, DynamicPoolUsage, round_grid
from .common import fmt_table

__all__ = ["RetrainingResult", "run"]

EPOCH = datetime(2020, 1, 1)
QUARTER_DAYS = 28  # compressed quarters keep the experiment quick
N_QUARTERS = 3
N_BLOCKS = 8


@dataclass(frozen=True)
class RetrainingResult:
    #: per-quarter count of blocks classified change-sensitive
    stale_cs: tuple[int, ...]
    fresh_cs: tuple[int, ...]
    n_blocks: int

    def shape_checks(self) -> dict[str, bool]:
        return {
            "both lists work in quarter 0": (
                self.stale_cs[0] == self.fresh_cs[0] and self.fresh_cs[0] > 0
            ),
            "stale lists lose blocks after renumbering": (
                self.stale_cs[-1] < self.stale_cs[0]
            ),
            "retraining retains more blocks than the stale list": (
                self.fresh_cs[-1] > self.stale_cs[-1]
            ),
            "retraining retains most blocks": self.fresh_cs[-1]
            >= 0.6 * self.fresh_cs[0],
        }


def _observe_with_targets(
    truth: BlockTruth, targets: TargetList, seed: int, start_s: float, duration_s: float
):
    """Probe one quarter using only the target list's addresses."""
    keep = np.isin(truth.addresses, targets.addresses)
    sub = BlockTruth(
        addresses=truth.addresses[keep],
        active=truth.active[keep],
        col_times=truth.col_times,
    )
    if sub.n_addresses == 0:
        return None, sub
    order = probe_order(sub.n_addresses, seed)
    logs = [
        TrinocularObserver(name, phase_offset_s=127.0 * (i + 1)).observe(
            sub,
            order,
            rng=np.random.default_rng([seed, i, int(start_s)]),
            start_s=start_s,
            duration_s=duration_s,
        )
        for i, name in enumerate("ejnw")
    ]
    return logs, sub


def run(seed: int = 35) -> RetrainingResult:
    pipeline = BlockPipeline()
    horizon = N_QUARTERS * QUARTER_DAYS * 86_400.0

    stale_cs = [0] * N_QUARTERS
    fresh_cs = [0] * N_QUARTERS
    for b in range(N_BLOCKS):
        block_seed = seed + 61 * b
        rng = np.random.default_rng(block_seed)
        # base activity without network events...
        calendar = Calendar(epoch=EPOCH, tz_hours=float(rng.integers(-8, 9)))
        usage = DynamicPoolUsage(
            pool_size=96,
            peak=0.7,
            trough=0.08,
            quiet_week_probability=0.0,
            stale_addresses=0,
        )
        generated = usage.generate(rng, round_grid(horizon), calendar)
        # ...embedded into the low half of the /24 so the +128 renumbering
        # moves users onto addresses no target list has ever seen
        base = np.zeros((256, generated.n_cols), dtype=bool)
        for row in range(generated.n_addresses):
            base[row] = generated.active[row]
        renumber_at = (QUARTER_DAYS + int(rng.integers(2, 10))) * 86_400.0
        renumber = Renumbering(time_s=renumber_at, gap_s=6 * 3600.0, shift=128)
        truth = BlockTruth(
            addresses=np.arange(256, dtype=np.int16),
            active=renumber.transform(base, generated.col_times, rng),
            col_times=generated.col_times,
        )

        manager = TargetListManager()
        # bootstrap both lists from a quarter-0 census of actual responders
        initial_addrs = truth.addresses[truth.active[:, : QUARTER_DAYS * 130].any(axis=1)]
        stale_list = TargetList(addresses=initial_addrs, quarter=0)
        fresh_list = TargetList(addresses=initial_addrs, quarter=0)

        for q in range(N_QUARTERS):
            start = q * QUARTER_DAYS * 86_400.0
            duration = QUARTER_DAYS * 86_400.0

            logs, sub = _observe_with_targets(truth, stale_list, block_seed, start, duration)
            if logs is not None:
                analysis = pipeline.analyze(logs, sub.addresses)
                stale_cs[q] += int(analysis.is_change_sensitive)

            logs, sub = _observe_with_targets(truth, fresh_list, block_seed + 7, start, duration)
            if logs is not None:
                analysis = pipeline.analyze(logs, sub.addresses)
                fresh_cs[q] += int(analysis.is_change_sensitive)
                sweep = manager.sweep(truth, start + duration - 43_200.0)
                fresh_list = manager.refresh(
                    fresh_list,
                    pipeline_merged(logs),
                    sweep_responders=sweep,
                )
    return RetrainingResult(
        stale_cs=tuple(stale_cs), fresh_cs=tuple(fresh_cs), n_blocks=N_BLOCKS
    )


def pipeline_merged(logs):
    from ..net.observations import merge_observations

    return merge_observations(logs)


def format_report(result: RetrainingResult) -> str:
    rows = [
        [f"quarter {q}", result.stale_cs[q], result.fresh_cs[q]]
        for q in range(len(result.stale_cs))
    ]
    out = [
        f"S3.4: target-list retraining ({result.n_blocks} renumbering pool blocks)",
        fmt_table(["window", "CS w/ stale list", "CS w/ retrained list"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
