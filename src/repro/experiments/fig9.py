"""Figure 9: China in January 2020 (§4.2).

Daily downward/upward fractions for the Wuhan (30N, 114E) and Beijing
(38N, 116E) gridcells over 2020h1.  Expected shapes: both cells peak in
late January, when the Wuhan lockdown (2020-01-23) and Spring Festival
(2020-01-24) coincide; Wuhan's suppression persists longer (its lockdown
ran ~10 weeks).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from ..net.geo import GridCell
from .common import Campaign, covid_campaign, fmt_table, sparkline, top_peaks

__all__ = ["Fig9Result", "run", "WUHAN_CELL", "BEIJING_CELL"]

WUHAN_CELL = GridCell(30, 114)
BEIJING_CELL = GridCell(38, 116)
LOCKDOWN = date(2020, 1, 23)


@dataclass(frozen=True)
class CityTrends:
    cell: GridCell
    n_change_sensitive: int
    down: np.ndarray
    up: np.ndarray


@dataclass(frozen=True)
class Fig9Result:
    wuhan: CityTrends
    beijing: CityTrends
    campaign: Campaign

    def peak_date(self, trends: CityTrends) -> tuple[date, float]:
        if trends.down.size == 0 or trends.down.max() <= 0:
            return self.campaign.date_of(self.campaign.first_day), 0.0
        idx, val = top_peaks(trends.down, 1)[0]
        return self.campaign.date_of(self.campaign.first_day + idx), val

    def shape_checks(self) -> dict[str, bool]:
        checks: dict[str, bool] = {}
        for name, trends in (("Wuhan", self.wuhan), ("Beijing", self.beijing)):
            if trends.n_change_sensitive == 0:
                checks[f"{name} cell has change-sensitive blocks"] = False
                continue
            peak_day, peak_val = self.peak_date(trends)
            checks[f"{name} peak falls in late January"] = (
                date(2020, 1, 18) <= peak_day <= date(2020, 2, 10) and peak_val > 0
            )
        return checks


def _city(campaign: Campaign, cell: GridCell) -> CityTrends:
    agg = campaign.aggregator()
    stats = agg.cell(cell)
    down, up = agg.cell_daily_fractions(cell, campaign.first_day, campaign.n_days)
    return CityTrends(
        cell=cell,
        n_change_sensitive=0 if stats is None else stats.n_change_sensitive,
        down=down,
        up=up,
    )


def run(campaign: Campaign | None = None) -> Fig9Result:
    campaign = campaign or covid_campaign()
    return Fig9Result(
        wuhan=_city(campaign, WUHAN_CELL),
        beijing=_city(campaign, BEIJING_CELL),
        campaign=campaign,
    )


def format_report(result: Fig9Result) -> str:
    rows = []
    for name, trends in (("Wuhan", result.wuhan), ("Beijing", result.beijing)):
        peak_day, peak_val = result.peak_date(trends)
        rows.append(
            [name, str(trends.cell), trends.n_change_sensitive, str(peak_day), f"{peak_val:.1%}"]
        )
    out = [
        "Figure 9: China gridcell trends, 2020h1 (lockdown + Spring Festival 01-23/24)",
        fmt_table(["city", "gridcell", "CS blocks", "peak day", "peak down-fraction"], rows),
        "",
        f"Wuhan   |{sparkline(result.wuhan.down)}|",
        f"Beijing |{sparkline(result.beijing.down)}|",
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
