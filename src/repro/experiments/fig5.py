"""Figure 5: where reconstruction misses change-sensitive blocks.

Compares survey ground truth with 4-observer reconstruction over the
same two weeks and bins the blocks that are change-sensitive in truth
but *missed* by reconstruction, by observed scan time (x) and scan size
|E(b)| (y).

The paper's heatmap comes from 32k survey-overlap blocks; to cover the
size/availability plane at laptop scale we sweep a grid of dynamic-pool
blocks from small-and-sparse to full-and-dense.  Expected shape:
failures concentrate away from the origin — large blocks with long scan
times, exactly the blocks §2.8's additional probing targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.pipeline import BlockPipeline
from ..core.reconstruction import full_scan_durations
from ..net.events import Calendar
from ..net.observations import merge_observations
from ..net.prober import TrinocularObserver, probe_order
from ..net.survey import SurveyObserver
from ..net.usage import DynamicPoolUsage, round_grid
from .common import fmt_table

__all__ = ["Fig5Result", "run", "TIME_EDGES_H", "SIZE_EDGES"]

TIME_EDGES_H = (0, 2, 6, 10, 14, 18, 22, 24, 1e9)
SIZE_EDGES = (0, 20, 60, 100, 140, 180, 220, 256)
DURATION_DAYS = 14
EPOCH = datetime(2020, 2, 19)

#: the sweep: pool sizes x overnight occupancy (availability)
POOL_SIZES = (32, 64, 96, 128, 160, 192, 224, 250)
TROUGHS = (0.05, 0.20, 0.40, 0.60)


@dataclass(frozen=True)
class SweptBlock:
    eb_size: int
    trough: float
    scan_hours: float
    truth_cs: bool
    recon_cs: bool

    @property
    def missed(self) -> bool:
        return self.truth_cs and not self.recon_cs


@dataclass(frozen=True)
class Fig5Result:
    blocks: tuple[SweptBlock, ...]
    heatmap: np.ndarray  # [size_bins, time_bins] counts of missed blocks

    @property
    def n_truth_cs(self) -> int:
        return sum(b.truth_cs for b in self.blocks)

    @property
    def n_missed(self) -> int:
        return sum(b.missed for b in self.blocks)

    def shape_checks(self) -> dict[str, bool]:
        missed = [b for b in self.blocks if b.missed]
        recovered = [b for b in self.blocks if b.truth_cs and b.recon_cs]
        checks = {
            "most truth-CS blocks are recovered": len(recovered) > len(missed),
            "some truth-CS blocks are missed": bool(missed),
        }
        if missed and recovered:
            checks["missed blocks scan slower than recovered ones"] = np.median(
                [b.scan_hours for b in missed]
            ) > np.median([b.scan_hours for b in recovered])
            checks["missed blocks are larger than recovered ones"] = np.median(
                [b.eb_size for b in missed]
            ) >= np.median([b.eb_size for b in recovered])
        return checks


def _sweep_block(pool_size: int, trough: float, seed: int) -> SweptBlock:
    calendar = Calendar(epoch=EPOCH, tz_hours=2.0)
    peak = min(trough + 0.45, 0.95)
    usage = DynamicPoolUsage(
        pool_size=pool_size,
        peak=peak,
        trough=trough,
        quiet_week_probability=0.0,
        stale_addresses=0,
    )
    truth = usage.generate(
        np.random.default_rng(seed), round_grid(DURATION_DAYS * 86_400.0), calendar
    )
    order = probe_order(truth.n_addresses, seed)

    pipeline = BlockPipeline()
    survey_log = SurveyObserver().observe(truth, rng=np.random.default_rng([seed, 9]))
    truth_cls = pipeline.analyze([survey_log], truth.addresses).classification

    logs = [
        TrinocularObserver(name, phase_offset_s=131.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([seed, i])
        )
        for i, name in enumerate("ejnw")
    ]
    recon_cls = pipeline.analyze(logs, truth.addresses).classification
    durations = full_scan_durations(
        merge_observations(logs), truth.addresses, max_scans=8
    )
    scan_hours = (
        float(np.median(durations)) / 3600.0 if durations.size else DURATION_DAYS * 24.0
    )
    return SweptBlock(
        eb_size=truth.n_addresses,
        trough=trough,
        scan_hours=scan_hours,
        truth_cs=truth_cls.is_change_sensitive,
        recon_cs=recon_cls.is_change_sensitive,
    )


def run(seed: int = 28) -> Fig5Result:
    blocks = []
    for i, pool_size in enumerate(POOL_SIZES):
        for j, trough in enumerate(TROUGHS):
            blocks.append(_sweep_block(pool_size, trough, seed + 37 * i + j))

    heatmap = np.zeros((len(SIZE_EDGES) - 1, len(TIME_EDGES_H) - 1), dtype=int)
    for b in blocks:
        if not b.missed:
            continue
        ti = int(np.searchsorted(TIME_EDGES_H, b.scan_hours, side="right")) - 1
        si = int(np.searchsorted(SIZE_EDGES, b.eb_size, side="right")) - 1
        heatmap[min(si, heatmap.shape[0] - 1), min(ti, heatmap.shape[1] - 1)] += 1
    return Fig5Result(blocks=tuple(blocks), heatmap=heatmap)


def format_report(result: Fig5Result) -> str:
    headers = ["|E(b)| \\ scan"] + [
        f"<{int(TIME_EDGES_H[i + 1])}h" if TIME_EDGES_H[i + 1] < 1e9 else ">=24h"
        for i in range(len(TIME_EDGES_H) - 1)
    ]
    rows = []
    for si in range(result.heatmap.shape[0] - 1, -1, -1):
        label = f"{SIZE_EDGES[si]}-{SIZE_EDGES[si + 1]}"
        rows.append([label] + list(result.heatmap[si]))
    out = [
        "Figure 5: change-sensitivity failures by scan time x scan size",
        f"swept blocks: {len(result.blocks)}; truth-CS: {result.n_truth_cs}; "
        f"missed in reconstruction: {result.n_missed}",
        fmt_table(headers, rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
