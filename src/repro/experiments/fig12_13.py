"""Figures 12 & 13 / Appendix B.3-B.4: the 2023q1 control quarter.

Runs the Figure 9/10 analysis on the 2023 world, which has Spring
Festival but no Covid events.  Expected shapes: Beijing still peaks near
the 2023-01-22 Spring Festival (Figure 12); New Delhi shows no
distinguishable peak (Figure 13) — confirming the 2020 Indian changes
were not seasonal artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from ..net.geo import GridCell
from .common import Campaign, control_campaign, fmt_table, sparkline, top_peaks

__all__ = ["Fig1213Result", "run"]

BEIJING_CELL = GridCell(38, 116)
DELHI_CELL = GridCell(28, 76)
SPRING_FESTIVAL_2023 = date(2023, 1, 22)


@dataclass(frozen=True)
class Fig1213Result:
    beijing_cs: int
    beijing_down: np.ndarray
    delhi_cs: int
    delhi_down: np.ndarray
    campaign: Campaign

    def beijing_peak(self) -> tuple[date, float]:
        if self.beijing_down.size == 0 or self.beijing_down.max() <= 0:
            return self.campaign.date_of(self.campaign.first_day), 0.0
        idx, val = top_peaks(self.beijing_down, 1)[0]
        return self.campaign.date_of(self.campaign.first_day + idx), val

    def shape_checks(self) -> dict[str, bool]:
        peak_day, peak_val = self.beijing_peak()
        delhi_max = float(self.delhi_down.max()) if self.delhi_down.size else 0.0
        return {
            "Beijing peaks near the 2023 Spring Festival": (
                peak_val > 0
                and date(2023, 1, 15) <= peak_day <= date(2023, 2, 10)
            ),
            "Delhi shows no comparable peak": delhi_max <= max(peak_val * 0.6, 0.02)
            or delhi_max < peak_val,
        }


def run(campaign: Campaign | None = None) -> Fig1213Result:
    campaign = campaign or control_campaign()
    agg = campaign.aggregator()
    b_stats = agg.cell(BEIJING_CELL)
    d_stats = agg.cell(DELHI_CELL)
    b_down, _ = agg.cell_daily_fractions(BEIJING_CELL, campaign.first_day, campaign.n_days)
    d_down, _ = agg.cell_daily_fractions(DELHI_CELL, campaign.first_day, campaign.n_days)
    return Fig1213Result(
        beijing_cs=0 if b_stats is None else b_stats.n_change_sensitive,
        beijing_down=b_down,
        delhi_cs=0 if d_stats is None else d_stats.n_change_sensitive,
        delhi_down=d_down,
        campaign=campaign,
    )


def format_report(result: Fig1213Result) -> str:
    peak_day, peak_val = result.beijing_peak()
    delhi_max = float(result.delhi_down.max()) if result.delhi_down.size else 0.0
    rows = [
        ["Beijing", result.beijing_cs, str(peak_day), f"{peak_val:.1%}"],
        ["New Delhi", result.delhi_cs, "-", f"{delhi_max:.1%}"],
    ]
    out = [
        "Figures 12/13: 2023q1 control (Spring Festival 2023-01-22, no Covid)",
        fmt_table(["city", "CS blocks", "peak day", "peak fraction"], rows),
        "",
        f"Beijing |{sparkline(result.beijing_down)}|",
        f"Delhi   |{sparkline(result.delhi_down)}|",
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
