"""Table 3: reconstruction validation against survey ground truth.

The survey (2020it89-w) probes every address of its blocks every round
for two weeks — ground truth by construction.  We intersect its blocks
with four reconstruction options and count how many pass each
change-sensitivity check:

* 2020q1-w       — one observer, a quarter;
* 2020q1-ejnw    — four observers, a quarter;
* 2020m1-ejnw    — four observers, one month;
* 2020it89-match-ejnw — four observers, the survey's own two weeks.

Expected shapes (paper §3.2.1): more observers recover more diurnal /
change-sensitive blocks than one; shorter windows recover more than
longer ones; the 4-observer 2-week option recovers the largest share of
the survey's change-sensitive blocks (the paper reaches 70%).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.builder import DatasetBuilder
from ..runtime.engine import CampaignEngine, default_engine
from .common import bench_scale, covid_world, fmt_table

__all__ = ["Table3Result", "run", "RECONSTRUCTION_OPTIONS"]

GROUND_TRUTH = "2020it89-w"
RECONSTRUCTION_OPTIONS = (
    "2020q1-w",
    "2020q1-ejnw",
    "2020m1-ejnw",
    "2020it89-match-ejnw",
)


@dataclass(frozen=True)
class OptionCounts:
    diurnal: int
    wide_swing: int
    change_sensitive: int
    cs_recovered: int  # CS blocks shared with ground truth


@dataclass(frozen=True)
class Table3Result:
    n_overlap: int  # responsive blocks in the comparison
    truth: OptionCounts
    options: dict[str, OptionCounts]

    def recovery_rate(self, option: str) -> float:
        if self.truth.change_sensitive == 0:
            return float("nan")
        return self.options[option].cs_recovered / self.truth.change_sensitive

    def shape_checks(self) -> dict[str, bool]:
        o = self.options
        return {
            "4 observers find >= CS than 1 (q1-ejnw >= q1-w)": (
                o["2020q1-ejnw"].change_sensitive >= o["2020q1-w"].change_sensitive
            ),
            "shorter window finds >= CS (m1-ejnw >= q1-ejnw)": (
                o["2020m1-ejnw"].change_sensitive >= o["2020q1-ejnw"].change_sensitive
            ),
            "matched window recovers the most truth-CS blocks": (
                o["2020it89-match-ejnw"].cs_recovered
                == max(v.cs_recovered for v in o.values())
            ),
            "matched-window recovery above 50%": self.recovery_rate("2020it89-match-ejnw")
            >= 0.5,
        }


def run(
    n_blocks: int | None = None,
    seed: int = 22,
    *,
    engine: CampaignEngine | None = None,
) -> Table3Result:
    n = bench_scale(260) if n_blocks is None else n_blocks
    world = covid_world(n, seed, diurnal_boost=2.0)
    builder = DatasetBuilder(world)
    engine = engine if engine is not None else default_engine()

    truth_result = builder.analyze(GROUND_TRUTH, engine=engine)
    responsive = {
        cidr
        for cidr, a in truth_result.analyses.items()
        if a.classification.responsive
    }
    truth_cs = frozenset(truth_result.change_sensitive())
    truth_counts = _counts(truth_result, responsive, truth_cs)

    options: dict[str, OptionCounts] = {}
    for name in RECONSTRUCTION_OPTIONS:
        result = builder.analyze(name, engine=engine)
        options[name] = _counts(result, responsive, truth_cs)
    return Table3Result(n_overlap=len(responsive), truth=truth_counts, options=options)


def _counts(result, overlap: set[str], truth_cs: frozenset[str]) -> OptionCounts:
    diurnal = wide = cs = recovered = 0
    for cidr, analysis in result.analyses.items():
        if cidr not in overlap:
            continue
        c = analysis.classification
        diurnal += int(c.is_diurnal)
        wide += int(c.is_wide_swing)
        if c.is_change_sensitive:
            cs += 1
            recovered += int(cidr in truth_cs)
    return OptionCounts(
        diurnal=diurnal, wide_swing=wide, change_sensitive=cs, cs_recovered=recovered
    )


def format_report(result: Table3Result) -> str:
    headers = ["metric", "truth(it89)"] + list(result.options)
    rows = []
    for field, label in (
        ("diurnal", "diurnal"),
        ("wide_swing", "wide swing"),
        ("change_sensitive", "change-sensitive"),
        ("cs_recovered", "truth-CS recovered"),
    ):
        rows.append(
            [label, getattr(result.truth, field)]
            + [getattr(v, field) for v in result.options.values()]
        )
    out = [
        f"Table 3: survey-overlap validation ({result.n_overlap} responsive blocks)",
        fmt_table(headers, rows),
        "",
        "recovery of truth change-sensitive blocks:",
    ]
    for name in result.options:
        out.append(f"  {name}: {result.recovery_rate(name):.0%}")
    out.append("")
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
