"""§3.2.3 / §2.8: selecting under-probed blocks and fixing their scans.

Three claims are exercised:

1. A logistic model on (|E(b)|, availability A) predicts which blocks
   need more than 6 hours for a full scan, with a low false-negative
   rate (the paper fits on 5k blocks and misses 0.5%).
2. The selection rule skips near-origin blocks (|E(b)| < 32, A < 0.05).
3. Adding the §2.8 additional prober to a slow block brings its
   full-block-scan time under the 6-hour target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reconstruction import full_scan_durations
from ..core.refresh import (
    FbsLogisticModel,
    estimate_fbs_hours,
    select_for_additional_probing,
)
from ..datasets.builder import DatasetBuilder
from ..datasets.catalog import DatasetSpec, dataset
from ..net.observations import merge_observations
from ..net.world import BlockSpec, WorldModel
from ..runtime.engine import CampaignEngine, default_engine
from .common import bench_scale, covid_world, fmt_table

__all__ = ["AdditionalProbingResult", "run"]

DATASET = "2020m1-ejnw"


@dataclass(frozen=True)
class AdditionalProbingResult:
    n_sampled: int
    n_slow: int
    false_negative_rate: float
    accuracy: float
    n_selected: int
    slow_block_fbs_hours: float
    slow_block_fbs_with_extra_hours: float

    def shape_checks(self) -> dict[str, bool]:
        checks = {
            "model accuracy is high (>= 85%)": self.accuracy >= 0.85,
            "false-negative rate is small (<= 10%)": self.false_negative_rate <= 0.10,
        }
        if np.isfinite(self.slow_block_fbs_hours):
            checks["additional probing brings the slow block under 6h"] = (
                self.slow_block_fbs_with_extra_hours <= 6.0
                and self.slow_block_fbs_with_extra_hours < self.slow_block_fbs_hours
            )
        return checks


@dataclass(frozen=True)
class _FbsSampleJob:
    """Per-block task: (|E(b)|, availability, median FBS hours)."""

    world: WorldModel
    ds: DatasetSpec

    def __call__(self, spec: BlockSpec) -> tuple[int, float, float]:
        builder = DatasetBuilder(self.world)
        start = self.ds.start_s(self.world.epoch)
        truth = builder.truth(spec, start, self.ds.duration_s)
        merged = merge_observations(
            [builder.observe(spec, o, start, self.ds.duration_s) for o in self.ds.observers]
        )
        durations = full_scan_durations(merged, truth.addresses, max_scans=8)
        hours = float(np.median(durations)) / 3600.0 if durations.size else 7 * 24.0
        a = builder.availability(spec, start, self.ds.duration_s)
        return truth.n_addresses, a, hours


def run(
    n_blocks: int | None = None,
    seed: int = 30,
    *,
    engine: CampaignEngine | None = None,
) -> AdditionalProbingResult:
    n = bench_scale(200) if n_blocks is None else n_blocks
    world = covid_world(n, seed)
    builder = DatasetBuilder(world)
    engine = engine if engine is not None else default_engine()
    ds = dataset(DATASET)
    start = ds.start_s(world.epoch)

    targets = [spec for spec in world.blocks if spec.responsive_by_design]
    samples = engine.run(
        _FbsSampleJob(world=world, ds=ds), targets, label="additional-probing:fbs"
    )
    ebs: list[int] = []
    avails: list[float] = []
    fbs_hours: list[float] = []
    slowest: tuple[float, object] | None = None
    for spec, (eb, a, hours) in zip(targets, samples.results):
        ebs.append(eb)
        avails.append(a)
        fbs_hours.append(hours)
        if eb >= 32 and (slowest is None or hours > slowest[0]):
            slowest = (hours, spec)

    eb_arr = np.asarray(ebs)
    a_arr = np.asarray(avails)
    fbs_arr = np.asarray(fbs_hours)
    model = FbsLogisticModel().fit(eb_arr, a_arr, fbs_arr)
    predicted = model.predict(eb_arr, a_arr)
    truth_slow = fbs_arr > 6.0
    accuracy = float((predicted == truth_slow).mean())
    fnr = model.false_negative_rate(eb_arr, a_arr, fbs_arr)
    selected = select_for_additional_probing(eb_arr, a_arr, model)

    # claim 3: add the additional prober to the slowest eligible block
    slow_fbs = float("nan")
    slow_fbs_extra = float("nan")
    if slowest is not None:
        _, spec = slowest
        truth = builder.truth(spec, start, ds.duration_s)
        base_logs = [builder.observe(spec, o, start, ds.duration_s) for o in ds.observers]
        base = full_scan_durations(
            merge_observations(base_logs), truth.addresses, max_scans=8
        )
        extra_logs = base_logs + [builder.observe(spec, "a", start, ds.duration_s)]
        extra = full_scan_durations(
            merge_observations(extra_logs), truth.addresses, max_scans=8
        )
        slow_fbs = float(np.median(base)) / 3600.0 if base.size else float("inf")
        slow_fbs_extra = float(np.median(extra)) / 3600.0 if extra.size else float("inf")

    return AdditionalProbingResult(
        n_sampled=len(ebs),
        n_slow=int(truth_slow.sum()),
        false_negative_rate=fnr,
        accuracy=accuracy,
        n_selected=int(selected.sum()),
        slow_block_fbs_hours=slow_fbs,
        slow_block_fbs_with_extra_hours=slow_fbs_extra,
    )


def format_report(result: AdditionalProbingResult) -> str:
    rows = [
        ["blocks sampled", result.n_sampled],
        ["genuinely slow (FBS > 6h)", result.n_slow],
        ["model accuracy", f"{result.accuracy:.1%}"],
        ["false-negative rate", f"{result.false_negative_rate:.1%} (paper: 0.5%)"],
        ["blocks selected for extra probing", result.n_selected],
        ["slowest block FBS", f"{result.slow_block_fbs_hours:.1f} h"],
        ["... with additional prober", f"{result.slow_block_fbs_with_extra_hours:.1f} h"],
    ]
    out = [
        "S3.2.3: under-probed block selection and additional probing",
        fmt_table(["quantity", "value"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
