"""Table 2: blocks before and after filtering, across datasets.

Runs the classification funnel (responsive -> diurnal -> wide swing ->
change-sensitive) over the paper's seven dataset windows and reports the
counts plus the shape checks that should hold at any scale:

* change-sensitive blocks are a small share of responsive blocks;
* longer windows find fewer change-sensitive blocks (2020h1 < quarters);
* multi-observer datasets find at least as many as single-observer;
* the 2020q1 -> 2020q2 count decreases (Covid moves people behind NAT);
* churn: the q1/q2 intersection is well below either quarter (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.builder import DatasetBuilder, FunnelCounts
from ..runtime.engine import CampaignEngine, default_engine
from .common import bench_scale, covid_world, fmt_table

__all__ = ["Table2Result", "run", "DATASETS"]

DATASETS = (
    "2019q4-w",
    "2020q1-w",
    "2020q2-w",
    "2020h1-w",
    "2020m1-w",
    "2020h1-ejnw",
    "2020m1-ejnw",
)


@dataclass(frozen=True)
class Table2Result:
    funnels: dict[str, FunnelCounts]
    cs_sets: dict[str, frozenset[str]]
    n_blocks: int

    @property
    def q1_q2_intersection(self) -> int:
        """Churn check: blocks change-sensitive in both 2020 quarters."""
        return len(self.cs_sets["2020q1-w"] & self.cs_sets["2020q2-w"])

    def shape_checks(self) -> dict[str, bool]:
        f = self.funnels
        inter = self.q1_q2_intersection
        return {
            "change-sensitive is a small share of responsive (< 35%)": all(
                fc.change_sensitive_fraction < 0.35 for fc in f.values()
            ),
            "longer window finds fewer CS (h1-w <= q1-w)": (
                f["2020h1-w"].change_sensitive <= f["2020q1-w"].change_sensitive
            ),
            "more observers find at least as many CS (m1-ejnw >= m1-w)": (
                f["2020m1-ejnw"].change_sensitive >= f["2020m1-w"].change_sensitive
            ),
            "q2 CS <= q1 CS (Covid hides people behind NAT)": (
                f["2020q2-w"].change_sensitive <= f["2020q1-w"].change_sensitive
            ),
            "churn: q1&q2 intersection below both quarters": (
                inter <= f["2020q1-w"].change_sensitive
                and inter <= f["2020q2-w"].change_sensitive
            ),
        }


def run(
    n_blocks: int | None = None,
    seed: int = 21,
    *,
    engine: CampaignEngine | None = None,
) -> Table2Result:
    """Build the world once and run the funnel for each dataset window."""
    n = bench_scale(300) if n_blocks is None else n_blocks
    world = covid_world(n, seed)
    builder = DatasetBuilder(world)
    engine = engine if engine is not None else default_engine()
    funnels: dict[str, FunnelCounts] = {}
    cs_sets: dict[str, frozenset[str]] = {}
    for name in DATASETS:
        result = builder.analyze(name, engine=engine)
        funnels[name] = result.funnel()
        cs_sets[name] = frozenset(result.change_sensitive())
    return Table2Result(funnels=funnels, cs_sets=cs_sets, n_blocks=n)


def format_report(result: Table2Result) -> str:
    labels = [row[0] for row in next(iter(result.funnels.values())).rows()]
    rows = []
    for i, label in enumerate(labels):
        rows.append([label] + [f.rows()[i][1] for f in result.funnels.values()])
    out = [
        f"Table 2: block filtering funnel ({result.n_blocks} routed blocks simulated)",
        fmt_table(["filter stage", *result.funnels], rows),
        "",
        f"churn: CS blocks in both 2020q1-w and 2020q2-w: {result.q1_q2_intersection}",
        "",
        "shape checks vs the paper:",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
