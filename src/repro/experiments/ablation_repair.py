"""Ablation: what happens to the funnel without 1-loss repair (§3.3).

The §3.3 risk is concrete: diurnal congestion on one observer's path can
make *non-diurnal* destinations look diurnal, polluting the
change-sensitive set with blocks whose "daily rhythm" is a property of a
link near the observer.  We build a population of non-diurnal sparse
blocks, probe them through one congested path plus clean paths, and run
the classification funnel with repair disabled and enabled.

Expected shapes: without repair, a noticeable share of these non-diurnal
blocks is misclassified diurnal (false change-sensitivity); with repair
the false-diurnal count drops substantially.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

import numpy as np

from ..core.pipeline import BlockPipeline
from ..net.events import Calendar
from ..net.loss import BernoulliLoss, DiurnalCongestionLoss
from ..net.prober import TrinocularObserver, probe_order
from ..net.usage import SparseUsage, round_grid
from .common import fmt_table

__all__ = ["RepairAblationResult", "run"]

EPOCH = datetime(2023, 4, 1)
N_BLOCKS = 14
DURATION_DAYS = 28


@dataclass(frozen=True)
class RepairAblationResult:
    n_blocks: int
    false_diurnal_without_repair: int
    false_diurnal_with_repair: int
    mean_ratio_without: float
    mean_ratio_with: float

    def shape_checks(self) -> dict[str, bool]:
        return {
            "congestion fakes diurnality in some blocks": (
                self.false_diurnal_without_repair > 0
            ),
            "repair reduces false diurnal classifications": (
                self.false_diurnal_with_repair < self.false_diurnal_without_repair
            ),
            "repair lowers the mean diurnal-energy ratio": (
                self.mean_ratio_with < self.mean_ratio_without
            ),
        }


def run(seed: int = 66) -> RepairAblationResult:
    calendar = Calendar(epoch=EPOCH, tz_hours=8.0)
    congested = DiurnalCongestionLoss(base=0.05, peak=0.55, peak_hour=21.0, tz_hours=8.0)
    clean = BernoulliLoss(0.004)

    false_without = false_with = 0
    ratios_without: list[float] = []
    ratios_with: list[float] = []
    for b in range(N_BLOCKS):
        block_seed = seed + 53 * b
        usage = SparseUsage(
            n_addresses=int(np.random.default_rng(block_seed).integers(80, 140)),
            mean_on_days=6.0,
            mean_off_days=3.0,
            stale_addresses=0,
        )
        truth = usage.generate(
            np.random.default_rng(block_seed),
            round_grid(DURATION_DAYS * 86_400.0),
            calendar,
        )
        order = probe_order(truth.n_addresses, block_seed)
        logs = []
        for i, name in enumerate("ejnw"):
            loss = congested if name == "w" else clean
            logs.append(
                TrinocularObserver(name, phase_offset_s=103.0 * (i + 1)).observe(
                    truth, order, loss, np.random.default_rng([block_seed, i])
                )
            )
        for repair, ratios in ((False, ratios_without), (True, ratios_with)):
            analysis = BlockPipeline(apply_repair=repair).analyze(logs, truth.addresses)
            verdict = analysis.classification.diurnal
            if verdict is None:
                continue
            ratios.append(verdict.energy_ratio)
            if verdict.is_diurnal:
                if repair:
                    false_with += 1
                else:
                    false_without += 1
    return RepairAblationResult(
        n_blocks=N_BLOCKS,
        false_diurnal_without_repair=false_without,
        false_diurnal_with_repair=false_with,
        mean_ratio_without=float(np.mean(ratios_without)) if ratios_without else 0.0,
        mean_ratio_with=float(np.mean(ratios_with)) if ratios_with else 0.0,
    )


def format_report(result: RepairAblationResult) -> str:
    rows = [
        ["non-diurnal blocks via congested path", result.n_blocks],
        ["false diurnal without repair", result.false_diurnal_without_repair],
        ["false diurnal with repair", result.false_diurnal_with_repair],
        ["mean diurnal ratio without repair", f"{result.mean_ratio_without:.2f}"],
        ["mean diurnal ratio with repair", f"{result.mean_ratio_with:.2f}"],
    ]
    out = [
        "S3.3 ablation: classification funnel without/with 1-loss repair",
        fmt_table(["quantity", "value"], rows),
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
