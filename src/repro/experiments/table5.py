"""Table 5: validation of sampled change-sensitive blocks (§3.6).

Samples random change-sensitive blocks from 2020q1-ejnw, compares their
CUSUM detections against each block's country WFH date, and scores
precision/recall.  Where the paper matched detections to news reports by
hand, we hold exact ground truth: each block's event list says whether
it really adopted WFH, and the scheduled outages let us label
outage-caused detections (the paper's one false positive was exactly
such a case).

Buckets follow the paper's table:
  no WFH in quarter / CUSUM near (+-4d) WFH date (TP or apparent-outage
  FP) / no CUSUM near WFH (missed = FN when the block truly changed) /
  CUSUM not related to WFH / no CUSUM detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date

import numpy as np

from ..core.pipeline import BlockPipeline
from ..datasets.builder import DatasetBuilder
from ..net.events import WorkFromHome
from ..net.world import BlockSpec
from .common import bench_scale, covid_world, fmt_table

__all__ = ["Table5Result", "run"]

DATASET = "2020q1-ejnw"
TOLERANCE_DAYS = 4


@dataclass(frozen=True)
class BlockVerdict:
    cidr: str
    country: str
    kind: str
    wfh_day: int | None  # country WFH date as world day index
    followed_wfh: bool  # ground truth: does the block have a WFH event?
    detection_days: tuple[int, ...]  # human-candidate downward change days
    bucket: str


@dataclass(frozen=True)
class Table5Result:
    sample_size: int
    verdicts: tuple[BlockVerdict, ...]
    buckets: dict[str, int] = field(default_factory=dict)

    @property
    def precision(self) -> float:
        tp = self.buckets.get("true positive", 0)
        fp = self.buckets.get("apparent outage (FP)", 0)
        return tp / (tp + fp) if (tp + fp) else float("nan")

    @property
    def recall(self) -> float:
        tp = self.buckets.get("true positive", 0)
        fn = self.buckets.get("missed WFH change (FN)", 0)
        return tp / (tp + fn) if (tp + fn) else float("nan")

    def shape_checks(self) -> dict[str, bool]:
        import math

        tp = self.buckets.get("true positive", 0)
        return {
            "sample contains change-sensitive blocks": self.sample_size > 0,
            "some WFH events are detected (TP > 0)": tp > 0,
            "precision is high (>= 80%; paper 93%)": (
                math.isnan(self.precision) or self.precision >= 0.80
            ),
            "recall is imperfect or modest (paper 72%)": (
                math.isnan(self.recall) or self.recall > 0.3
            ),
        }


def run(
    n_blocks: int | None = None,
    seed: int = 25,
    sample_size: int = 50,
) -> Table5Result:
    n = bench_scale(400) if n_blocks is None else n_blocks
    world = covid_world(n, seed, diurnal_boost=3.0)
    builder = DatasetBuilder(world, BlockPipeline())

    result = builder.analyze(DATASET)
    cs = result.change_sensitive()
    rng = np.random.default_rng(seed)
    chosen = list(rng.permutation(len(cs))[: min(sample_size, len(cs))])
    sampled = [cs[i] for i in chosen]

    q_start = result.spec.start_s(world.epoch) / 86_400.0
    q_end = q_start + result.spec.duration_days

    verdicts = []
    for cidr in sampled:
        spec = result.block_specs[cidr]
        analysis = result.analyses[cidr]
        verdicts.append(_judge(world, builder, spec, analysis, q_start, q_end))

    buckets: dict[str, int] = {}
    for v in verdicts:
        buckets[v.bucket] = buckets.get(v.bucket, 0) + 1
    return Table5Result(
        sample_size=len(sampled), verdicts=tuple(verdicts), buckets=buckets
    )


def _judge(world, builder, spec: BlockSpec, analysis, q_start: float, q_end: float) -> BlockVerdict:
    wfh_date = world.scenario.wfh_dates.get(spec.city.country)
    wfh_day = (
        (wfh_date - world.epoch.date()).days if wfh_date is not None else None
    )
    followed = any(isinstance(e, WorkFromHome) for e in spec.events)
    detections = tuple(
        sorted(
            e.day
            for e in (analysis.changes.human_candidates if analysis.changes else ())
            if e.is_downward
        )
    )

    if wfh_day is None or not (q_start <= wfh_day < q_end - 1):
        bucket = "no WFH in quarter"
    else:
        near = [d for d in detections if abs(d - wfh_day) <= TOLERANCE_DAYS]
        if near:
            # exact ground truth replaces the paper's manual confirmation
            bucket = "true positive" if followed else "apparent outage (FP)"
        elif followed and _truth_shows_drop(builder, spec, wfh_day):
            bucket = "missed WFH change (FN)"
        elif detections:
            bucket = "CUSUM not related to WFH"
        else:
            bucket = "no CUSUM detections"
    return BlockVerdict(
        cidr=spec.block.cidr,
        country=spec.city.country,
        kind=spec.kind,
        wfh_day=wfh_day,
        followed_wfh=followed,
        detection_days=detections,
        bucket=bucket,
    )


def _truth_shows_drop(builder, spec: BlockSpec, wfh_day: int, window_days: int = 10) -> bool:
    """The "visual check": did ground-truth activity really fall at WFH?"""
    start = (wfh_day - window_days) * 86_400.0
    truth = builder.truth(spec, start, 2 * window_days * 86_400.0)
    counts = truth.counts()
    days = (truth.col_times / 86_400.0).astype(int)
    before = counts[(days >= wfh_day - window_days) & (days < wfh_day)]
    after = counts[(days > wfh_day + 2) & (days <= wfh_day + window_days)]
    if before.size == 0 or after.size == 0 or before.mean() <= 0:
        return False
    return after.mean() <= 0.7 * before.mean()


def format_report(result: Table5Result) -> str:
    rows = [[bucket, count] for bucket, count in sorted(result.buckets.items())]
    out = [
        f"Table 5: sampled-block validation ({result.sample_size} change-sensitive blocks)",
        fmt_table(["bucket", "blocks"], rows),
        "",
        f"precision: {result.precision:.0%} (paper: 93%)",
        f"recall:    {result.recall:.0%} (paper: 72%)",
    ]
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
