"""Figure 10: India in February and March 2020 (§4.3).

Daily downward fractions for the New Delhi (28N, 76E) gridcell.  Two
ground-truth events live in the scenario: the Delhi riots with curfew
calls (2020-02-23..29, a smaller change) and the Janata curfew plus
national lockdown (2020-03-22/24, the cell's largest drop).  Expected
shapes: a visible February bump and a larger March peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from ..net.geo import GridCell
from .common import Campaign, covid_campaign, fmt_table, sparkline

__all__ = ["Fig10Result", "run", "DELHI_CELL"]

DELHI_CELL = GridCell(28, 76)
RIOTS = (date(2020, 2, 19), date(2020, 3, 6))
CURFEW = (date(2020, 3, 18), date(2020, 3, 30))


@dataclass(frozen=True)
class Fig10Result:
    n_change_sensitive: int
    down: np.ndarray
    up: np.ndarray
    campaign: Campaign

    def window_peak(self, window: tuple[date, date]) -> float:
        lo = max(self.campaign.day_of(window[0]) - self.campaign.first_day, 0)
        hi = min(
            self.campaign.day_of(window[1]) - self.campaign.first_day + 1, self.down.size
        )
        if lo >= hi:
            return 0.0
        return float(self.down[lo:hi].max())

    @property
    def february_peak(self) -> float:
        return self.window_peak(RIOTS)

    @property
    def march_peak(self) -> float:
        return self.window_peak(CURFEW)

    def shape_checks(self) -> dict[str, bool]:
        return {
            "Delhi cell has change-sensitive blocks": self.n_change_sensitive > 0,
            "February riots produce a visible bump": self.february_peak > 0,
            "March curfew produces a peak": self.march_peak > 0,
            "March peak exceeds the February bump": self.march_peak
            >= self.february_peak,
        }


def run(campaign: Campaign | None = None) -> Fig10Result:
    campaign = campaign or covid_campaign()
    agg = campaign.aggregator()
    stats = agg.cell(DELHI_CELL)
    down, up = agg.cell_daily_fractions(DELHI_CELL, campaign.first_day, campaign.n_days)
    return Fig10Result(
        n_change_sensitive=0 if stats is None else stats.n_change_sensitive,
        down=down,
        up=up,
        campaign=campaign,
    )


def format_report(result: Fig10Result) -> str:
    rows = [
        ["change-sensitive blocks in cell", result.n_change_sensitive],
        ["peak during riots window (Feb 22 - Mar 4)", f"{result.february_peak:.1%}"],
        ["peak during curfew window (Mar 19-29)", f"{result.march_peak:.1%}"],
    ]
    out = [
        f"Figure 10: New Delhi {DELHI_CELL} daily downward fractions, 2020h1",
        fmt_table(["quantity", "value"], rows),
        "",
        f"Delhi |{sparkline(result.down)}|",
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
