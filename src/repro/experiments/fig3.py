"""Figure 3: CDF of full-block-scan time with 1-4 observers.

For every change-sensitive block in 2020q1, measure the durations of
successive full scans of E(b) under four observer combinations (e / jw /
jnw / ejnw) and compare the distributions at the paper's 6-hour and
12-hour marks.  Expected shape: each added observer shifts the CDF left
(more blocks fully scanned within 6/12 hours), mirroring the paper's
48% -> 65% at 6 h and 61% -> 78% at 12 h from one to four observers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.reconstruction import full_scan_durations
from ..datasets.builder import DatasetBuilder
from ..datasets.catalog import DatasetSpec
from ..net.observations import merge_observations
from ..net.world import BlockSpec, WorldModel
from ..runtime.cache import task_key
from ..runtime.engine import CampaignEngine, default_engine
from .common import bench_scale, covid_world, fmt_table

__all__ = ["Fig3Result", "run", "OBSERVER_SETS"]

OBSERVER_SETS = ("e", "jw", "jnw", "ejnw")
DATASET = "2020q1-ejnw"
SIX_HOURS = 6 * 3600.0
TWELVE_HOURS = 12 * 3600.0


@dataclass(frozen=True)
class Fig3Result:
    n_blocks: int
    median_scan_s: dict[str, np.ndarray]  # per-set median scan time per block

    def fraction_within(self, observers: str, seconds: float) -> float:
        med = self.median_scan_s[observers]
        if med.size == 0:
            return float("nan")
        return float((med <= seconds).mean())

    def cdf(self, observers: str, grid_s: np.ndarray) -> np.ndarray:
        med = np.sort(self.median_scan_s[observers])
        if med.size == 0:
            return np.zeros(grid_s.size)
        return np.searchsorted(med, grid_s, side="right") / med.size

    def shape_checks(self) -> dict[str, bool]:
        at6 = [self.fraction_within(o, SIX_HOURS) for o in OBSERVER_SETS]
        at12 = [self.fraction_within(o, TWELVE_HOURS) for o in OBSERVER_SETS]
        return {
            "CDF at 6h is monotone in observer count": all(
                a <= b + 1e-9 for a, b in zip(at6, at6[1:])
            ),
            "CDF at 12h is monotone in observer count": all(
                a <= b + 1e-9 for a, b in zip(at12, at12[1:])
            ),
            "4 observers scan most blocks within 12h": at12[-1] >= 0.6,
            "12h covers more than 6h for every set": all(
                a <= b + 1e-9 for a, b in zip(at6, at12)
            ),
        }


@dataclass(frozen=True)
class _ScanTimeJob:
    """Per-block task: median full-scan duration for each observer set."""

    world: WorldModel
    ds: DatasetSpec
    max_scans: int

    def cache_key(self, spec: BlockSpec) -> str | None:
        return task_key(
            "fig3-scan",
            {"world": self.world, "ds": self.ds, "max_scans": self.max_scans, "spec": spec},
        )

    def __call__(self, spec: BlockSpec) -> dict[str, float | None]:
        builder = DatasetBuilder(self.world)
        start = self.ds.start_s(self.world.epoch)
        truth = builder.truth(spec, start, self.ds.duration_s)
        logs = {
            o: builder.observe(spec, o, start, self.ds.duration_s) for o in "ejnw"
        }
        out: dict[str, float | None] = {}
        for combo in OBSERVER_SETS:
            merged = merge_observations([logs[o] for o in combo])
            durations = full_scan_durations(
                merged, truth.addresses, max_scans=self.max_scans
            )
            out[combo] = float(np.median(durations)) if durations.size else None
        return out


def run(
    n_blocks: int | None = None,
    seed: int = 26,
    max_scans: int = 40,
    *,
    engine: CampaignEngine | None = None,
) -> Fig3Result:
    n = bench_scale(220) if n_blocks is None else n_blocks
    world = covid_world(n, seed, diurnal_boost=2.0)
    builder = DatasetBuilder(world)
    engine = engine if engine is not None else default_engine()
    result = builder.analyze(DATASET, engine=engine)
    cs = result.change_sensitive()

    job = _ScanTimeJob(world=world, ds=result.spec, max_scans=max_scans)
    scan_run = engine.run(job, [result.block_specs[c] for c in cs], label="fig3:scan")
    medians: dict[str, list[float]] = {o: [] for o in OBSERVER_SETS}
    for per_block in scan_run.results:
        for combo, median in per_block.items():
            if median is not None:
                medians[combo].append(median)
    return Fig3Result(
        n_blocks=len(cs),
        median_scan_s={o: np.asarray(v) for o, v in medians.items()},
    )


def format_report(result: Fig3Result) -> str:
    rows = [
        [
            observers,
            f"{result.fraction_within(observers, SIX_HOURS):.0%}",
            f"{result.fraction_within(observers, TWELVE_HOURS):.0%}",
        ]
        for observers in OBSERVER_SETS
    ]
    out = [
        f"Figure 3: full-block-scan time CDF ({result.n_blocks} change-sensitive blocks)",
        fmt_table(["observers", "scanned < 6h", "scanned < 12h"], rows),
        "(paper: 48% -> 65% at 6h and 61% -> 78% at 12h from 1 to 4 observers)",
        "",
    ]
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
