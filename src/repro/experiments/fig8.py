"""Figure 8: human-activity changes for 2020h1 by continent.

Daily fraction of change-sensitive blocks with a downward trend, per
continent, over the first half of 2020.  Expected shapes, matching the
paper's annotations:

(i)   Asia peaks in late January (Spring Festival + Wuhan lockdown);
(ii)  Europe/Africa/the Americas peak in mid-to-late March (Covid WFH);
(iii) Oceania's fractions stay comparatively low.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date

import numpy as np

from .common import Campaign, covid_campaign, fmt_table, sparkline, top_peaks

__all__ = ["Fig8Result", "run"]

CONTINENTS = ("Asia", "Europe", "North America", "South America", "Africa", "Oceania")


@dataclass(frozen=True)
class Fig8Result:
    first_day: int
    n_days: int
    series: dict[str, np.ndarray]
    campaign: Campaign

    def peak_date(self, continent: str) -> tuple[date, float]:
        values = self.series.get(continent)
        if values is None or values.size == 0:
            return self.campaign.date_of(self.first_day), 0.0
        idx, val = top_peaks(values, 1)[0]
        return self.campaign.date_of(self.first_day + idx), val

    def peak_in_window(self, continent: str, lo: date, hi: date) -> float:
        """Largest daily fraction within [lo, hi]."""
        values = self.series.get(continent)
        if values is None:
            return 0.0
        lo_i = max(self.campaign.day_of(lo) - self.first_day, 0)
        hi_i = min(self.campaign.day_of(hi) - self.first_day + 1, values.size)
        if lo_i >= hi_i:
            return 0.0
        return float(values[lo_i:hi_i].max())

    def shape_checks(self) -> dict[str, bool]:
        asia_jan = self.peak_in_window("Asia", date(2020, 1, 18), date(2020, 2, 5))
        asia_rest = self.peak_in_window("Asia", date(2020, 4, 20), date(2020, 6, 20))
        eu_mar = self.peak_in_window("Europe", date(2020, 3, 8), date(2020, 3, 31))
        na_mar = self.peak_in_window("North America", date(2020, 3, 8), date(2020, 3, 31))
        checks = {
            "(i) Asia shows a late-January peak": asia_jan > 0
            and asia_jan >= asia_rest,
            "(ii) Europe peaks in March": eu_mar > 0,
            "(ii) North America peaks in March": na_mar > 0,
        }
        oceania = self.series.get("Oceania")
        if oceania is not None and oceania.size:
            asia = self.series.get("Asia")
            checks["(iii) Oceania stays below Asia's peak"] = float(
                oceania.max()
            ) <= (float(asia.max()) if asia is not None else 1.0) + 1e-9
        return checks


def run(campaign: Campaign | None = None) -> Fig8Result:
    campaign = campaign or covid_campaign()
    agg = campaign.aggregator()
    series = agg.continent_daily_fractions(
        campaign.first_day, campaign.n_days, represented_only=False
    )
    return Fig8Result(
        first_day=campaign.first_day,
        n_days=campaign.n_days,
        series=series,
        campaign=campaign,
    )


def format_report(result: Fig8Result) -> str:
    rows = []
    for continent in CONTINENTS:
        if continent not in result.series:
            continue
        peak_date, peak_val = result.peak_date(continent)
        rows.append([continent, str(peak_date), f"{peak_val:.1%}"])
    out = [
        "Figure 8: daily downward-trend fraction by continent, 2020h1",
        fmt_table(["continent", "peak day", "peak fraction"], rows),
        "",
    ]
    for continent in CONTINENTS:
        if continent in result.series:
            out.append(f"{continent:>14s} |{sparkline(result.series[continent])}|")
    out.append("")
    for check, ok in result.shape_checks().items():
        out.append(f"  [{'ok' if ok else 'FAIL'}] {check}")
    return "\n".join(out)


def main() -> None:
    print(format_report(run()))


if __name__ == "__main__":
    main()
