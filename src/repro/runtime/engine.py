"""The staged campaign engine and its per-run instrumentation.

:class:`CampaignEngine` maps a picklable task function over an iterable
of block tasks through a pluggable :class:`~repro.runtime.executors.Executor`
and aggregates the per-stage :class:`~repro.core.stages.StageRecord`
entries each :class:`BlockResult` carries into one :class:`RunMetrics`
(per-stage wall-time totals, funnel counters, blocks/sec).

Every run is also appended to a bounded module-level log so callers
that did not thread the engine through (e.g. ``repro --metrics``) can
still print what happened.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Sequence

from ..core.pipeline import BlockAnalysis
from ..core.stages import PIPELINE_STAGES, StageRecord
from ..obs.metrics import MetricsRegistry, get_registry, scoped_registry
from ..obs.names import metric_name
from ..obs.progress import get_progress
from ..obs.resources import ResourceTracker, cpu_seconds, format_bytes, peak_rss_bytes
from ..obs.trace import NoopTracer, SpanRecord, Tracer, get_tracer, use_tracer
from . import envconfig
from .cache import AnalysisCache, default_cache
from .executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
)
from .sharding import ShardPlan, resolve_shards
from .spill import SpillDir, SpilledResults

__all__ = [
    "BlockResult",
    "CampaignEngine",
    "EngineRun",
    "RunMetrics",
    "ShippedResult",
    "StageTotals",
    "TracedCall",
    "default_engine",
    "drain_run_log",
    "peek_run_log",
]


@dataclass(frozen=True)
class BlockResult:
    """One block's analysis plus the stage records that produced it."""

    key: str
    analysis: BlockAnalysis
    stages: tuple[StageRecord, ...] = ()


@dataclass(frozen=True)
class ShippedResult:
    """A task result plus the telemetry recorded while producing it.

    Worker processes cannot write into the parent's tracer or metrics
    registry, so a traced run wraps every task in :class:`TracedCall`,
    which records into process-local fragments and ships them home
    inside this envelope.  The engine unwraps ``value`` before
    aggregation, so task functions and their callers never see it.
    """

    value: Any
    spans: tuple[SpanRecord, ...] = ()
    meters: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TracedCall:
    """Picklable wrapper that records one task's spans and metrics.

    Opens a ``block`` span parented under the campaign span (so worker
    fragments re-attach into one rooted tree), swaps in a fresh metrics
    registry for the task body, and ships both back with the result.
    The serial executor runs the exact same wrapper in-process, keeping
    serial and parallel telemetry — and results — identical.
    """

    fn: Callable[[Any], Any]
    trace_id: str
    parent_id: str
    #: span name per task — "block" for per-block jobs, "batch" for the
    #: batched path's per-chunk tail calls (so block-span accounting
    #: still counts exactly one span per block)
    span_name: str = "block"

    def __call__(self, task: Any) -> ShippedResult:
        tracer = Tracer(trace_id=self.trace_id, root_parent_id=self.parent_id)
        with scoped_registry() as registry, use_tracer(tracer):
            cpu_start = cpu_seconds()
            with tracer.span(self.span_name, attrs={"pid": os.getpid()}):
                value = self.fn(task)
            # per-worker accounting rides home in the meter snapshot:
            # the histogram's sum/count aggregate CPU across tasks and
            # the max-gauge keeps each worker process's RSS high-water
            registry.histogram("resources.worker.cpu_s").observe(
                cpu_seconds() - cpu_start
            )
            registry.max_gauge("resources.worker.rss_peak_bytes").set(peak_rss_bytes())
        return ShippedResult(
            value=value, spans=tuple(tracer.finished), meters=registry.snapshot()
        )


@dataclass
class StageTotals:
    """Aggregated stage instrumentation across one engine run."""

    calls: int = 0
    wall_s: float = 0.0
    cpu_s: float = 0.0
    rss_delta: int = 0  # summed RSS high-water rise across calls, bytes
    n_in: int = 0
    n_out: int = 0
    skips: dict[str, int] = field(default_factory=dict)

    @property
    def touched(self) -> int:
        """Blocks that reached this stage (ran or recorded a skip)."""
        return self.calls + sum(self.skips.values())

    def add(self, record: StageRecord) -> None:
        if record.skipped is not None:
            self.skips[record.skipped] = self.skips.get(record.skipped, 0) + 1
            return
        self.calls += 1
        self.wall_s += record.wall_s
        self.cpu_s += record.cpu_s
        self.rss_delta += record.rss_delta
        self.n_in += record.n_in
        self.n_out += record.n_out

    def merge(self, other: "StageTotals") -> None:
        """Fold another run's totals for the same stage into this one."""
        self.calls += other.calls
        self.wall_s += other.wall_s
        self.cpu_s += other.cpu_s
        self.rss_delta += other.rss_delta
        self.n_in += other.n_in
        self.n_out += other.n_out
        for reason, n in other.skips.items():
            self.skips[reason] = self.skips.get(reason, 0) + n

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "rss_delta": self.rss_delta,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "skips": dict(self.skips),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StageTotals":
        return cls(
            calls=d["calls"],
            wall_s=d["wall_s"],
            cpu_s=d.get("cpu_s", 0.0),  # absent in pre-resource saved traces
            rss_delta=d.get("rss_delta", 0),
            n_in=d["n_in"],
            n_out=d["n_out"],
            skips=dict(d.get("skips") or {}),
        )


@dataclass
class RunMetrics:
    """What one engine run did, where the time went, and what survived."""

    label: str
    executor: str
    n_tasks: int
    wall_s: float
    stages: dict[str, StageTotals] = field(default_factory=dict)
    funnel: dict[str, int] = field(default_factory=dict)
    fallback: str | None = None
    meters: dict[str, Any] | None = None  # merged registry snapshot (traced runs)
    cache: dict[str, int] | None = None  # hits/misses/stores (cached runs only)
    batched: dict[str, int] | None = None  # blocks/groups/chunks (batched runs only)
    resources: dict[str, Any] | None = None  # cpu/rss/pool-payload accounting
    shards: dict[str, int] | None = None  # shard count + spill totals (sharded runs)

    @property
    def blocks_per_sec(self) -> float:
        # Empty or zero-time runs report 0.0, never inf/nan: the dict
        # export feeds json.dumps, which would emit the non-standard
        # ``Infinity`` token and break strict JSON readers.
        if self.wall_s <= 0.0 or self.n_tasks <= 0:
            return 0.0
        return self.n_tasks / self.wall_s

    @property
    def stage_wall_s(self) -> float:
        """Summed in-stage wall time (< ``wall_s`` — excludes simulation
        overheads not recorded as a stage, > ``wall_s`` when parallel)."""
        return sum(t.wall_s for t in self.stages.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "executor": self.executor,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "blocks_per_sec": self.blocks_per_sec,
            "stages": {name: t.as_dict() for name, t in self.stages.items()},
            "funnel": dict(self.funnel),
            "fallback": self.fallback,
            "meters": self.meters,
            "cache": self.cache,
            "batched": self.batched,
            "resources": self.resources,
            "shards": self.shards,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunMetrics":
        """Rebuild from :meth:`as_dict` output (e.g. a saved trace)."""
        return cls(
            label=d["label"],
            executor=d["executor"],
            n_tasks=d["n_tasks"],
            wall_s=d["wall_s"],
            stages={
                name: StageTotals.from_dict(t)
                for name, t in (d.get("stages") or {}).items()
            },
            funnel=dict(d.get("funnel") or {}),
            fallback=d.get("fallback"),
            meters=d.get("meters"),
            cache=d.get("cache"),  # absent in pre-cache saved traces
            batched=d.get("batched"),  # absent in pre-batching saved traces
            resources=d.get("resources"),  # absent in pre-resource saved traces
            shards=d.get("shards"),  # absent in pre-sharding saved traces
        )

    @classmethod
    def merged(
        cls,
        parts: "Sequence[RunMetrics]",
        *,
        label: str,
        executor: str,
        shards: dict[str, int],
    ) -> "RunMetrics":
        """Lossless fold of per-shard run metrics into one campaign record.

        Additive sections sum (tasks, wall, stage tables, funnel, cache,
        batched, pool payload); meter snapshots merge through the
        registry's own snapshot/merge semantics (counters add, max
        gauges max, histograms fold element-wise); process-level RSS
        peaks take the max across shards, since shards share one
        coordinator process.
        """
        out = cls(
            label=label,
            executor=executor,
            n_tasks=sum(p.n_tasks for p in parts),
            wall_s=sum(p.wall_s for p in parts),
            shards=dict(shards),
        )
        for p in parts:
            for name, totals in p.stages.items():
                out.stages.setdefault(name, StageTotals()).merge(totals)
            for key, n in p.funnel.items():
                out.funnel[key] = out.funnel.get(key, 0) + n
            if out.fallback is None:
                out.fallback = p.fallback
        if any(p.meters is not None for p in parts):
            registry = MetricsRegistry()
            for p in parts:
                if p.meters:
                    registry.merge(p.meters)
            out.meters = registry.snapshot()
        if any(p.cache is not None for p in parts):
            out.cache = {
                key: sum((p.cache or {}).get(key, 0) for p in parts)
                for key in ("hits", "misses", "stores")
            }
        if any(p.batched is not None for p in parts):
            out.batched = {
                key: sum((p.batched or {}).get(key, 0) for p in parts)
                for key in ("blocks", "groups", "chunks")
            }
        res_parts = [p.resources for p in parts if p.resources is not None]
        if res_parts:
            out.resources = _merge_resources(res_parts)
        return out

    def report(self) -> str:
        """Aligned plain-text run report (the ``--metrics`` output)."""
        lines = [
            f"run {self.label!r}: {self.n_tasks} blocks in {self.wall_s:.2f}s "
            f"({self.blocks_per_sec:.1f} blocks/s) on {self.executor}"
        ]
        if self.fallback:
            lines.append(f"  ! fell back to serial: {self.fallback}")
        if self.stages:
            rows = [["stage", "calls", "skipped", "wall_s", "cpu_s", "rss+", "n_in", "n_out"]]
            ordered = [n for n in PIPELINE_STAGES if n in self.stages]
            ordered += [n for n in self.stages if n not in PIPELINE_STAGES]
            for name in ordered:
                t = self.stages[name]
                rows.append(
                    [
                        name,
                        str(t.calls),
                        str(sum(t.skips.values())),
                        f"{t.wall_s:.3f}",
                        f"{t.cpu_s:.3f}",
                        format_bytes(t.rss_delta),
                        str(t.n_in),
                        str(t.n_out),
                    ]
                )
            widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
            for i, row in enumerate(rows):
                lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
                if i == 0:
                    lines.append("  " + "  ".join("-" * w for w in widths))
        if self.funnel:
            funnel = "  ".join(f"{k}={v}" for k, v in self.funnel.items())
            lines.append(f"  funnel: {funnel}")
        if self.cache is not None:
            hits = self.cache.get("hits", 0)
            looked = hits + self.cache.get("misses", 0)
            rate = 100.0 * hits / looked if looked else 0.0
            lines.append(
                f"  cache: {hits}/{looked} hits ({rate:.0f}%), "
                f"{self.cache.get('stores', 0)} stored"
            )
        if self.batched is not None:
            lines.append(
                f"  batched: {self.batched.get('blocks', 0)} blocks in "
                f"{self.batched.get('groups', 0)} grid groups, "
                f"{self.batched.get('chunks', 0)} chunks"
            )
        if self.shards is not None:
            lines.append(
                f"  shards: merged {self.shards.get('shards', 0)} shards, "
                f"{self.shards.get('spilled_items', 0)} results spilled "
                f"({format_bytes(self.shards.get('spill_bytes', 0))})"
            )
        if self.resources is not None:
            res = self.resources
            line = (
                f"  resources: cpu {res.get('cpu_s', 0.0):.2f}s / "
                f"{res.get('wall_s', 0.0):.2f}s wall "
                f"({100.0 * res.get('cpu_utilization', 0.0):.0f}%), "
                f"rss {format_bytes(res.get('rss_bytes', 0))} "
                f"(peak {format_bytes(res.get('rss_peak_bytes', 0))}, "
                f"run +{format_bytes(res.get('rss_peak_delta_bytes', 0))})"
            )
            lines.append(line)
            tm = res.get("tracemalloc")
            if tm:
                lines.append(
                    f"  tracemalloc: {format_bytes(tm.get('current_bytes', 0))} live, "
                    f"{format_bytes(tm.get('peak_bytes', 0))} peak"
                )
            pool = res.get("pool")
            if pool:
                line = (
                    f"  pool: {format_bytes(pool.get('task_bytes', 0))} payload out, "
                    f"{format_bytes(pool.get('result_bytes', 0))} results back "
                    f"over {pool.get('maps', 0)} dispatches"
                )
                if "shm_bytes" in pool:
                    line += f", {format_bytes(pool.get('shm_bytes', 0))} via shm"
                lines.append(line)
            workers = res.get("workers")
            if workers:
                lines.append(
                    f"  workers: cpu {workers.get('cpu_s', 0.0):.2f}s over "
                    f"{workers.get('tasks', 0)} tasks, "
                    f"rss peak {format_bytes(workers.get('rss_peak_bytes', 0))}"
                )
        return "\n".join(lines)


@dataclass
class EngineRun:
    """Ordered task results plus the aggregated run metrics.

    ``results`` is a plain list for in-memory runs and a lazy,
    disk-backed :class:`~repro.runtime.spill.SpilledResults` for sharded
    runs — both index and iterate in task order."""

    results: "Sequence[Any]"
    metrics: RunMetrics


@dataclass(frozen=True)
class _TracedDispatch:
    """Where a traced run's shipped telemetry fragments accumulate."""

    tracer: Tracer
    registry: MetricsRegistry
    parent_id: str


def _chunk_group(
    members: list[tuple[int, Any]], workers: int, min_rows: int = 8
) -> list[list[tuple[int, Any]]]:
    """Split one grid group into tail-job chunks.

    Serial execution keeps the whole group as one chunk (maximum batch
    width); a parallel executor gets about two chunks per worker so the
    pool load-balances, but never chunks below ``min_rows`` — tiny
    batches forfeit the columnar win to dispatch overhead.
    """
    if workers <= 1 or len(members) <= min_rows:
        return [members]
    size = max(-(-len(members) // (workers * 2)), min_rows)
    return [members[i : i + size] for i in range(0, len(members), size)]


def _resolve_batched(value: bool | None) -> bool:
    """Resolve the batched-dispatch setting (``REPRO_BATCHED`` when None).

    Unset or empty means on — batching is the default because results
    are identical to per-block dispatch.  Garbage values warn and keep
    the default rather than silently changing execution.
    """
    if value is not None:
        return bool(value)
    raw = envconfig.raw("REPRO_BATCHED")
    if not raw:
        return True
    lowered = raw.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    warnings.warn(
        f"REPRO_BATCHED={raw!r} is not a boolean; batching stays on",
        RuntimeWarning,
        stacklevel=3,
    )
    return True


def _resolve_shm(value: bool | None) -> bool:
    """Resolve the shared-memory dispatch setting (``REPRO_SHM`` when None).

    Unset or empty means **off** — the shm tier is opt-in (``--shm``)
    while the pickle path remains the battle-tested default.  Garbage
    values warn and keep the default rather than silently changing
    execution.
    """
    if value is not None:
        return bool(value)
    raw = envconfig.raw("REPRO_SHM")
    if not raw:
        return False
    lowered = raw.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    warnings.warn(
        f"REPRO_SHM={raw!r} is not a boolean; shm dispatch stays off",
        RuntimeWarning,
        stacklevel=3,
    )
    return False


def _merge_resources(parts: "Sequence[dict[str, Any]]") -> dict[str, Any]:
    """Fold per-shard resource summaries into one campaign summary.

    Shards run sequentially in one coordinator process, so wall and CPU
    add while RSS peaks max (the high-water mark is process-wide); the
    ``rss_bytes`` point sample is the last shard's (the most recent).
    Pool payload counters and worker aggregates are additive, except
    worker RSS peaks which also max (pool workers persist across
    shards under the shm tier).
    """
    wall_s = sum(p.get("wall_s", 0.0) for p in parts)
    cpu_s = sum(p.get("cpu_s", 0.0) for p in parts)
    out: dict[str, Any] = {
        "wall_s": wall_s,
        "cpu_s": cpu_s,
        "cpu_utilization": cpu_s / wall_s if wall_s > 0.0 else 0.0,
        "rss_bytes": parts[-1].get("rss_bytes", 0),
        "rss_peak_bytes": max(p.get("rss_peak_bytes", 0) for p in parts),
        "rss_peak_delta_bytes": max(p.get("rss_peak_delta_bytes", 0) for p in parts),
    }
    tm_parts = [p["tracemalloc"] for p in parts if p.get("tracemalloc")]
    if tm_parts:
        out["tracemalloc"] = {
            "current_bytes": tm_parts[-1].get("current_bytes", 0),
            "peak_bytes": max(t.get("peak_bytes", 0) for t in tm_parts),
            "delta_bytes": sum(t.get("delta_bytes", 0) for t in tm_parts),
        }
    pool_parts = [p["pool"] for p in parts if p.get("pool")]
    if pool_parts:
        keys = {k for pool in pool_parts for k in pool}
        out["pool"] = {k: sum(pool.get(k, 0) for pool in pool_parts) for k in keys}
    worker_parts = [p["workers"] for p in parts if p.get("workers")]
    if worker_parts:
        workers: dict[str, Any] = {
            "cpu_s": sum(w.get("cpu_s", 0.0) for w in worker_parts),
            "tasks": sum(w.get("tasks", 0) for w in worker_parts),
        }
        rss_vals = [w["rss_peak_bytes"] for w in worker_parts if "rss_peak_bytes" in w]
        if rss_vals:
            workers["rss_peak_bytes"] = max(rss_vals)
        out["workers"] = workers
    return out


#: Bounded history of recent runs, drained by ``repro --metrics``.
_RUN_LOG: deque[RunMetrics] = deque(maxlen=64)


def drain_run_log() -> list[RunMetrics]:
    """Return and clear the recent-run log."""
    out = list(_RUN_LOG)
    _RUN_LOG.clear()
    return out


def peek_run_log() -> list[RunMetrics]:
    return list(_RUN_LOG)


class CampaignEngine:
    """Runs block tasks through an executor and aggregates instrumentation.

    One engine is reusable across runs; ``history`` keeps that engine's
    own :class:`RunMetrics` in order (the module-level run log keeps a
    process-wide view for the CLI).
    """

    def __init__(
        self,
        executor: Executor | None = None,
        cache: AnalysisCache | None = None,
        batched: bool | None = None,
        shards: int | None = None,
    ) -> None:
        """``batched`` selects the columnar dispatch path for jobs that
        support it (``fn.batched_split()``); ``None`` defers to the
        ``REPRO_BATCHED`` environment variable (the CLI's ``--batched`` /
        ``--no-batched``), which defaults to on.  ``shards`` partitions
        each run's task list into contiguous ranges streamed one at a
        time with results spilled to disk between shards; ``None``
        defers to ``REPRO_SHARDS`` (the CLI's ``--shards``), defaulting
        to unsharded.  Results are identical either way — the flags only
        change how the work is executed."""
        self.executor: Executor = executor or SerialExecutor()
        self.cache = cache
        self.batched = _resolve_batched(batched)
        self.shards = resolve_shards(shards)
        self.history: list[RunMetrics] = []
        self._stripes: dict[str, AnalysisCache] = {}

    def close(self) -> None:
        """Release executor-held resources (idempotent).

        Only the shm tier holds any: its persistent worker pool lives
        until this call (or GC).  Serial/parallel engines close to a
        no-op, so generic callers may always use the context manager.
        """
        closer = getattr(self.executor, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        *,
        label: str = "campaign",
        tracer: Tracer | NoopTracer | None = None,
    ) -> EngineRun:
        """Map ``fn`` over ``tasks`` and aggregate any stage records.

        Results keep task order for any executor.  Task results that are
        :class:`BlockResult` contribute stage totals and funnel counters;
        other result types are simply counted and timed.

        When the engine is sharded (``shards > 1``), the task list is
        partitioned into contiguous ranges (:class:`ShardPlan`) streamed
        one shard at a time; each completed shard's results spill to a
        memory-mapped on-disk layout before the next shard starts, so
        coordinator RSS is bounded by one shard's working set, not the
        world.  Per-shard metrics merge losslessly into one
        :class:`RunMetrics` and ``results`` comes back as a lazy
        :class:`~repro.runtime.spill.SpilledResults` — contiguity makes
        the slot order, and therefore every downstream output, byte-
        identical to an unsharded run.

        When the engine has a cache and ``fn`` exposes a
        ``cache_key(task)`` method, each task's key is consulted before
        dispatch and its result stored after; hits bypass the executor
        entirely (their :class:`BlockResult` carries no stage records,
        because no stage ran) but land in the same result slot, so
        cached runs stay byte-identical to computed ones.  Jobs without
        ``cache_key`` run uncached, as do tasks whose key comes back
        ``None`` (uncacheable inputs).

        When the ambient (or given) tracer is enabled, the run opens a
        ``campaign`` span, runs each task through :class:`TracedCall`
        so per-block spans and worker metric snapshots ship back, and
        merges the snapshots into :attr:`RunMetrics.meters` and the
        process-wide registry.  Tracing never touches task results:
        serial and parallel runs stay byte-identical with it on or off.

        When the engine is :attr:`batched` and ``fn`` exposes
        ``batched_split()``, dispatch happens in two phases inside this
        one run: the per-block phase fans out, survivors regroup by
        shared sample grid into matrix chunks, and the batch phase maps
        the tail job over the chunks.  Cache keys, results, and stage
        records are those of the per-block path, byte for byte;
        :attr:`RunMetrics.batched` records what was regrouped.
        """
        tasks = list(tasks)
        plan = ShardPlan.plan(self.shards, len(tasks))
        if plan.n_shards <= 1:
            return self._run_once(fn, tasks, label=label, tracer=tracer)
        tracer = get_tracer() if tracer is None else tracer
        return self._run_sharded(fn, tasks, label=label, tracer=tracer, plan=plan)

    def _run_once(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        label: str = "campaign",
        tracer: Tracer | NoopTracer | None = None,
        record: bool = True,
    ) -> EngineRun:
        """One unsharded engine run (the pre-sharding ``run`` body).

        ``record=False`` keeps a sharded campaign's per-shard sub-runs
        out of ``history`` and the module run log — only the merged
        campaign record lands there."""
        tracer = get_tracer() if tracer is None else tracer
        use_batched = self.batched and hasattr(fn, "batched_split")

        tracker = ResourceTracker()
        payload_before = self._payload_snapshot()
        start = time.perf_counter()
        keys, hits, pending = self._consult_cache(fn, tasks)
        progress = get_progress()
        if keys is not None:
            progress.begin(
                label,
                len(tasks),
                done=len(hits),
                cache_hits=len(hits),
                cache_misses=len(pending),
            )
        else:
            progress.begin(label, len(tasks))
        try:
            pending_tasks = [tasks[i] for i in pending]
            if not tracer.enabled:
                if use_batched:
                    computed, batched_stats = self._dispatch_batched(fn, pending_tasks)
                else:
                    computed = self._map_tasks(fn, pending_tasks, None, "block")
                    batched_stats = None
                wall_s = time.perf_counter() - start
                results = self._merge_results(len(tasks), hits, pending, computed)
                metrics = self._aggregate(results, label=label, wall_s=wall_s)
                metrics.batched = batched_stats
                stores = self._store_results(keys, pending, computed)
                metrics.cache = self._cache_stats(keys, hits, pending, stores)
                if metrics.cache is not None:
                    self._emit_cache_counters(get_registry(), metrics.cache)
                if batched_stats is not None:
                    self._emit_batched_counters(get_registry(), batched_stats)
                metrics.resources = self._finish_resources(
                    tracker, payload_before, meters=None
                )
                self._emit_resource_meters(get_registry(), metrics.resources)
            else:
                results, metrics = self._run_traced(
                    fn,
                    tasks,
                    label=label,
                    tracer=tracer,
                    started=start,
                    keys=keys,
                    hits=hits,
                    pending=pending,
                    use_batched=use_batched,
                    tracker=tracker,
                    payload_before=payload_before,
                )
        finally:
            progress.finish()
        if record:
            self.history.append(metrics)
            _RUN_LOG.append(metrics)
        return EngineRun(results=results, metrics=metrics)

    # -- sharding ----------------------------------------------------------
    def _stripe_cache(self, shard_id: int) -> AnalysisCache | None:
        """The cache a shard's sub-engine should use.

        Disk-backed caches stripe (one ``shard-NN/`` subtree each, keys
        staying shard-invariant); memory-only caches are shared as-is —
        striping one would just split its LRU into N cold fragments.
        Stripe views are memoised so repeat runs on one engine keep
        their memory tiers warm.
        """
        if self.cache is None or self.cache.directory is None:
            return self.cache
        stripe = f"shard-{shard_id:02d}"
        view = self._stripes.get(stripe)
        if view is None:
            view = self.cache.stripe_view(stripe)
            self._stripes[stripe] = view
        return view

    def _run_sharded(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        label: str,
        tracer: Tracer | NoopTracer,
        plan: ShardPlan,
    ) -> EngineRun:
        """Stream ``tasks`` through the engine one shard at a time.

        Each shard runs on a single-shard sub-engine sharing this
        engine's executor (so the shm tier's persistent pool survives
        across shards) and its own cache stripe; completed shard results
        spill to disk immediately, bounding coordinator RSS by one
        shard's working set.  The spill directory is owned here: written
        by this coordinator, deleted by this coordinator on failure, and
        handed to the returned :class:`SpilledResults` on success (whose
        finalizer deletes it when the results are garbage collected).
        """
        tracker = ResourceTracker()
        spill = SpillDir.create()
        parts: list[RunMetrics] = []
        readers = []
        progress = get_progress()
        try:
            with progress.campaign_scope(label, total=len(tasks), n_shards=plan.n_shards):
                for i, (lo, hi) in enumerate(plan.ranges):
                    sub = CampaignEngine(
                        self.executor, self._stripe_cache(i), self.batched, shards=1
                    )
                    with progress.shard_scope(i, lo), tracer.tagged(
                        shard=i, shards=plan.n_shards
                    ):
                        run = sub._run_once(
                            fn, tasks[lo:hi], label=label, tracer=tracer, record=False
                        )
                    readers.append(spill.write_shard(i, run.results))
                    parts.append(run.metrics)
        except BaseException:
            spill.cleanup()
            raise
        metrics = RunMetrics.merged(
            parts,
            label=label,
            executor=self.executor.name,
            shards={
                "shards": plan.n_shards,
                "spilled_items": spill.n_items,
                "spill_bytes": spill.bytes_written,
            },
        )
        # per-shard trackers bracket only their own run; the coordinator's
        # tracker saw the whole campaign including spill I/O, so its
        # process-level numbers are the truthful ones
        res = tracker.summary()
        if metrics.resources is None:
            metrics.resources = res
        else:
            for key in (
                "wall_s",
                "cpu_s",
                "cpu_utilization",
                "rss_bytes",
                "rss_peak_bytes",
                "rss_peak_delta_bytes",
            ):
                metrics.resources[key] = res[key]
            if "tracemalloc" in res:
                metrics.resources["tracemalloc"] = res["tracemalloc"]
        metrics.wall_s = res["wall_s"]
        get_registry().counter("engine.shards").inc(plan.n_shards)
        self.history.append(metrics)
        _RUN_LOG.append(metrics)
        return EngineRun(results=SpilledResults(spill, readers), metrics=metrics)

    # -- caching -----------------------------------------------------------
    def _consult_cache(
        self, fn: Callable[[Any], Any], tasks: list[Any]
    ) -> tuple[list[str | None] | None, dict[int, Any], list[int]]:
        """Split tasks into cache hits and indices still to compute."""
        keyfn = getattr(fn, "cache_key", None)
        if self.cache is None or keyfn is None:
            return None, {}, list(range(len(tasks)))
        keys: list[str | None] = [keyfn(task) for task in tasks]
        hits: dict[int, Any] = {}
        pending: list[int] = []
        for i, key in enumerate(keys):
            if key is not None:
                found, value = self.cache.get(key)
                if found:
                    hits[i] = value
                    continue
            pending.append(i)
        return keys, hits, pending

    def _store_results(
        self, keys: list[str | None] | None, pending: list[int], computed: list[Any]
    ) -> int:
        if self.cache is None or keys is None:
            return 0
        stores = 0
        for i, value in zip(pending, computed):
            key = keys[i]
            if key is None:
                continue
            if isinstance(value, BlockResult) and value.stages:
                # stage records describe the compute that just happened;
                # a later hit must not replay them as if it ran stages
                value = replace(value, stages=())
            stores += int(self.cache.put(key, value))
        return stores

    @staticmethod
    def _merge_results(
        n: int, hits: dict[int, Any], pending: list[int], computed: list[Any]
    ) -> list[Any]:
        results: list[Any] = [None] * n
        for i, value in hits.items():
            results[i] = value
        for i, value in zip(pending, computed):
            results[i] = value
        return results

    @staticmethod
    def _cache_stats(
        keys: list[str | None] | None,
        hits: dict[int, Any],
        pending: list[int],
        stores: int,
    ) -> dict[str, int] | None:
        if keys is None:
            return None
        return {"hits": len(hits), "misses": len(pending), "stores": stores}

    @staticmethod
    def _emit_cache_counters(registry: MetricsRegistry, stats: dict[str, int]) -> None:
        registry.counter("cache.hit").inc(stats["hits"])
        registry.counter("cache.miss").inc(stats["misses"])
        registry.counter("cache.store").inc(stats["stores"])

    def _run_traced(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        label: str,
        tracer: Tracer,
        started: float,
        keys: list[str | None] | None,
        hits: dict[int, Any],
        pending: list[int],
        use_batched: bool = False,
        tracker: ResourceTracker | None = None,
        payload_before: dict[str, int] | None = None,
    ) -> tuple[list[Any], RunMetrics]:
        if tracker is None:
            tracker = ResourceTracker()
        with tracer.span(
            "campaign",
            attrs={"label": label, "executor": self.executor.name, "n_tasks": len(tasks)},
        ) as span:
            merged = MetricsRegistry()
            traced = _TracedDispatch(
                tracer=tracer, registry=merged, parent_id=span.span_id
            )
            pending_tasks = [tasks[i] for i in pending]
            if use_batched:
                computed, batched_stats = self._dispatch_batched(
                    fn, pending_tasks, traced
                )
            else:
                computed = self._map_tasks(fn, pending_tasks, traced, "block")
                batched_stats = None
            wall_s = time.perf_counter() - started
            results = self._merge_results(len(tasks), hits, pending, computed)
            metrics = self._aggregate(results, label=label, wall_s=wall_s)
            metrics.batched = batched_stats
            stores = self._store_results(keys, pending, computed)
            metrics.cache = self._cache_stats(keys, hits, pending, stores)
            if metrics.cache is not None:
                self._emit_cache_counters(merged, metrics.cache)
            if batched_stats is not None:
                self._emit_batched_counters(merged, batched_stats)
            merged.counter("engine.tasks").inc(len(results))
            merged.histogram("engine.run_wall_s").observe(wall_s)
            for key, n in metrics.funnel.items():
                merged.counter(metric_name("funnel", key)).inc(n)
            # worker meters have merged by now: summarise them into the
            # resources section, then emit the coordinator's own meters
            # so the final snapshot carries the full resource picture
            metrics.resources = self._finish_resources(
                tracker, payload_before, meters=merged.snapshot()
            )
            self._emit_resource_meters(merged, metrics.resources)
            metrics.meters = merged.snapshot()
            # the process-wide registry sees worker metrics too, so the
            # manifest's snapshot covers the whole run
            get_registry().merge(metrics.meters)
            span.set(wall_s=round(wall_s, 6), fallback=metrics.fallback)
            if metrics.cache is not None:
                span.set(cache_hits=metrics.cache["hits"])
        return results, metrics

    # -- resource accounting ------------------------------------------------
    def _payload_snapshot(self) -> dict[str, int] | None:
        """Copy of the executor's cumulative payload counters, if it has any."""
        payload = getattr(self.executor, "payload", None)
        return dict(payload) if isinstance(payload, dict) else None

    def _finish_resources(
        self,
        tracker: ResourceTracker,
        payload_before: dict[str, int] | None,
        *,
        meters: dict[str, Any] | None,
    ) -> dict[str, Any]:
        """Close the run's resource bracket and assemble the summary.

        ``pool`` is the pool payload delta attributable to this run (only
        present when a real pool dispatched); ``workers`` summarises the
        per-worker meters shipped home by :class:`TracedCall` (traced
        runs only — untraced parallel runs have no shipping envelope).
        """
        res = tracker.summary()
        payload_after = self._payload_snapshot()
        if payload_after is not None and payload_before is not None:
            delta = {
                k: payload_after.get(k, 0) - payload_before.get(k, 0)
                for k in payload_after
            }
            if delta.get("maps", 0) > 0:
                pool_delta = {
                    "fn_bytes": delta.get("fn_bytes", 0),
                    "task_bytes": delta.get("task_bytes", 0),
                    "result_bytes": delta.get("result_bytes", 0),
                    "maps": delta.get("maps", 0),
                }
                if "shm_bytes" in delta:  # the shm tier's published bytes
                    pool_delta["shm_bytes"] = delta.get("shm_bytes", 0)
                res["pool"] = pool_delta
        if meters is not None:
            workers: dict[str, Any] = {}
            cpu = meters.get("resources.worker.cpu_s")
            if cpu is not None:
                workers["cpu_s"] = cpu.get("sum", 0.0)
                workers["tasks"] = cpu.get("count", 0)
            rss = meters.get("resources.worker.rss_peak_bytes")
            if rss is not None:
                workers["rss_peak_bytes"] = int(rss.get("value", 0))
            if workers:
                res["workers"] = workers
        return res

    @staticmethod
    def _emit_resource_meters(registry: MetricsRegistry, res: dict[str, Any]) -> None:
        registry.histogram("resources.cpu_s").observe(res.get("cpu_s", 0.0))
        registry.max_gauge("resources.rss_peak_bytes").set(res.get("rss_peak_bytes", 0))

    # -- batched dispatch ---------------------------------------------------
    def _map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        traced: "_TracedDispatch | None",
        span_name: str,
        tick_weight: int = 1,
    ) -> list[Any]:
        """One executor fan-out, through :class:`TracedCall` when traced.

        Every completed result ticks the ambient progress emitter;
        ``tick_weight`` is 1 for fan-outs that complete one block per
        result and 0 for the batched tail phase (whose blocks were
        already counted by phase A), so ``done`` converges to the task
        total exactly once per block.
        """
        progress = get_progress()

        def on_result(_result: Any) -> None:
            progress.tick(tick_weight)

        if traced is None:
            return self.executor.map(fn, tasks, on_result)
        call = TracedCall(
            fn=fn,
            trace_id=traced.tracer.trace_id,
            parent_id=traced.parent_id,
            span_name=span_name,
        )
        shipped = self.executor.map(call, tasks, on_result)
        values = []
        for s in shipped:
            traced.tracer.adopt(s.spans)
            traced.registry.merge(s.meters)
            values.append(s.value)
        return values

    def _dispatch_batched(
        self,
        fn: Callable[[Any], Any],
        pending_tasks: list[Any],
        traced: "_TracedDispatch | None" = None,
    ) -> tuple[list[Any], dict[str, int]]:
        """Two-phase dispatch: per-block reconstruction, then batched tails.

        Phase A maps the reconstruct job over every pending task (one
        ``block`` span each, exactly like per-block dispatch).  Tasks
        that short-circuited already hold their final result; the rest
        regroup by shared sample grid, are chunked to keep a parallel
        executor's pool busy, and phase B maps the tail job over the
        chunks (one ``batch`` span each).  Slot order is preserved, so
        the caller merges results exactly as in the per-block path.
        """
        recon_fn, tail_fn = fn.batched_split()
        produced = self._map_tasks(recon_fn, pending_tasks, traced, "block")
        slots: list[Any] = [None] * len(produced)
        survivors: list[tuple[int, Any]] = []
        for i, item in enumerate(produced):
            if isinstance(item, BlockResult):
                slots[i] = item  # firewalled short-circuit: already final
            else:
                survivors.append((i, item))
        groups: dict[bytes, list[tuple[int, Any]]] = {}
        for i, rb in survivors:
            grid = rb.reconstruction.counts.times.tobytes()
            groups.setdefault(grid, []).append((i, rb))
        workers = getattr(self.executor, "workers", 1)
        chunks: list[list[tuple[int, Any]]] = []
        for members in groups.values():
            chunks.extend(_chunk_group(members, workers))
        computed = self._map_tasks(
            tail_fn,
            [tuple(rb for _, rb in c) for c in chunks],
            traced,
            "batch",
            tick_weight=0,  # phase A already counted these blocks as done
        )
        for members, block_results in zip(chunks, computed):
            for (i, _), result in zip(members, block_results):
                slots[i] = result
        stats = {
            "blocks": len(survivors),
            "groups": len(groups),
            "chunks": len(chunks),
        }
        return slots, stats

    @staticmethod
    def _emit_batched_counters(registry: MetricsRegistry, stats: dict[str, int]) -> None:
        registry.counter("engine.batched.blocks").inc(stats["blocks"])
        registry.counter("engine.batched.groups").inc(stats["groups"])
        registry.counter("engine.batched.chunks").inc(stats["chunks"])

    # -- aggregation -------------------------------------------------------
    def _aggregate(self, results: list[Any], *, label: str, wall_s: float) -> RunMetrics:
        stages: dict[str, StageTotals] = {}
        routed = responsive = diurnal = wide = change_sensitive = 0
        saw_blocks = False
        for result in results:
            if not isinstance(result, BlockResult):
                continue
            saw_blocks = True
            routed += 1
            for record in result.stages:
                stages.setdefault(record.name, StageTotals()).add(record)
            c = result.analysis.classification
            if c.responsive:
                responsive += 1
                diurnal += int(c.is_diurnal)
                wide += int(c.is_wide_swing)
                change_sensitive += int(c.is_change_sensitive)
        funnel = (
            {
                "routed": routed,
                "responsive": responsive,
                "diurnal": diurnal,
                "wide_swing": wide,
                "change_sensitive": change_sensitive,
            }
            if saw_blocks
            else {}
        )
        return RunMetrics(
            label=label,
            executor=self.executor.name,
            n_tasks=len(results),
            wall_s=wall_s,
            stages=stages,
            funnel=funnel,
            fallback=getattr(self.executor, "fallback_reason", None),
        )


def default_engine() -> CampaignEngine:
    """Engine for callers that did not pick one: ``REPRO_WORKERS`` decides.

    ``REPRO_WORKERS`` unset, empty, ``0`` or ``1`` means serial; any
    larger value selects a process pool of that size.  A value that is
    not an integer, or is negative, also runs serial — but loudly, via
    ``warnings.warn``, instead of silently ignoring the setting.  The
    CLI's ``--workers N`` flag sets this variable for the whole run.

    ``REPRO_CACHE=DIR`` (the CLI's ``--cache DIR``) additionally attaches
    the content-addressed analysis cache rooted at that directory.

    ``REPRO_SHM`` (the CLI's ``--shm``) upgrades a multi-worker pool to
    the zero-copy shared-memory tier (one persistent pool per engine,
    descriptors instead of array pickles).  It needs ``workers > 1`` to
    mean anything; with a serial worker count the flag warns and the
    engine stays serial.

    ``REPRO_SHARDS`` (the CLI's ``--shards N``) is resolved by the
    engine itself: each run streams through N contiguous shards with
    results spilled to disk between them, bounding coordinator RSS.
    """
    raw = envconfig.raw("REPRO_WORKERS")
    workers = 1
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            warnings.warn(
                f"REPRO_WORKERS={raw!r} is not an integer; running serial",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        if workers < 0:
            warnings.warn(
                f"REPRO_WORKERS={raw!r} is negative; clamping to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
    cache = default_cache()
    use_shm = _resolve_shm(None)
    if workers <= 1:
        if use_shm:
            warnings.warn(
                "REPRO_SHM requested but REPRO_WORKERS <= 1; "
                "shared-memory dispatch needs a pool — running serial",
                RuntimeWarning,
                stacklevel=2,
            )
        return CampaignEngine(SerialExecutor(), cache)
    if use_shm:
        return CampaignEngine(SharedMemoryExecutor(workers=workers), cache)
    return CampaignEngine(ParallelExecutor(workers=workers), cache)
