"""The staged campaign engine and its per-run instrumentation.

:class:`CampaignEngine` maps a picklable task function over an iterable
of block tasks through a pluggable :class:`~repro.runtime.executors.Executor`
and aggregates the per-stage :class:`~repro.core.stages.StageRecord`
entries each :class:`BlockResult` carries into one :class:`RunMetrics`
(per-stage wall-time totals, funnel counters, blocks/sec).

Every run is also appended to a bounded module-level log so callers
that did not thread the engine through (e.g. ``repro --metrics``) can
still print what happened.
"""

from __future__ import annotations

import os
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable

from ..core.pipeline import BlockAnalysis
from ..core.stages import PIPELINE_STAGES, StageRecord
from ..obs.metrics import MetricsRegistry, get_registry, scoped_registry
from ..obs.trace import NoopTracer, SpanRecord, Tracer, get_tracer, use_tracer
from .cache import AnalysisCache, default_cache
from .executors import Executor, ParallelExecutor, SerialExecutor

__all__ = [
    "BlockResult",
    "CampaignEngine",
    "EngineRun",
    "RunMetrics",
    "ShippedResult",
    "StageTotals",
    "TracedCall",
    "default_engine",
    "drain_run_log",
    "peek_run_log",
]


@dataclass(frozen=True)
class BlockResult:
    """One block's analysis plus the stage records that produced it."""

    key: str
    analysis: BlockAnalysis
    stages: tuple[StageRecord, ...] = ()


@dataclass(frozen=True)
class ShippedResult:
    """A task result plus the telemetry recorded while producing it.

    Worker processes cannot write into the parent's tracer or metrics
    registry, so a traced run wraps every task in :class:`TracedCall`,
    which records into process-local fragments and ships them home
    inside this envelope.  The engine unwraps ``value`` before
    aggregation, so task functions and their callers never see it.
    """

    value: Any
    spans: tuple[SpanRecord, ...] = ()
    meters: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class TracedCall:
    """Picklable wrapper that records one task's spans and metrics.

    Opens a ``block`` span parented under the campaign span (so worker
    fragments re-attach into one rooted tree), swaps in a fresh metrics
    registry for the task body, and ships both back with the result.
    The serial executor runs the exact same wrapper in-process, keeping
    serial and parallel telemetry — and results — identical.
    """

    fn: Callable[[Any], Any]
    trace_id: str
    parent_id: str

    def __call__(self, task: Any) -> ShippedResult:
        tracer = Tracer(trace_id=self.trace_id, root_parent_id=self.parent_id)
        with scoped_registry() as registry, use_tracer(tracer):
            with tracer.span("block", attrs={"pid": os.getpid()}):
                value = self.fn(task)
        return ShippedResult(
            value=value, spans=tuple(tracer.finished), meters=registry.snapshot()
        )


@dataclass
class StageTotals:
    """Aggregated stage instrumentation across one engine run."""

    calls: int = 0
    wall_s: float = 0.0
    n_in: int = 0
    n_out: int = 0
    skips: dict[str, int] = field(default_factory=dict)

    @property
    def touched(self) -> int:
        """Blocks that reached this stage (ran or recorded a skip)."""
        return self.calls + sum(self.skips.values())

    def add(self, record: StageRecord) -> None:
        if record.skipped is not None:
            self.skips[record.skipped] = self.skips.get(record.skipped, 0) + 1
            return
        self.calls += 1
        self.wall_s += record.wall_s
        self.n_in += record.n_in
        self.n_out += record.n_out

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "wall_s": self.wall_s,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "skips": dict(self.skips),
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "StageTotals":
        return cls(
            calls=d["calls"],
            wall_s=d["wall_s"],
            n_in=d["n_in"],
            n_out=d["n_out"],
            skips=dict(d.get("skips") or {}),
        )


@dataclass
class RunMetrics:
    """What one engine run did, where the time went, and what survived."""

    label: str
    executor: str
    n_tasks: int
    wall_s: float
    stages: dict[str, StageTotals] = field(default_factory=dict)
    funnel: dict[str, int] = field(default_factory=dict)
    fallback: str | None = None
    meters: dict[str, Any] | None = None  # merged registry snapshot (traced runs)
    cache: dict[str, int] | None = None  # hits/misses/stores (cached runs only)

    @property
    def blocks_per_sec(self) -> float:
        # Empty or zero-time runs report 0.0, never inf/nan: the dict
        # export feeds json.dumps, which would emit the non-standard
        # ``Infinity`` token and break strict JSON readers.
        if self.wall_s <= 0.0 or self.n_tasks <= 0:
            return 0.0
        return self.n_tasks / self.wall_s

    @property
    def stage_wall_s(self) -> float:
        """Summed in-stage wall time (< ``wall_s`` — excludes simulation
        overheads not recorded as a stage, > ``wall_s`` when parallel)."""
        return sum(t.wall_s for t in self.stages.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "executor": self.executor,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "blocks_per_sec": self.blocks_per_sec,
            "stages": {name: t.as_dict() for name, t in self.stages.items()},
            "funnel": dict(self.funnel),
            "fallback": self.fallback,
            "meters": self.meters,
            "cache": self.cache,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "RunMetrics":
        """Rebuild from :meth:`as_dict` output (e.g. a saved trace)."""
        return cls(
            label=d["label"],
            executor=d["executor"],
            n_tasks=d["n_tasks"],
            wall_s=d["wall_s"],
            stages={
                name: StageTotals.from_dict(t)
                for name, t in (d.get("stages") or {}).items()
            },
            funnel=dict(d.get("funnel") or {}),
            fallback=d.get("fallback"),
            meters=d.get("meters"),
            cache=d.get("cache"),  # absent in pre-cache saved traces
        )

    def report(self) -> str:
        """Aligned plain-text run report (the ``--metrics`` output)."""
        lines = [
            f"run {self.label!r}: {self.n_tasks} blocks in {self.wall_s:.2f}s "
            f"({self.blocks_per_sec:.1f} blocks/s) on {self.executor}"
        ]
        if self.fallback:
            lines.append(f"  ! fell back to serial: {self.fallback}")
        if self.stages:
            rows = [["stage", "calls", "skipped", "wall_s", "n_in", "n_out"]]
            ordered = [n for n in PIPELINE_STAGES if n in self.stages]
            ordered += [n for n in self.stages if n not in PIPELINE_STAGES]
            for name in ordered:
                t = self.stages[name]
                rows.append(
                    [
                        name,
                        str(t.calls),
                        str(sum(t.skips.values())),
                        f"{t.wall_s:.3f}",
                        str(t.n_in),
                        str(t.n_out),
                    ]
                )
            widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
            for i, row in enumerate(rows):
                lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
                if i == 0:
                    lines.append("  " + "  ".join("-" * w for w in widths))
        if self.funnel:
            funnel = "  ".join(f"{k}={v}" for k, v in self.funnel.items())
            lines.append(f"  funnel: {funnel}")
        if self.cache is not None:
            hits = self.cache.get("hits", 0)
            looked = hits + self.cache.get("misses", 0)
            rate = 100.0 * hits / looked if looked else 0.0
            lines.append(
                f"  cache: {hits}/{looked} hits ({rate:.0f}%), "
                f"{self.cache.get('stores', 0)} stored"
            )
        return "\n".join(lines)


@dataclass
class EngineRun:
    """Ordered task results plus the aggregated run metrics."""

    results: list[Any]
    metrics: RunMetrics


#: Bounded history of recent runs, drained by ``repro --metrics``.
_RUN_LOG: deque[RunMetrics] = deque(maxlen=64)


def drain_run_log() -> list[RunMetrics]:
    """Return and clear the recent-run log."""
    out = list(_RUN_LOG)
    _RUN_LOG.clear()
    return out


def peek_run_log() -> list[RunMetrics]:
    return list(_RUN_LOG)


class CampaignEngine:
    """Runs block tasks through an executor and aggregates instrumentation.

    One engine is reusable across runs; ``history`` keeps that engine's
    own :class:`RunMetrics` in order (the module-level run log keeps a
    process-wide view for the CLI).
    """

    def __init__(
        self, executor: Executor | None = None, cache: AnalysisCache | None = None
    ) -> None:
        self.executor: Executor = executor or SerialExecutor()
        self.cache = cache
        self.history: list[RunMetrics] = []

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        *,
        label: str = "campaign",
        tracer: Tracer | NoopTracer | None = None,
    ) -> EngineRun:
        """Map ``fn`` over ``tasks`` and aggregate any stage records.

        Results keep task order for any executor.  Task results that are
        :class:`BlockResult` contribute stage totals and funnel counters;
        other result types are simply counted and timed.

        When the engine has a cache and ``fn`` exposes a
        ``cache_key(task)`` method, each task's key is consulted before
        dispatch and its result stored after; hits bypass the executor
        entirely (their :class:`BlockResult` carries no stage records,
        because no stage ran) but land in the same result slot, so
        cached runs stay byte-identical to computed ones.  Jobs without
        ``cache_key`` run uncached, as do tasks whose key comes back
        ``None`` (uncacheable inputs).

        When the ambient (or given) tracer is enabled, the run opens a
        ``campaign`` span, runs each task through :class:`TracedCall`
        so per-block spans and worker metric snapshots ship back, and
        merges the snapshots into :attr:`RunMetrics.meters` and the
        process-wide registry.  Tracing never touches task results:
        serial and parallel runs stay byte-identical with it on or off.
        """
        tracer = get_tracer() if tracer is None else tracer
        tasks = list(tasks)

        start = time.perf_counter()
        keys, hits, pending = self._consult_cache(fn, tasks)
        pending_tasks = [tasks[i] for i in pending]
        if not tracer.enabled:
            computed = self.executor.map(fn, pending_tasks)
            wall_s = time.perf_counter() - start
            results = self._merge_results(len(tasks), hits, pending, computed)
            metrics = self._aggregate(results, label=label, wall_s=wall_s)
            stores = self._store_results(keys, pending, computed)
            metrics.cache = self._cache_stats(keys, hits, pending, stores)
            if metrics.cache is not None:
                self._emit_cache_counters(get_registry(), metrics.cache)
        else:
            results, metrics = self._run_traced(
                fn,
                tasks,
                label=label,
                tracer=tracer,
                started=start,
                keys=keys,
                hits=hits,
                pending=pending,
            )
        self.history.append(metrics)
        _RUN_LOG.append(metrics)
        return EngineRun(results=results, metrics=metrics)

    # -- caching -----------------------------------------------------------
    def _consult_cache(
        self, fn: Callable[[Any], Any], tasks: list[Any]
    ) -> tuple[list[str | None] | None, dict[int, Any], list[int]]:
        """Split tasks into cache hits and indices still to compute."""
        keyfn = getattr(fn, "cache_key", None)
        if self.cache is None or keyfn is None:
            return None, {}, list(range(len(tasks)))
        keys: list[str | None] = [keyfn(task) for task in tasks]
        hits: dict[int, Any] = {}
        pending: list[int] = []
        for i, key in enumerate(keys):
            if key is not None:
                found, value = self.cache.get(key)
                if found:
                    hits[i] = value
                    continue
            pending.append(i)
        return keys, hits, pending

    def _store_results(
        self, keys: list[str | None] | None, pending: list[int], computed: list[Any]
    ) -> int:
        if self.cache is None or keys is None:
            return 0
        stores = 0
        for i, value in zip(pending, computed):
            key = keys[i]
            if key is None:
                continue
            if isinstance(value, BlockResult) and value.stages:
                # stage records describe the compute that just happened;
                # a later hit must not replay them as if it ran stages
                value = replace(value, stages=())
            stores += int(self.cache.put(key, value))
        return stores

    @staticmethod
    def _merge_results(
        n: int, hits: dict[int, Any], pending: list[int], computed: list[Any]
    ) -> list[Any]:
        results: list[Any] = [None] * n
        for i, value in hits.items():
            results[i] = value
        for i, value in zip(pending, computed):
            results[i] = value
        return results

    @staticmethod
    def _cache_stats(
        keys: list[str | None] | None,
        hits: dict[int, Any],
        pending: list[int],
        stores: int,
    ) -> dict[str, int] | None:
        if keys is None:
            return None
        return {"hits": len(hits), "misses": len(pending), "stores": stores}

    @staticmethod
    def _emit_cache_counters(registry: MetricsRegistry, stats: dict[str, int]) -> None:
        registry.counter("cache.hit").inc(stats["hits"])
        registry.counter("cache.miss").inc(stats["misses"])
        registry.counter("cache.store").inc(stats["stores"])

    def _run_traced(
        self,
        fn: Callable[[Any], Any],
        tasks: list[Any],
        *,
        label: str,
        tracer: Tracer,
        started: float,
        keys: list[str | None] | None,
        hits: dict[int, Any],
        pending: list[int],
    ) -> tuple[list[Any], RunMetrics]:
        with tracer.span(
            "campaign",
            attrs={"label": label, "executor": self.executor.name, "n_tasks": len(tasks)},
        ) as span:
            call = TracedCall(fn=fn, trace_id=tracer.trace_id, parent_id=span.span_id)
            shipped = self.executor.map(call, [tasks[i] for i in pending])
            wall_s = time.perf_counter() - started
            computed = [s.value for s in shipped]
            results = self._merge_results(len(tasks), hits, pending, computed)
            merged = MetricsRegistry()
            for s in shipped:
                tracer.adopt(s.spans)
                merged.merge(s.meters)
            metrics = self._aggregate(results, label=label, wall_s=wall_s)
            stores = self._store_results(keys, pending, computed)
            metrics.cache = self._cache_stats(keys, hits, pending, stores)
            if metrics.cache is not None:
                self._emit_cache_counters(merged, metrics.cache)
            merged.counter("engine.tasks").inc(len(results))
            merged.histogram("engine.run_wall_s").observe(wall_s)
            for key, n in metrics.funnel.items():
                merged.counter(f"funnel.{key}").inc(n)
            metrics.meters = merged.snapshot()
            # the process-wide registry sees worker metrics too, so the
            # manifest's snapshot covers the whole run
            get_registry().merge(metrics.meters)
            span.set(wall_s=round(wall_s, 6), fallback=metrics.fallback)
            if metrics.cache is not None:
                span.set(cache_hits=metrics.cache["hits"])
        return results, metrics

    # -- aggregation -------------------------------------------------------
    def _aggregate(self, results: list[Any], *, label: str, wall_s: float) -> RunMetrics:
        stages: dict[str, StageTotals] = {}
        routed = responsive = diurnal = wide = change_sensitive = 0
        saw_blocks = False
        for result in results:
            if not isinstance(result, BlockResult):
                continue
            saw_blocks = True
            routed += 1
            for record in result.stages:
                stages.setdefault(record.name, StageTotals()).add(record)
            c = result.analysis.classification
            if c.responsive:
                responsive += 1
                diurnal += int(c.is_diurnal)
                wide += int(c.is_wide_swing)
                change_sensitive += int(c.is_change_sensitive)
        funnel = (
            {
                "routed": routed,
                "responsive": responsive,
                "diurnal": diurnal,
                "wide_swing": wide,
                "change_sensitive": change_sensitive,
            }
            if saw_blocks
            else {}
        )
        return RunMetrics(
            label=label,
            executor=self.executor.name,
            n_tasks=len(results),
            wall_s=wall_s,
            stages=stages,
            funnel=funnel,
            fallback=getattr(self.executor, "fallback_reason", None),
        )


def default_engine() -> CampaignEngine:
    """Engine for callers that did not pick one: ``REPRO_WORKERS`` decides.

    ``REPRO_WORKERS`` unset, empty, ``0`` or ``1`` means serial; any
    larger value selects a process pool of that size.  A value that is
    not an integer, or is negative, also runs serial — but loudly, via
    ``warnings.warn``, instead of silently ignoring the setting.  The
    CLI's ``--workers N`` flag sets this variable for the whole run.

    ``REPRO_CACHE=DIR`` (the CLI's ``--cache DIR``) additionally attaches
    the content-addressed analysis cache rooted at that directory.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    workers = 1
    if raw:
        try:
            workers = int(raw)
        except ValueError:
            warnings.warn(
                f"REPRO_WORKERS={raw!r} is not an integer; running serial",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        if workers < 0:
            warnings.warn(
                f"REPRO_WORKERS={raw!r} is negative; clamping to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
    cache = default_cache()
    if workers <= 1:
        return CampaignEngine(SerialExecutor(), cache)
    return CampaignEngine(ParallelExecutor(workers=workers), cache)
