"""The staged campaign engine and its per-run instrumentation.

:class:`CampaignEngine` maps a picklable task function over an iterable
of block tasks through a pluggable :class:`~repro.runtime.executors.Executor`
and aggregates the per-stage :class:`~repro.core.stages.StageRecord`
entries each :class:`BlockResult` carries into one :class:`RunMetrics`
(per-stage wall-time totals, funnel counters, blocks/sec).

Every run is also appended to a bounded module-level log so callers
that did not thread the engine through (e.g. ``repro --metrics``) can
still print what happened.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from ..core.pipeline import BlockAnalysis
from ..core.stages import PIPELINE_STAGES, StageRecord
from .executors import Executor, ParallelExecutor, SerialExecutor

__all__ = [
    "BlockResult",
    "CampaignEngine",
    "EngineRun",
    "RunMetrics",
    "StageTotals",
    "default_engine",
    "drain_run_log",
    "peek_run_log",
]


@dataclass(frozen=True)
class BlockResult:
    """One block's analysis plus the stage records that produced it."""

    key: str
    analysis: BlockAnalysis
    stages: tuple[StageRecord, ...] = ()


@dataclass
class StageTotals:
    """Aggregated stage instrumentation across one engine run."""

    calls: int = 0
    wall_s: float = 0.0
    n_in: int = 0
    n_out: int = 0
    skips: dict[str, int] = field(default_factory=dict)

    @property
    def touched(self) -> int:
        """Blocks that reached this stage (ran or recorded a skip)."""
        return self.calls + sum(self.skips.values())

    def add(self, record: StageRecord) -> None:
        if record.skipped is not None:
            self.skips[record.skipped] = self.skips.get(record.skipped, 0) + 1
            return
        self.calls += 1
        self.wall_s += record.wall_s
        self.n_in += record.n_in
        self.n_out += record.n_out

    def as_dict(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "wall_s": self.wall_s,
            "n_in": self.n_in,
            "n_out": self.n_out,
            "skips": dict(self.skips),
        }


@dataclass
class RunMetrics:
    """What one engine run did, where the time went, and what survived."""

    label: str
    executor: str
    n_tasks: int
    wall_s: float
    stages: dict[str, StageTotals] = field(default_factory=dict)
    funnel: dict[str, int] = field(default_factory=dict)
    fallback: str | None = None

    @property
    def blocks_per_sec(self) -> float:
        return self.n_tasks / self.wall_s if self.wall_s > 0 else float("inf")

    @property
    def stage_wall_s(self) -> float:
        """Summed in-stage wall time (< ``wall_s`` — excludes simulation
        overheads not recorded as a stage, > ``wall_s`` when parallel)."""
        return sum(t.wall_s for t in self.stages.values())

    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "executor": self.executor,
            "n_tasks": self.n_tasks,
            "wall_s": self.wall_s,
            "blocks_per_sec": self.blocks_per_sec,
            "stages": {name: t.as_dict() for name, t in self.stages.items()},
            "funnel": dict(self.funnel),
            "fallback": self.fallback,
        }

    def report(self) -> str:
        """Aligned plain-text run report (the ``--metrics`` output)."""
        lines = [
            f"run {self.label!r}: {self.n_tasks} blocks in {self.wall_s:.2f}s "
            f"({self.blocks_per_sec:.1f} blocks/s) on {self.executor}"
        ]
        if self.fallback:
            lines.append(f"  ! fell back to serial: {self.fallback}")
        if self.stages:
            rows = [["stage", "calls", "skipped", "wall_s", "n_in", "n_out"]]
            ordered = [n for n in PIPELINE_STAGES if n in self.stages]
            ordered += [n for n in self.stages if n not in PIPELINE_STAGES]
            for name in ordered:
                t = self.stages[name]
                rows.append(
                    [
                        name,
                        str(t.calls),
                        str(sum(t.skips.values())),
                        f"{t.wall_s:.3f}",
                        str(t.n_in),
                        str(t.n_out),
                    ]
                )
            widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
            for i, row in enumerate(rows):
                lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
                if i == 0:
                    lines.append("  " + "  ".join("-" * w for w in widths))
        if self.funnel:
            funnel = "  ".join(f"{k}={v}" for k, v in self.funnel.items())
            lines.append(f"  funnel: {funnel}")
        return "\n".join(lines)


@dataclass
class EngineRun:
    """Ordered task results plus the aggregated run metrics."""

    results: list[Any]
    metrics: RunMetrics


#: Bounded history of recent runs, drained by ``repro --metrics``.
_RUN_LOG: deque[RunMetrics] = deque(maxlen=64)


def drain_run_log() -> list[RunMetrics]:
    """Return and clear the recent-run log."""
    out = list(_RUN_LOG)
    _RUN_LOG.clear()
    return out


def peek_run_log() -> list[RunMetrics]:
    return list(_RUN_LOG)


class CampaignEngine:
    """Runs block tasks through an executor and aggregates instrumentation.

    One engine is reusable across runs; ``history`` keeps that engine's
    own :class:`RunMetrics` in order (the module-level run log keeps a
    process-wide view for the CLI).
    """

    def __init__(self, executor: Executor | None = None) -> None:
        self.executor: Executor = executor or SerialExecutor()
        self.history: list[RunMetrics] = []

    def run(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        *,
        label: str = "campaign",
    ) -> EngineRun:
        """Map ``fn`` over ``tasks`` and aggregate any stage records.

        Results keep task order for any executor.  Task results that are
        :class:`BlockResult` contribute stage totals and funnel counters;
        other result types are simply counted and timed.
        """
        tasks = list(tasks)
        start = time.perf_counter()
        results = self.executor.map(fn, tasks)
        wall_s = time.perf_counter() - start
        metrics = self._aggregate(results, label=label, wall_s=wall_s)
        self.history.append(metrics)
        _RUN_LOG.append(metrics)
        return EngineRun(results=results, metrics=metrics)

    # -- aggregation -------------------------------------------------------
    def _aggregate(self, results: list[Any], *, label: str, wall_s: float) -> RunMetrics:
        stages: dict[str, StageTotals] = {}
        routed = responsive = diurnal = wide = change_sensitive = 0
        saw_blocks = False
        for result in results:
            if not isinstance(result, BlockResult):
                continue
            saw_blocks = True
            routed += 1
            for record in result.stages:
                stages.setdefault(record.name, StageTotals()).add(record)
            c = result.analysis.classification
            if c.responsive:
                responsive += 1
                diurnal += int(c.is_diurnal)
                wide += int(c.is_wide_swing)
                change_sensitive += int(c.is_change_sensitive)
        funnel = (
            {
                "routed": routed,
                "responsive": responsive,
                "diurnal": diurnal,
                "wide_swing": wide,
                "change_sensitive": change_sensitive,
            }
            if saw_blocks
            else {}
        )
        return RunMetrics(
            label=label,
            executor=self.executor.name,
            n_tasks=len(results),
            wall_s=wall_s,
            stages=stages,
            funnel=funnel,
            fallback=getattr(self.executor, "fallback_reason", None),
        )


def default_engine() -> CampaignEngine:
    """Engine for callers that did not pick one: ``REPRO_WORKERS`` decides.

    ``REPRO_WORKERS`` unset, empty, ``0`` or ``1`` means serial; any
    larger value selects a process pool of that size.  The CLI's
    ``--workers N`` flag sets this variable for the whole run.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    try:
        workers = int(raw) if raw else 1
    except ValueError:
        workers = 1
    if workers <= 1:
        return CampaignEngine(SerialExecutor())
    return CampaignEngine(ParallelExecutor(workers=workers))
