"""Content-addressed per-block result cache for the campaign engine.

Every per-block job in this repo is a pure function of frozen inputs
(world seed and scenario, block spec, analysis window, pipeline
parameters), so its result can be keyed by a stable hash of those inputs
and reused across engine runs — and, with a disk tier, across CLI
invocations.  fig3/fig5/table3 and the covid/control campaigns share
worlds; with a cache directory they stop re-simulating them.

Key schema
----------
A key is ``sha256(stable_token((kind, CACHE_SCHEMA, inputs)))`` where
``stable_token`` renders the inputs canonically: primitives by ``repr``,
dates by isoformat, dicts with sorted keys, sets sorted, dataclasses as
``(qualified name, field tokens)``, numpy arrays as (dtype, shape, raw
bytes), and any object exposing ``cache_token()`` by recursing into
that.  The qualified class names mean a renamed or restructured config
class invalidates naturally; bumping :data:`CACHE_SCHEMA` invalidates
everything at once (do this whenever a kernel or pipeline change alters
results without changing any input field).  Objects the tokenizer does
not understand make the task *uncacheable* (``task_key`` returns
``None``) rather than wrongly cacheable.

Tiers
-----
An in-memory LRU holds the most recent ``max_items`` results; an
optional directory tier (``--cache DIR`` / ``REPRO_CACHE``) persists
pickles under ``DIR/<k[:2]>/<k>.pkl`` with atomic renames, so parallel
runs and repeated invocations are safe.  Cached results are exactly the
stored objects — the engine guarantees cached, serial, and parallel
runs stay byte-identical.

Stripes
-------
A sharded run (``--shards N``) gives each shard its own stripe view
(:meth:`AnalysisCache.stripe_view`): writes land under
``DIR/shard-NN/<k[:2]>/<k>.pkl`` so on-disk shards never contend on a
subtree, while **keys stay shard-invariant** — a key hashes the job
inputs only, never the shard id, because re-partitioning the same world
must not cold-start the cache.  Reads therefore fall back across
stripes: a stripe view misses into the unstriped root and then into
sibling stripes, and the unstriped cache misses into every stripe, so
warmth survives re-sharding in both directions.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.metrics import get_registry
from . import envconfig

__all__ = [
    "AnalysisCache",
    "CACHE_SCHEMA",
    "default_cache",
    "stable_token",
    "task_key",
]

#: Bump to invalidate every existing cache entry (result-affecting
#: change that is invisible in the job's input fields).
#: 2: cumsum moving average + extended LOESS fast path changed
#: per-block result bits at the float-rounding level.
CACHE_SCHEMA = 2


def stable_token(obj: Any) -> str:
    """Canonical string for ``obj``; raises TypeError when unrepresentable.

    Two objects that would make a per-block job behave identically must
    tokenize identically; objects that could differ must not collide.
    """
    if obj is None or isinstance(obj, (bool, int)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips float64 exactly
    if isinstance(obj, str):
        return "s" + repr(obj)
    if isinstance(obj, bytes):
        return "b" + hashlib.sha256(obj).hexdigest()
    if isinstance(obj, enum.Enum):
        return f"e({type(obj).__qualname__}:{obj.name})"
    if isinstance(obj, (_dt.datetime, _dt.date, _dt.time)):
        return f"t({obj.isoformat()})"
    if isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        return f"a({arr.dtype.str},{arr.shape},{digest})"
    if isinstance(obj, np.generic):
        return stable_token(obj.item())
    token = getattr(obj, "cache_token", None)
    if token is not None and not dataclasses.is_dataclass(obj):
        return f"o({type(obj).__qualname__},{stable_token(token())})"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={stable_token(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"d({type(obj).__qualname__},{fields})"
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(stable_token(v) for v in obj) + ")"
    if isinstance(obj, dict):
        items = sorted((stable_token(k), stable_token(v)) for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "f{" + ",".join(sorted(stable_token(v) for v in obj)) + "}"
    raise TypeError(f"cannot build a stable cache token for {type(obj)!r}")


def task_key(kind: str, inputs: dict[str, Any]) -> str | None:
    """Cache key for one job call, or None when inputs are uncacheable."""
    try:
        token = stable_token((kind, CACHE_SCHEMA, inputs))
    except TypeError:
        return None
    return hashlib.sha256(token.encode()).hexdigest()


class AnalysisCache:
    """Two-tier (memory LRU + optional directory) result store.

    The cache is dumb on purpose: it maps keys to pickled results and
    never interprets them.  Correctness rests entirely on the key —
    see the module docstring for the schema.
    """

    #: Stripe directory prefix; also the glob cross-stripe reads scan.
    STRIPE_GLOB = "shard-*"

    def __init__(
        self,
        directory: "str | os.PathLike[str] | None" = None,
        *,
        max_items: int = 1024,
        stripe: str | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.max_items = max(int(max_items), 1)
        self.stripe = stripe
        self._memory: OrderedDict[str, Any] = OrderedDict()
        self._bytes_written = 0  # cumulative durable-tier bytes, this instance

    def stripe_view(self, stripe: str) -> "AnalysisCache":
        """A view of this cache writing under ``DIR/<stripe>/``.

        Views share the durable tier's root but keep their own memory
        LRU, so N concurrent-in-spirit shards bound coordinator memory
        at N x ``max_items`` worst case while their disk entries stay
        mutually visible through the cross-stripe read fallback.
        """
        return AnalysisCache(self.directory, max_items=self.max_items, stripe=stripe)

    # -- lookup ----------------------------------------------------------
    def get(self, key: str) -> tuple[bool, Any]:
        """(hit, value); a disk hit is promoted into the memory tier.

        Disk lookup order: this stripe's own path, the unstriped root
        (pre-sharding entries), then sibling stripes — keys are
        shard-invariant, so any stripe's entry is *the* entry.
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            return True, self._memory[key]
        if self.directory is not None:
            for path in self._candidate_paths(key):
                try:
                    with open(path, "rb") as fh:
                        blob = fh.read()
                    value = pickle.loads(blob)
                except (OSError, pickle.PickleError, EOFError):
                    continue
                get_registry().counter("cache.bytes.hit").inc(len(blob))
                self._remember(key, value)
                return True, value
        return False, None

    def put(self, key: str, value: Any) -> bool:
        """Store a result in both tiers; True when it is durably stored
        (or there is no disk tier and the memory tier took it)."""
        self._remember(key, value)
        if self.directory is None:
            return True
        path = self._path(key)
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)  # atomic: parallel writers race safely
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        # byte accounting covers the durable tier only: the memory tier
        # never serialises, so it has no meaningful byte size to report
        registry = get_registry()
        registry.counter("cache.bytes.store").inc(len(blob))
        self._bytes_written += len(blob)
        registry.max_gauge("cache.bytes.at_rest").set(self._bytes_written)
        return True

    def __len__(self) -> int:
        return len(self._memory)

    # -- internals -------------------------------------------------------
    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_items:
            self._memory.popitem(last=False)

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        root = self.directory if self.stripe is None else self.directory / self.stripe
        return root / key[:2] / f"{key}.pkl"

    def _candidate_paths(self, key: str) -> "list[Path]":
        """Disk paths that may hold ``key``, own stripe first."""
        assert self.directory is not None
        own = self._path(key)
        paths = [own]
        if self.stripe is not None:
            paths.append(self.directory / key[:2] / f"{key}.pkl")
        paths.extend(
            p
            for p in sorted(self.directory.glob(f"{self.STRIPE_GLOB}/{key[:2]}/{key}.pkl"))
            if p != own
        )
        return paths


def default_cache() -> AnalysisCache | None:
    """Cache for callers that did not pick one: ``REPRO_CACHE`` decides.

    Unset or empty means no caching (every run recomputes, as before);
    a directory path enables both tiers rooted there.  The CLI's
    ``--cache DIR`` flag sets this variable for the whole run.
    """
    raw = envconfig.raw("REPRO_CACHE")
    if not raw:
        return None
    return AnalysisCache(raw)
