"""Zero-copy shared-memory transport for engine dispatch (the shm tier).

PR 7's payload accounting made the cost of the pickle dispatch plane
visible: every ``BlockMatrix`` batch and reconstruction array is pickled
into the process pool and pickled back, so at paper scale (5.2M /24
blocks) the engine is bounded by inter-process data movement, not by
kernel time.  This module is the transport half of the fix:

* :class:`ArrayDescriptor` — the small picklable handle that crosses the
  pool instead of array bytes: segment name, shape, dtype string, byte
  offset.  Descriptors are plain frozen dataclasses, so jobs may carry
  them freely (lint REP003 forbids carrying live ``SharedMemory``
  handles or memoryviews — only descriptors).
* :class:`SharedArrayPool` — a parent-side bump allocator over named
  ``multiprocessing.shared_memory`` segments.  Arrays are *published*
  once (one copy into shm), and every publication is recorded so
  :meth:`release` can unlink everything on any exit path.
* :func:`shm_dumps` / :func:`shm_loads` — shm-aware pickling.  The
  parent pickles a task normally except that every large ndarray is
  swapped for a persistent-id descriptor; the worker's unpickler
  resolves descriptors to read-only zero-copy views onto the attached
  segment.  Values, dtypes, and shapes round-trip exactly, so results
  computed from attached views are byte-identical to the pickle path's.

Worker-side attachments are cached per segment (attach once, serve every
task that references it).  Pool workers share the parent's resource
tracker, whose name cache is a set — a worker's attach re-registers a
name the parent already registered (a no-op), and the parent's unlink
performs the one unregister, so no process ever double-unlinks or warns
about segments it never owned (see :class:`_AttachmentCache`).

Lifecycle rules (enforced by tests in ``tests/test_shm.py``):

1. the parent publishes, the parent unlinks — workers only attach;
2. segments for one ``map()`` are released in a ``finally`` as soon as
   the map completes, falls back, or raises;
3. :meth:`SharedArrayPool.release` is idempotent and also registered as
   a GC finalizer, so dropping the pool can never leak a segment.
"""

from __future__ import annotations

import os
import pickle
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from io import BytesIO
from multiprocessing import shared_memory
from typing import Any, IO

import numpy as np

from . import envconfig

__all__ = [
    "ArrayDescriptor",
    "DEFAULT_MIN_SHM_BYTES",
    "SharedArrayPool",
    "attach_bytes",
    "attach_view",
    "detach_all",
    "resolve_min_shm_bytes",
    "shm_dumps",
    "shm_loads",
]

#: Arrays smaller than this are pickled inline: a descriptor plus a
#: worker-side attach costs more than copying a few hundred bytes.
DEFAULT_MIN_SHM_BYTES = 4096

#: Segment granularity of the bump allocator; one engine map usually
#: fits in a handful of segments.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024

#: Byte alignment of published arrays inside a segment.
_ALIGN = 64

#: Persistent-id tag so foreign persistent ids fail loudly.
_PID_TAG = "repro-shm-array"


def resolve_min_shm_bytes() -> int:
    """Publication threshold: ``REPRO_SHM_MIN_BYTES`` or the default."""
    return envconfig.get_int(
        "REPRO_SHM_MIN_BYTES", DEFAULT_MIN_SHM_BYTES, minimum=0
    )


@dataclass(frozen=True)
class ArrayDescriptor:
    """Where one published array lives: the only thing workers receive.

    ``dtype`` is the array-protocol string (``'<f8'``), which numpy
    resolves back to the interned dtype singleton on attach — attached
    views therefore never reintroduce the dtype-identity pickle hazard
    the batched path canonicalises away.
    """

    segment: str
    shape: tuple[int, ...]
    dtype: str
    offset: int
    nbytes: int


class SharedArrayPool:
    """Parent-side arena of named shm segments with leak-proof unlinking.

    ``publish`` copies an array (or raw bytes) into the current segment
    at an aligned offset, opening a new segment when the current one is
    full.  ``release`` closes **and unlinks** every segment ever opened;
    it is idempotent, runs from a GC finalizer as a safety net, and is
    the only place segments are unlinked — workers never unlink.
    """

    _seq = 0

    def __init__(self, segment_bytes: int = DEFAULT_SEGMENT_BYTES) -> None:
        self.segment_bytes = int(segment_bytes)
        self._segments: list[shared_memory.SharedMemory] = []
        self._cursor = 0
        #: Every segment name this pool ever created (survives release,
        #: so tests can assert the names are gone from the OS).
        self.created: list[str] = []
        self.published_bytes = 0
        self.published_arrays = 0
        # publish-once memo: many tasks in one map may reference the
        # same array object (a shared grid, a matrix fanned into
        # chunks); keyed by id() with a keep-alive so ids cannot be
        # recycled while the pool is live
        self._memo: dict[int, ArrayDescriptor] = {}
        self._keepalive: list[np.ndarray] = []
        self._finalizer = weakref.finalize(
            self, SharedArrayPool._release_segments, self._segments
        )

    # -- allocation --------------------------------------------------------
    def _new_segment(self, min_bytes: int) -> shared_memory.SharedMemory:
        size = max(self.segment_bytes, min_bytes)
        while True:
            SharedArrayPool._seq += 1
            name = f"repro_shm_{os.getpid()}_{SharedArrayPool._seq}"
            try:
                seg = shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:  # stale name from a dead process: skip it
                continue
            self._segments.append(seg)
            self.created.append(seg.name)
            self._cursor = 0
            return seg

    def _reserve(self, nbytes: int) -> tuple[shared_memory.SharedMemory, int]:
        """Aligned (segment, offset) able to hold ``nbytes``."""
        offset = -(-self._cursor // _ALIGN) * _ALIGN
        if not self._segments or offset + nbytes > self._segments[-1].size:
            seg = self._new_segment(nbytes)
            offset = 0
        else:
            seg = self._segments[-1]
        self._cursor = offset + nbytes
        return seg, offset

    # -- publication -------------------------------------------------------
    def publish(self, arr: np.ndarray) -> ArrayDescriptor:
        """Copy one array into shared memory; returns its descriptor.

        Publishing the same array *object* again returns the original
        descriptor without a second copy.
        """
        memoized = self._memo.get(id(arr))
        if memoized is not None:
            return memoized
        data = np.ascontiguousarray(arr)
        seg, offset = self._reserve(data.nbytes)
        dest: np.ndarray = np.ndarray(
            data.shape, dtype=data.dtype, buffer=seg.buf, offset=offset
        )
        dest[...] = data
        self.published_bytes += data.nbytes
        self.published_arrays += 1
        desc = ArrayDescriptor(
            segment=seg.name,
            shape=tuple(data.shape),
            dtype=data.dtype.str,
            offset=offset,
            nbytes=data.nbytes,
        )
        self._memo[id(arr)] = desc
        self._keepalive.append(arr)
        return desc

    def publish_bytes(self, payload: bytes) -> ArrayDescriptor:
        """Publish an opaque byte blob (e.g. a pre-pickled callable)."""
        blob = np.frombuffer(payload, dtype=np.uint8)
        return self.publish(blob)

    # -- lifecycle ---------------------------------------------------------
    @property
    def segment_names(self) -> list[str]:
        return [seg.name for seg in self._segments]

    @staticmethod
    def _release_segments(segments: list[shared_memory.SharedMemory]) -> None:
        while segments:
            seg = segments.pop()
            try:
                seg.close()
            except (BufferError, OSError):  # views alive: unlink still works
                pass
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass

    def release(self) -> int:
        """Close and unlink every live segment; returns how many."""
        n = len(self._segments)
        SharedArrayPool._release_segments(self._segments)
        self._cursor = 0
        self._memo.clear()
        self._keepalive.clear()
        return n

    close = release

    def __enter__(self) -> "SharedArrayPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:
        return (
            f"SharedArrayPool(segments={len(self._segments)}, "
            f"published_bytes={self.published_bytes})"
        )


# ---------------------------------------------------------------------------
# worker-side attachment cache
# ---------------------------------------------------------------------------
class _AttachmentCache:
    """Per-process cache of attached segments (attach once per segment).

    The parent unlinks segments as soon as a map completes; an attached
    mapping stays valid regardless (POSIX keeps the memory until the
    last close), so eviction is purely about bounding worker RSS.  An
    eviction that would invalidate a live view raises ``BufferError``
    from ``close`` — such segments are simply kept until their views
    die.

    Resource-tracker note: pool workers inherit the parent's resource
    tracker (both fork and spawn pass the tracker fd down), and the
    tracker's cache is a *set* of names.  The attach here re-registers a
    name the parent already registered — an idempotent no-op — and the
    parent's ``unlink`` performs the single unregister.  Workers must
    **not** unregister: with a shared tracker that would erase the
    parent's registration and make the parent's own unlink warn.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = capacity
        self._cache: "OrderedDict[str, shared_memory.SharedMemory]" = OrderedDict()

    def get(self, name: str) -> shared_memory.SharedMemory:
        seg = self._cache.get(name)
        if seg is not None:
            self._cache.move_to_end(name)
            return seg
        seg = shared_memory.SharedMemory(name=name)
        self._cache[name] = seg
        while len(self._cache) > self.capacity:
            _, old = self._cache.popitem(last=False)
            try:
                old.close()
            except BufferError:  # a view is still alive: keep it mapped
                self._cache[old.name] = old
                self._cache.move_to_end(old.name, last=False)
                break
        return seg

    def close(self) -> None:
        """Detach every cached segment (idempotent; REP006 lifecycle).

        Segments whose views are still alive raise ``BufferError`` from
        ``close`` and are kept mapped — same policy as eviction.
        """
        for name in list(self._cache):
            seg = self._cache.pop(name)
            try:
                seg.close()
            except BufferError:  # a view is still alive: keep it mapped
                self._cache[name] = seg


_ATTACHMENTS = _AttachmentCache()


def detach_all() -> None:
    """Close the worker's cached attachments (test teardown hook)."""
    _ATTACHMENTS.close()


def attach_view(desc: ArrayDescriptor) -> np.ndarray:
    """Zero-copy **read-only** ndarray over a published segment region.

    Read-only is deliberate: attached memory is shared with the parent
    and possibly other workers, so an accidental in-place mutation must
    fail loudly instead of corrupting a neighbour's input.
    """
    seg = _ATTACHMENTS.get(desc.segment)
    view: np.ndarray = np.ndarray(
        desc.shape, dtype=np.dtype(desc.dtype), buffer=seg.buf, offset=desc.offset
    )
    view.flags.writeable = False
    return view


def attach_bytes(desc: ArrayDescriptor) -> memoryview:
    """Read-only memoryview over a published byte blob (pickle payloads)."""
    data = attach_view(desc)
    return memoryview(data).cast("B")


# ---------------------------------------------------------------------------
# shm-aware pickling
# ---------------------------------------------------------------------------
class _ShmPickler(pickle.Pickler):
    """Pickler that swaps large ndarrays for published descriptors.

    Only simple (non-object, builtin-dtype) arrays at or above the
    threshold are published; everything else pickles inline.  Repeated
    references to one array publish once — within a dump and across
    dumps sharing one pool — via :meth:`SharedArrayPool.publish`'s
    identity memo.
    """

    def __init__(
        self, file: IO[bytes], pool: SharedArrayPool, min_bytes: int
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = pool
        self._min_bytes = min_bytes

    def persistent_id(self, obj: Any) -> Any:
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= self._min_bytes
            and not obj.dtype.hasobject
            and obj.dtype.isbuiltin == 1
        ):
            d = self._pool.publish(obj)
            return (_PID_TAG, d.segment, d.shape, d.dtype, d.offset, d.nbytes)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler that resolves descriptors to attached read-only views."""

    def persistent_load(self, pid: Any) -> Any:
        if isinstance(pid, tuple) and len(pid) == 6 and pid[0] == _PID_TAG:
            _, segment, shape, dtype, offset, nbytes = pid
            return attach_view(
                ArrayDescriptor(
                    segment=segment,
                    shape=tuple(shape),
                    dtype=dtype,
                    offset=offset,
                    nbytes=nbytes,
                )
            )
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def shm_dumps(obj: Any, pool: SharedArrayPool, min_bytes: int) -> bytes:
    """Pickle ``obj`` with large arrays published into ``pool``.

    The returned bytes are small — descriptors in place of array data —
    and are what actually crosses the process boundary.
    """
    buf = BytesIO()
    _ShmPickler(buf, pool, min_bytes).dump(obj)
    return buf.getvalue()


def shm_loads(payload: "bytes | memoryview") -> Any:
    """Inverse of :func:`shm_dumps`, resolving descriptors to shm views."""
    return _ShmUnpickler(BytesIO(payload)).load()
