"""Shard planning for out-of-core campaign orchestration.

The paper's campaign is 5.2M /24 blocks; holding every per-block result
in one coordinator process makes scale RSS-bound rather than CPU-bound.
Sharding partitions one engine run's task list into contiguous index
ranges that stream through the :class:`~repro.runtime.engine.CampaignEngine`
one shard at a time, with each completed shard's results spilled to a
memory-mappable on-disk layout (:mod:`repro.runtime.spill`) before the
next shard starts.

Contiguity is the identity-preserving property: concatenating per-shard
result lists in shard order reproduces exactly the slot order of an
unsharded run, so ``--shards 1``, ``--shards N``, and the unsharded
path yield byte-identical experiment outputs the same way
serial/parallel/batched/shm dispatch already do.

``REPRO_SHARDS`` (the CLI's ``--shards N``) selects the shard count the
same way ``REPRO_WORKERS`` selects the executor: unset, empty, ``0`` or
``1`` means unsharded; garbage values warn and keep the default instead
of silently changing execution.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from . import envconfig

__all__ = ["ShardPlan", "resolve_shards"]


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous, balanced partition of ``n_tasks`` into ``n_shards``.

    The first ``n_tasks % n_shards`` shards carry one extra task, so
    shard sizes differ by at most one and every task belongs to exactly
    one shard.  ``n_shards`` never exceeds ``n_tasks`` (an empty shard
    would emit begin/finish heartbeats for work that does not exist).
    """

    n_tasks: int
    n_shards: int

    @classmethod
    def plan(cls, shards: int, n_tasks: int) -> "ShardPlan":
        """Clamp ``shards`` into ``[1, max(n_tasks, 1)]`` and plan."""
        n_tasks = max(int(n_tasks), 0)
        n_shards = max(int(shards), 1)
        if n_tasks > 0:
            n_shards = min(n_shards, n_tasks)
        else:
            n_shards = 1
        return cls(n_tasks=n_tasks, n_shards=n_shards)

    @property
    def ranges(self) -> tuple[tuple[int, int], ...]:
        """Per-shard ``[lo, hi)`` index ranges, in shard order."""
        base, extra = divmod(self.n_tasks, self.n_shards)
        out = []
        lo = 0
        for i in range(self.n_shards):
            hi = lo + base + (1 if i < extra else 0)
            out.append((lo, hi))
            lo = hi
        return tuple(out)

    def shard_of(self, index: int) -> int:
        """Shard id owning task ``index`` (inverse of :attr:`ranges`)."""
        if not 0 <= index < self.n_tasks:
            raise IndexError(f"task index {index} outside [0, {self.n_tasks})")
        base, extra = divmod(self.n_tasks, self.n_shards)
        pivot = extra * (base + 1)
        if index < pivot:
            return index // (base + 1)
        return extra + (index - pivot) // base


def resolve_shards(value: int | None) -> int:
    """Resolve the shard-count setting (``REPRO_SHARDS`` when None).

    Unset or empty means ``1`` — sharding is opt-in because the spill
    round-trip costs disk I/O that tiny worlds do not need.  A value
    that is not an integer, or is negative, also means ``1`` — but
    loudly, via ``warnings.warn``, matching the ``REPRO_WORKERS`` /
    ``REPRO_SHM`` resolution style.
    """
    if value is not None:
        return max(int(value), 1)
    raw = envconfig.raw("REPRO_SHARDS")
    if not raw:
        return 1
    try:
        shards = int(raw)
    except ValueError:
        warnings.warn(
            f"REPRO_SHARDS={raw!r} is not an integer; running unsharded",
            RuntimeWarning,
            stacklevel=3,
        )
        return 1
    if shards < 0:
        warnings.warn(
            f"REPRO_SHARDS={raw!r} is negative; clamping to unsharded",
            RuntimeWarning,
            stacklevel=3,
        )
        return 1
    return max(shards, 1)
