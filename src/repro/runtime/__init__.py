"""Staged campaign execution: one engine for every per-block fan-out.

The paper runs its Table 1 pipeline over 5.2M /24 blocks — an
embarrassingly parallel per-block map.  This package is the single
seam through which the repo drives that map:

* :class:`~repro.runtime.executors.Executor` — the pluggable mapping
  strategy (:class:`SerialExecutor`, process-pool
  :class:`ParallelExecutor` with chunked dispatch and serial fallback,
  and the zero-copy :class:`SharedMemoryExecutor` — a persistent pool
  fed by :mod:`~repro.runtime.shm` array descriptors);
* :class:`~repro.runtime.engine.CampaignEngine` — runs an iterable of
  block tasks through an executor and aggregates per-stage
  :class:`~repro.core.stages.StageRecord` instrumentation into
  :class:`~repro.runtime.engine.RunMetrics`;
* :class:`~repro.runtime.jobs.BlockAnalysisJob` — the picklable
  simulate-observe-analyze task the dataset builder and the campaign
  protocol both dispatch.

``REPRO_WORKERS=N`` (or ``repro --workers N``) selects the default
executor process-wide; see :func:`~repro.runtime.engine.default_engine`.
``REPRO_SHARDS=N`` (or ``repro --shards N``) additionally streams each
run through N contiguous shards with results spilled to a
memory-mappable on-disk layout between shards
(:mod:`~repro.runtime.sharding`, :mod:`~repro.runtime.spill`), bounding
coordinator RSS for paper-scale worlds.
"""

from .cache import AnalysisCache, CACHE_SCHEMA, default_cache, stable_token, task_key
from .engine import (
    BlockResult,
    CampaignEngine,
    EngineRun,
    RunMetrics,
    ShippedResult,
    StageTotals,
    TracedCall,
    default_engine,
    drain_run_log,
    peek_run_log,
)
from .executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
)
from .jobs import BatchTailJob, BlockAnalysisJob, BlockReconstructJob, ReconstructedBlock
from .sharding import ShardPlan, resolve_shards
from .shm import ArrayDescriptor, SharedArrayPool
from .spill import SpillDir, SpilledResults

__all__ = [
    "AnalysisCache",
    "ArrayDescriptor",
    "BatchTailJob",
    "BlockAnalysisJob",
    "BlockReconstructJob",
    "BlockResult",
    "CACHE_SCHEMA",
    "CampaignEngine",
    "EngineRun",
    "Executor",
    "ParallelExecutor",
    "ReconstructedBlock",
    "RunMetrics",
    "SerialExecutor",
    "ShardPlan",
    "SharedArrayPool",
    "SharedMemoryExecutor",
    "ShippedResult",
    "SpillDir",
    "SpilledResults",
    "StageTotals",
    "TracedCall",
    "default_cache",
    "default_engine",
    "drain_run_log",
    "peek_run_log",
    "resolve_shards",
    "stable_token",
    "task_key",
]
