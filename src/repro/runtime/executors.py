"""Pluggable task executors for the campaign engine.

The executor contract is a single method::

    map(fn, tasks, on_result=None) -> list   # results in task order

``fn`` must be picklable for the parallel executor (the repo's jobs are
frozen dataclasses with ``__call__`` — see :mod:`repro.runtime.jobs`),
and both executors must return *identical* results for a deterministic
``fn``: the parallel path only changes wall-clock, never values.

``on_result`` is an optional observation hook invoked once per completed
result, in task order, as results stream in — the engine uses it to
drive the live progress heartbeat.  Hooks must not mutate results.

When a real pool runs, the parallel executor also accounts the pickle
payload it ships: callable + task bytes out, result bytes back
(re-pickled for measurement, so the numbers are close approximations of
what the pool moved, not exact wire counts).  Totals accumulate on
``ParallelExecutor.payload`` and in the ``executor.payload.*`` counters;
the engine reports the per-run delta under ``RunMetrics.resources``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from ..obs.metrics import get_registry

__all__ = ["Executor", "ParallelExecutor", "SerialExecutor"]

#: Signature of the per-result observation hook.
OnResult = Callable[[Any], None]


@runtime_checkable
class Executor(Protocol):
    """Maps a picklable callable over tasks, preserving order."""

    name: str

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]: ...


def _run_serial(
    fn: Callable[[Any], Any], tasks: Iterable[Any], on_result: OnResult | None
) -> list[Any]:
    results = []
    for task in tasks:
        result = fn(task)
        if on_result is not None:
            on_result(result)
        results.append(result)
    return results


class SerialExecutor:
    """In-process, single-threaded execution (the reference semantics)."""

    name = "serial"

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]:
        return _run_serial(fn, tasks, on_result)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Process-pool execution with chunked dispatch and serial fallback.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``workers <= 1``
        degenerates to serial execution (no pool is spawned).
    chunk_size:
        Tasks per dispatch unit.  ``None`` picks a size that gives each
        worker several chunks (amortizes pickling the job closure while
        keeping the pool load-balanced).

    Results are returned in task order regardless of completion order.
    If the pool cannot be spawned, or breaks mid-run (e.g. a worker is
    OOM-killed), the executor falls back to in-process execution so no
    block is lost; ``fallback_reason`` records why.  Exceptions raised
    by ``fn`` itself are *not* swallowed — they propagate to the caller
    exactly as they would serially.
    """

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        self.workers = os.cpu_count() or 1 if workers is None else int(workers)
        self.chunk_size = chunk_size
        self.fallback_reason: str | None = None
        #: Cumulative pool payload accounting (bytes re-pickled for
        #: measurement; only counted when a real pool dispatched).
        self.payload: dict[str, int] = {
            "fn_bytes": 0,
            "task_bytes": 0,
            "result_bytes": 0,
            "maps": 0,
        }

    @property
    def name(self) -> str:
        return f"parallel[{self.workers}]"

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]:
        tasks = list(tasks)
        self.fallback_reason = None
        if self.workers <= 1 or len(tasks) <= 1:
            return _run_serial(fn, tasks, on_result)

        n_workers = min(self.workers, len(tasks))
        chunk = self.chunk_size or max(1, -(-len(tasks) // (n_workers * 4)))
        registry = get_registry()
        try:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        except (OSError, ValueError, RuntimeError) as exc:
            self.fallback_reason = f"pool spawn failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return _run_serial(fn, tasks, on_result)
        # gauges describe a pool that actually exists; emitting them
        # before the spawn would report a pool that fell back to serial
        registry.gauge("executor.pool_workers").set(n_workers)
        registry.gauge("executor.chunk_size").set(chunk)
        try:
            with pool:
                proto = pickle.HIGHEST_PROTOCOL
                fn_bytes = len(pickle.dumps(fn, protocol=proto))
                task_bytes = sum(len(pickle.dumps(t, protocol=proto)) for t in tasks)
                results = []
                result_bytes = 0
                for result in pool.map(fn, tasks, chunksize=chunk):
                    result_bytes += len(pickle.dumps(result, protocol=proto))
                    if on_result is not None:
                        on_result(result)
                    results.append(result)
                self.payload["fn_bytes"] += fn_bytes
                self.payload["task_bytes"] += fn_bytes + task_bytes
                self.payload["result_bytes"] += result_bytes
                self.payload["maps"] += 1
                registry.counter("executor.payload.task_bytes").inc(fn_bytes + task_bytes)
                registry.counter("executor.payload.result_bytes").inc(result_bytes)
                return results
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # Pool infrastructure failure (not a task error): rerun
            # everything in-process.  Tasks are deterministic and
            # side-effect free, so re-execution is safe.
            self.fallback_reason = f"pool failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return _run_serial(fn, tasks, on_result)

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers}, chunk_size={self.chunk_size})"
