"""Pluggable task executors for the campaign engine.

The executor contract is a single method::

    map(fn, tasks) -> list   # results in task order

``fn`` must be picklable for the parallel executor (the repo's jobs are
frozen dataclasses with ``__call__`` — see :mod:`repro.runtime.jobs`),
and both executors must return *identical* results for a deterministic
``fn``: the parallel path only changes wall-clock, never values.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from ..obs.metrics import get_registry

__all__ = ["Executor", "ParallelExecutor", "SerialExecutor"]


@runtime_checkable
class Executor(Protocol):
    """Maps a picklable callable over tasks, preserving order."""

    name: str

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]: ...


class SerialExecutor:
    """In-process, single-threaded execution (the reference semantics)."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        return [fn(task) for task in tasks]

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Process-pool execution with chunked dispatch and serial fallback.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``workers <= 1``
        degenerates to serial execution (no pool is spawned).
    chunk_size:
        Tasks per dispatch unit.  ``None`` picks a size that gives each
        worker several chunks (amortizes pickling the job closure while
        keeping the pool load-balanced).

    Results are returned in task order regardless of completion order.
    If the pool cannot be spawned, or breaks mid-run (e.g. a worker is
    OOM-killed), the executor falls back to in-process execution so no
    block is lost; ``fallback_reason`` records why.  Exceptions raised
    by ``fn`` itself are *not* swallowed — they propagate to the caller
    exactly as they would serially.
    """

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        self.workers = os.cpu_count() or 1 if workers is None else int(workers)
        self.chunk_size = chunk_size
        self.fallback_reason: str | None = None

    @property
    def name(self) -> str:
        return f"parallel[{self.workers}]"

    def map(self, fn: Callable[[Any], Any], tasks: Iterable[Any]) -> list[Any]:
        tasks = list(tasks)
        self.fallback_reason = None
        if self.workers <= 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]

        n_workers = min(self.workers, len(tasks))
        chunk = self.chunk_size or max(1, -(-len(tasks) // (n_workers * 4)))
        registry = get_registry()
        try:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        except (OSError, ValueError, RuntimeError) as exc:
            self.fallback_reason = f"pool spawn failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return [fn(task) for task in tasks]
        # gauges describe a pool that actually exists; emitting them
        # before the spawn would report a pool that fell back to serial
        registry.gauge("executor.pool_workers").set(n_workers)
        registry.gauge("executor.chunk_size").set(chunk)
        try:
            with pool:
                return list(pool.map(fn, tasks, chunksize=chunk))
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # Pool infrastructure failure (not a task error): rerun
            # everything in-process.  Tasks are deterministic and
            # side-effect free, so re-execution is safe.
            self.fallback_reason = f"pool failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return [fn(task) for task in tasks]

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers}, chunk_size={self.chunk_size})"
