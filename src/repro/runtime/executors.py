"""Pluggable task executors for the campaign engine.

The executor contract is a single method::

    map(fn, tasks, on_result=None) -> list   # results in task order

``fn`` must be picklable for the pool executors (the repo's jobs are
frozen dataclasses with ``__call__`` — see :mod:`repro.runtime.jobs`),
and every executor must return *identical* results for a deterministic
``fn``: the parallel and shared-memory paths only change wall-clock,
never values.

``on_result`` is an optional observation hook invoked once per completed
result, in task order, as results stream in — the engine uses it to
drive the live progress heartbeat.  Hooks must not mutate results.

Three executors ship:

* :class:`SerialExecutor` — in-process reference semantics;
* :class:`ParallelExecutor` — a process pool spawned per ``map()``,
  shipping pickled tasks and results (chunked dispatch, serial
  fallback);
* :class:`SharedMemoryExecutor` — the zero-copy tier: one **persistent**
  pool reused across ``map()`` calls, with large task arrays published
  once into ``multiprocessing.shared_memory`` segments and only small
  descriptors pickled across (see :mod:`repro.runtime.shm`).

Payload accounting: when a real pool dispatches, the executors account
the bytes they moved — callable + task bytes out, result bytes back.
For the pickle path those numbers require *re*-pickling everything, so
they are gated behind :func:`payload_accounting_enabled`
(``REPRO_PAYLOAD_ACCOUNTING``; auto mode turns accounting on only for
traced runs — the CLI also sets it for ``--metrics``/``--trace``).  The
shm path's task and shm byte counts fall out of dispatch for free and
are always recorded; only its result re-pickle is gated.  Totals
accumulate on ``.payload`` and in the ``executor.payload.*`` counters;
the engine reports the per-run delta under ``RunMetrics.resources``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Protocol, runtime_checkable

from ..obs.metrics import get_registry
from . import envconfig
from .shm import (
    ArrayDescriptor,
    SharedArrayPool,
    attach_bytes,
    resolve_min_shm_bytes,
    shm_dumps,
    shm_loads,
)

__all__ = [
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "SharedMemoryExecutor",
    "payload_accounting_enabled",
]

#: Signature of the per-result observation hook.
OnResult = Callable[[Any], None]


@runtime_checkable
class Executor(Protocol):
    """Maps a picklable callable over tasks, preserving order."""

    name: str

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]: ...


def payload_accounting_enabled() -> bool:
    """Resolve the payload-accounting gate (``REPRO_PAYLOAD_ACCOUNTING``).

    Measuring the pickle path's payload means re-pickling the callable,
    every task, and every result — pure overhead when nobody reads the
    numbers.  Explicit ``1``/``0`` wins; unset means *auto*: on when the
    ambient tracer is recording (the run is shipping telemetry anyway),
    off otherwise.  The CLI sets the variable for ``--metrics`` and
    ``--trace`` runs so their reports keep the pool payload section.
    Accounting never changes results, only whether bytes are counted.
    """
    raw = envconfig.raw("REPRO_PAYLOAD_ACCOUNTING").lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    from ..obs.trace import get_tracer

    return bool(get_tracer().enabled)


def _run_serial(
    fn: Callable[[Any], Any], tasks: Iterable[Any], on_result: OnResult | None
) -> list[Any]:
    results = []
    for task in tasks:
        result = fn(task)
        if on_result is not None:
            on_result(result)
        results.append(result)
    return results


class SerialExecutor:
    """In-process, single-threaded execution (the reference semantics)."""

    name = "serial"

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]:
        return _run_serial(fn, tasks, on_result)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor:
    """Process-pool execution with chunked dispatch and serial fallback.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``.  ``workers <= 1``
        degenerates to serial execution (no pool is spawned).
    chunk_size:
        Tasks per dispatch unit.  ``None`` picks a size that gives each
        worker several chunks (amortizes pickling the job closure while
        keeping the pool load-balanced).

    Results are returned in task order regardless of completion order.
    If the pool cannot be spawned, or breaks mid-run (e.g. a worker is
    OOM-killed), the executor falls back to in-process execution so no
    block is lost; ``fallback_reason`` records why.  Exceptions raised
    by ``fn`` itself are *not* swallowed — they propagate to the caller
    exactly as they would serially.
    """

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        self.workers = os.cpu_count() or 1 if workers is None else int(workers)
        self.chunk_size = chunk_size
        self.fallback_reason: str | None = None
        #: Cumulative pool payload accounting (bytes re-pickled for
        #: measurement; only counted when a real pool dispatched and
        #: :func:`payload_accounting_enabled` says so).  Each byte is
        #: counted exactly once: ``fn_bytes`` is the pickled callable,
        #: ``task_bytes`` the pickled tasks, ``result_bytes`` the
        #: pickled results — their sum is the total payload moved.
        self.payload: dict[str, int] = {
            "fn_bytes": 0,
            "task_bytes": 0,
            "result_bytes": 0,
            "maps": 0,
        }

    @property
    def name(self) -> str:
        return f"parallel[{self.workers}]"

    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]:
        tasks = list(tasks)
        self.fallback_reason = None
        if self.workers <= 1 or len(tasks) <= 1:
            return _run_serial(fn, tasks, on_result)

        n_workers = min(self.workers, len(tasks))
        chunk = self.chunk_size or max(1, -(-len(tasks) // (n_workers * 4)))
        registry = get_registry()
        accounting = payload_accounting_enabled()
        try:
            pool = ProcessPoolExecutor(max_workers=n_workers)
        except (OSError, ValueError, RuntimeError) as exc:
            self.fallback_reason = f"pool spawn failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return _run_serial(fn, tasks, on_result)
        try:
            with pool:
                # gauges describe a pool that actually exists; emitting
                # them before the spawn would report a pool that fell
                # back to serial — and emitting them before `with pool`
                # could leak the pool if a meter raised (REP006)
                registry.gauge("executor.pool_workers").set(n_workers)
                registry.gauge("executor.chunk_size").set(chunk)
                registry.counter("executor.pool_spawns").inc()
                proto = pickle.HIGHEST_PROTOCOL
                fn_bytes = task_bytes = 0
                if accounting:
                    fn_bytes = len(pickle.dumps(fn, protocol=proto))
                    task_bytes = sum(
                        len(pickle.dumps(t, protocol=proto)) for t in tasks
                    )
                results = []
                result_bytes = 0
                for result in pool.map(fn, tasks, chunksize=chunk):
                    if accounting:
                        result_bytes += len(pickle.dumps(result, protocol=proto))
                    if on_result is not None:
                        on_result(result)
                    results.append(result)
                self.payload["maps"] += 1
                if accounting:
                    self.payload["fn_bytes"] += fn_bytes
                    self.payload["task_bytes"] += task_bytes
                    self.payload["result_bytes"] += result_bytes
                    registry.counter("executor.payload.task_bytes").inc(
                        fn_bytes + task_bytes
                    )
                    registry.counter("executor.payload.result_bytes").inc(result_bytes)
                return results
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # Pool infrastructure failure (not a task error): rerun
            # everything in-process.  Tasks are deterministic and
            # side-effect free, so re-execution is safe.
            self.fallback_reason = f"pool failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return _run_serial(fn, tasks, on_result)

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers}, chunk_size={self.chunk_size})"


# ---------------------------------------------------------------------------
# shared-memory tier
# ---------------------------------------------------------------------------
#: Worker-side cache of unpickled callables, keyed by payload digest.
#: A persistent pool sees the same (large) job callable on every chunk
#: of every map; unpickling it once per worker instead of once per
#: chunk is part of the shm tier's win.  Bounded: jobs are few.
_FN_CACHE: dict[str, Callable[[Any], Any]] = {}
_FN_CACHE_CAP = 8


def _load_fn(desc: ArrayDescriptor, digest: str) -> Callable[[Any], Any]:
    fn = _FN_CACHE.get(digest)
    if fn is None:
        fn = shm_loads(attach_bytes(desc))
        while len(_FN_CACHE) >= _FN_CACHE_CAP:
            _FN_CACHE.pop(next(iter(_FN_CACHE)))
        _FN_CACHE[digest] = fn
    return fn


@dataclass(frozen=True)
class _ShmCall:
    """Tiny picklable chunk envelope of the shm tier.

    Carries only the callable's shm descriptor + digest; each task
    arrives as a pre-pickled payload whose large arrays resolve to
    zero-copy segment views (:func:`repro.runtime.shm.shm_loads`).
    """

    fn_desc: ArrayDescriptor
    fn_digest: str

    def __call__(self, payload: bytes) -> Any:
        fn = _load_fn(self.fn_desc, self.fn_digest)
        return fn(shm_loads(payload))


def _shutdown_pool(pool_box: list[ProcessPoolExecutor]) -> None:
    """Finalizer target: shut down whatever pool the box still holds."""
    while pool_box:
        pool_box.pop().shutdown(wait=False, cancel_futures=True)


class SharedMemoryExecutor:
    """Zero-copy dispatch: persistent pool + shared-memory array handoff.

    Differences from :class:`ParallelExecutor`:

    * the process pool is spawned **once**, lazily, and reused by every
      subsequent ``map()`` until :meth:`close` (an engine run's phase-A
      and phase-B maps — and any number of runs — share one spawn);
    * tasks are pickled with :func:`repro.runtime.shm.shm_dumps`: large
      arrays are published once into shm segments and only small
      descriptors cross the pipe, so task payload shrinks by the array
      bytes (the ``executor.payload.shm_bytes`` counter makes the
      difference visible);
    * the callable is pickled once per map into a shm blob; workers
      unpickle and cache it by digest instead of once per chunk.

    Results come back plain-pickled — the repo's jobs return compact
    result structs, which is the cheap direction.  Results are
    byte-identical to every other executor: attached views carry the
    same values, shapes, and interned dtypes as unpickled arrays would.

    Lifecycle: segments published for one map are unlinked in a
    ``finally`` as soon as that map completes, raises, or falls back;
    :meth:`close` (also the context-manager exit and a GC finalizer)
    shuts the pool down.  No exit path leaves a named segment behind.
    """

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        min_shm_bytes: int | None = None,
    ) -> None:
        self.workers = os.cpu_count() or 1 if workers is None else int(workers)
        self.chunk_size = chunk_size
        self.min_shm_bytes = (
            resolve_min_shm_bytes() if min_shm_bytes is None else int(min_shm_bytes)
        )
        self.fallback_reason: str | None = None
        #: Cumulative payload accounting.  ``task_bytes`` is what
        #: actually crossed the pipe (descriptor-carrying pickles —
        #: measured for free, no re-pickle); ``shm_bytes`` the array +
        #: callable bytes published to segments; ``result_bytes`` the
        #: re-pickled results (gated on payload accounting).
        self.payload: dict[str, int] = {
            "fn_bytes": 0,
            "task_bytes": 0,
            "result_bytes": 0,
            "shm_bytes": 0,
            "maps": 0,
            "pool_spawns": 0,
        }
        #: Segment names created by the most recent ``map`` (released by
        #: the time ``map`` returns; kept for tests and debugging).
        self.last_segments: list[str] = []
        self._pool: ProcessPoolExecutor | None = None
        self._pool_box: list[ProcessPoolExecutor] = []
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._pool_box)

    @property
    def name(self) -> str:
        return f"shm[{self.workers}]"

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        """The persistent pool, spawning it on first use; None on failure."""
        if self._pool is not None:
            return self._pool
        registry = get_registry()
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers)
        except (OSError, ValueError, RuntimeError) as exc:
            self.fallback_reason = f"pool spawn failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            return None
        self._pool = pool
        self._pool_box.append(pool)
        self.payload["pool_spawns"] += 1
        registry.gauge("executor.pool_workers").set(self.workers)
        registry.counter("executor.pool_spawns").inc()
        return pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._pool_box.clear()

    def close(self) -> None:
        """Shut down the persistent pool (idempotent)."""
        self._teardown_pool()

    def __enter__(self) -> "SharedMemoryExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Iterable[Any],
        on_result: OnResult | None = None,
    ) -> list[Any]:
        tasks = list(tasks)
        self.fallback_reason = None
        if self.workers <= 1 or len(tasks) <= 1:
            return _run_serial(fn, tasks, on_result)
        pool = self._ensure_pool()
        if pool is None:
            return _run_serial(fn, tasks, on_result)

        n_active = min(self.workers, len(tasks))
        chunk = self.chunk_size or max(1, -(-len(tasks) // (n_active * 4)))
        registry = get_registry()
        registry.gauge("executor.chunk_size").set(chunk)
        accounting = payload_accounting_enabled()
        arrays = SharedArrayPool()
        try:
            fn_payload = shm_dumps(fn, arrays, self.min_shm_bytes)
            call = _ShmCall(
                fn_desc=arrays.publish_bytes(fn_payload),
                fn_digest=hashlib.sha256(fn_payload).hexdigest(),
            )
            packed = [shm_dumps(t, arrays, self.min_shm_bytes) for t in tasks]
            self.last_segments = list(arrays.created)
            results = []
            result_bytes = 0
            for result in pool.map(call, packed, chunksize=chunk):
                if accounting:
                    result_bytes += len(
                        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                if on_result is not None:
                    on_result(result)
                results.append(result)
            # task/shm bytes fall out of dispatch for free: record always
            task_bytes = sum(len(p) for p in packed)
            self.payload["fn_bytes"] += len(fn_payload)
            self.payload["task_bytes"] += task_bytes
            self.payload["shm_bytes"] += arrays.published_bytes
            self.payload["result_bytes"] += result_bytes
            self.payload["maps"] += 1
            registry.counter("executor.payload.task_bytes").inc(
                len(fn_payload) + task_bytes
            )
            registry.counter("executor.payload.shm_bytes").inc(
                arrays.published_bytes
            )
            if accounting:
                registry.counter("executor.payload.result_bytes").inc(result_bytes)
            return results
        except (BrokenProcessPool, pickle.PicklingError, OSError) as exc:
            # Pool infrastructure failure: the persistent pool is no
            # longer trustworthy — tear it down (a later map may respawn)
            # and rerun everything in-process so no block is lost.
            self.fallback_reason = f"pool failed: {type(exc).__name__}: {exc}"
            registry.counter("executor.fallbacks").inc()
            self._teardown_pool()
            return _run_serial(fn, tasks, on_result)
        finally:
            # every exit path — success, task exception, pool failure —
            # unlinks this map's segments; workers only ever attach
            arrays.release()

    def __repr__(self) -> str:
        return (
            f"SharedMemoryExecutor(workers={self.workers}, "
            f"chunk_size={self.chunk_size}, min_shm_bytes={self.min_shm_bytes})"
        )
