"""Picklable per-block task callables dispatched by the engine.

A job is a frozen dataclass whose fields are the deterministic inputs
(world, dataset window, pipeline config) and whose ``__call__`` runs one
block end to end.  Frozen dataclasses pickle cheaply, so the same job
object is shipped once per chunk to pool workers; each call constructs
its own :class:`~repro.datasets.builder.DatasetBuilder`, which keeps
results byte-identical between serial and parallel execution (no shared
mutable caches).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import BlockPipeline
from ..core.stages import PIPELINE_STAGES, StageContext
from ..datasets.catalog import DatasetSpec
from ..net.world import BlockSpec, WorldModel
from ..obs.metrics import get_registry
from ..obs.trace import annotate
from .cache import task_key
from .engine import BlockResult

__all__ = ["BlockAnalysisJob"]


@dataclass(frozen=True)
class BlockAnalysisJob:
    """Simulate a block's observers and run the Table 1 pipeline on it.

    Firewalled blocks (``responsive_by_design`` False) short-circuit to
    the constant unresponsive analysis with every stage recorded as
    skipped — they still count in the routed funnel, as in the paper's
    Table 2.
    """

    world: WorldModel
    ds: DatasetSpec
    pipeline: BlockPipeline
    observer_style: str = "adaptive"

    def cache_key(self, spec: BlockSpec) -> str | None:
        """Content address of this job's result for one block.

        Covers everything ``__call__`` derives its output from: world
        identity, dataset window + observers, pipeline parameters, the
        probing algorithm, and the block spec itself (seed, kind,
        events, loss).  None (uncacheable) if any of it fails to
        tokenize — the engine then just computes as usual.
        """
        return task_key(
            "block-analysis",
            {
                "world": self.world,
                "ds": self.ds,
                "pipeline": self.pipeline,
                "observer_style": self.observer_style,
                "spec": spec,
            },
        )

    def __call__(self, spec: BlockSpec) -> BlockResult:
        # Imported here: datasets.builder composes over this package, so
        # a module-level import would be circular.
        from ..datasets.builder import DatasetBuilder, unresponsive_analysis

        # label the engine's per-task "block" span (no-op when untraced)
        annotate(block=spec.block.cidr, dataset=self.ds.name)
        ctx = StageContext()
        if not spec.responsive_by_design:
            get_registry().counter("blocks.firewalled").inc()
            for name in PIPELINE_STAGES:
                ctx.skip(name, "firewalled")
            return BlockResult(
                key=spec.block.cidr,
                analysis=unresponsive_analysis(),
                stages=tuple(ctx.records),
            )
        get_registry().counter("blocks.analyzed").inc()
        builder = DatasetBuilder(
            self.world, self.pipeline, observer_style=self.observer_style
        )
        analysis = builder.analyze_block(spec, self.ds, ctx=ctx)
        return BlockResult(
            key=spec.block.cidr, analysis=analysis, stages=tuple(ctx.records)
        )
