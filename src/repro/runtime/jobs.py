"""Picklable per-block task callables dispatched by the engine.

A job is a frozen dataclass whose fields are the deterministic inputs
(world, dataset window, pipeline config) and whose ``__call__`` runs one
block end to end.  Frozen dataclasses pickle cheaply, so the same job
object is shipped once per chunk to pool workers; each call constructs
its own :class:`~repro.datasets.builder.DatasetBuilder`, which keeps
results byte-identical between serial and parallel execution (no shared
mutable caches).

The batched dispatch path splits :class:`BlockAnalysisJob` in two via
:meth:`BlockAnalysisJob.batched_split`: a :class:`BlockReconstructJob`
that fans out per block (simulation dominates and does not batch) and a
:class:`BatchTailJob` that runs the analysis tail — classify, trend,
detect — over a whole chunk of reconstructions at once through the
batched columnar kernels.

Jobs are transport-agnostic: under the shared-memory tier
(:class:`~repro.runtime.executors.SharedMemoryExecutor`) the large
arrays inside a task — a tail chunk's reconstruction series, notably —
arrive as read-only zero-copy views attached from shm segments instead
of unpickled copies.  That is safe precisely because jobs only ever
*read* their inputs (every kernel copies before mutating), and it is
why lint REP003 forbids ``*Job`` classes from capturing live
``SharedMemory`` handles or memoryviews: a job may carry only plain
data and :class:`~repro.runtime.shm.ArrayDescriptor`-style records, so
the same pickled job works on every executor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import BlockPipeline
from ..core.reconstruction import Reconstruction
from ..core.stages import PIPELINE_STAGES, StageContext, StageRecord
from ..datasets.catalog import DatasetSpec
from ..net.world import BlockSpec, WorldModel
from ..obs.metrics import get_registry
from ..obs.trace import annotate
from .cache import task_key
from .engine import BlockResult

__all__ = [
    "BatchTailJob",
    "BlockAnalysisJob",
    "BlockReconstructJob",
    "ReconstructedBlock",
]


@dataclass(frozen=True)
class ReconstructedBlock:
    """Phase-A output of the batched path: one block, reconstructed.

    Carries the stage records of the front half (simulate, repair,
    combine, reconstruct) so the tail job can prepend them to its own
    and return a :class:`BlockResult` indistinguishable from the
    per-block path's.
    """

    key: str
    reconstruction: Reconstruction
    stages: tuple[StageRecord, ...] = ()


@dataclass(frozen=True)
class BlockAnalysisJob:
    """Simulate a block's observers and run the Table 1 pipeline on it.

    Firewalled blocks (``responsive_by_design`` False) short-circuit to
    the constant unresponsive analysis with every stage recorded as
    skipped — they still count in the routed funnel, as in the paper's
    Table 2.
    """

    world: WorldModel
    ds: DatasetSpec
    pipeline: BlockPipeline
    observer_style: str = "adaptive"

    def cache_key(self, spec: BlockSpec) -> str | None:
        """Content address of this job's result for one block.

        Covers everything ``__call__`` derives its output from: world
        identity, dataset window + observers, pipeline parameters, the
        probing algorithm, and the block spec itself (seed, kind,
        events, loss).  None (uncacheable) if any of it fails to
        tokenize — the engine then just computes as usual.
        """
        return task_key(
            "block-analysis",
            {
                "world": self.world,
                "ds": self.ds,
                "pipeline": self.pipeline,
                "observer_style": self.observer_style,
                "spec": spec,
            },
        )

    def batched_split(self) -> "tuple[BlockReconstructJob, BatchTailJob]":
        """The (per-block, per-batch) job pair of the batched dispatch path.

        The engine maps the reconstruct job over blocks exactly like
        this job, regroups surviving reconstructions by sample grid,
        and maps the tail job over chunks; per-chunk results carry the
        same keys, analyses, and stage-record shapes as ``self`` would
        produce, byte for byte.
        """
        return (
            BlockReconstructJob(
                world=self.world,
                ds=self.ds,
                pipeline=self.pipeline,
                observer_style=self.observer_style,
            ),
            BatchTailJob(pipeline=self.pipeline),
        )

    def __call__(self, spec: BlockSpec) -> BlockResult:
        # Imported here: datasets.builder composes over this package, so
        # a module-level import would be circular.
        from ..datasets.builder import DatasetBuilder

        # label the engine's per-task "block" span (no-op when untraced)
        annotate(block=spec.block.cidr, dataset=self.ds.name)
        short = _firewalled_result(spec)
        if short is not None:
            return short
        get_registry().counter("blocks.analyzed").inc()
        ctx = StageContext()
        builder = DatasetBuilder(
            self.world, self.pipeline, observer_style=self.observer_style
        )
        analysis = builder.analyze_block(spec, self.ds, ctx=ctx)
        return BlockResult(
            key=spec.block.cidr, analysis=analysis, stages=tuple(ctx.records)
        )


@dataclass(frozen=True)
class BlockReconstructJob:
    """Phase A of the batched path: simulate + reconstruct one block.

    Mirrors :class:`BlockAnalysisJob` exactly up to the reconstruction:
    same firewalled short-circuit (returning the finished
    :class:`BlockResult` — those blocks never reach the tail), same
    funnel counters, same span annotations.
    """

    world: WorldModel
    ds: DatasetSpec
    pipeline: BlockPipeline
    observer_style: str = "adaptive"

    def __call__(self, spec: BlockSpec) -> BlockResult | ReconstructedBlock:
        from ..datasets.builder import DatasetBuilder

        annotate(block=spec.block.cidr, dataset=self.ds.name)
        short = _firewalled_result(spec)
        if short is not None:
            return short
        get_registry().counter("blocks.analyzed").inc()
        ctx = StageContext()
        builder = DatasetBuilder(
            self.world, self.pipeline, observer_style=self.observer_style
        )
        recon = builder.reconstruct_block(spec, self.ds, ctx=ctx)
        return ReconstructedBlock(
            key=spec.block.cidr, reconstruction=recon, stages=tuple(ctx.records)
        )


@dataclass(frozen=True)
class BatchTailJob:
    """Phase B of the batched path: the analysis tail over one chunk.

    One call runs classify/trend/detect for every block in the chunk
    through :meth:`~repro.core.pipeline.BlockPipeline.analyze_tail_batch`
    (per-row bit-identical to the scalar stages) and stitches each
    block's front-half stage records back in front of its tail records,
    so downstream aggregation cannot tell the paths apart.
    """

    pipeline: BlockPipeline

    def __call__(
        self, chunk: tuple[ReconstructedBlock, ...]
    ) -> tuple[BlockResult, ...]:
        # label the engine's per-chunk "batch" span (no-op when untraced)
        annotate(n_blocks=len(chunk))
        ctxs = [StageContext() for _ in chunk]
        analyses = self.pipeline.analyze_tail_batch(
            [_canonical_reconstruction(rb.reconstruction) for rb in chunk], ctxs
        )
        return tuple(
            BlockResult(
                key=rb.key,
                analysis=analysis,
                stages=rb.stages + tuple(ctx.records),
            )
            for rb, analysis, ctx in zip(chunk, analyses, ctxs)
        )


def _canonical_dtype_view(arr: np.ndarray) -> np.ndarray:
    """Re-view an array onto the process-canonical dtype singleton.

    Unpickled arrays (a reconstruction shipped to a pool worker) carry a
    dtype *instance* distinct from numpy's interned singleton, and ufunc
    results inherit whichever instance their input held.  Left alone,
    the tail's output graph would mix both objects and its pickle bytes
    would differ from the serial path's — same values, different memo
    structure.  Viewing onto ``arr.dtype.type`` (which numpy resolves to
    the singleton) restores one dtype object per graph.
    """
    return arr.view(arr.dtype.type)


def _canonical_reconstruction(recon: Reconstruction) -> Reconstruction:
    from dataclasses import replace

    from ..timeseries.series import TimeSeries

    return replace(
        recon,
        counts=TimeSeries(
            _canonical_dtype_view(recon.counts.times),
            _canonical_dtype_view(recon.counts.values),
        ),
        observed_addresses=_canonical_dtype_view(recon.observed_addresses),
    )


def _firewalled_result(spec: BlockSpec) -> BlockResult | None:
    """The shared short-circuit for blocks that never answer probes."""
    from ..datasets.builder import unresponsive_analysis

    if spec.responsive_by_design:
        return None
    get_registry().counter("blocks.firewalled").inc()
    ctx = StageContext()
    for name in PIPELINE_STAGES:
        ctx.skip(name, "firewalled")
    return BlockResult(
        key=spec.block.cidr,
        analysis=unresponsive_analysis(),
        stages=tuple(ctx.records),
    )
