"""Central registry and resolver for every ``REPRO_*`` environment knob.

Every environment variable the codebase reads or writes is declared
here, once, with its type and a one-line description.  The rest of the
tree never touches ``os.environ`` directly (REP008 enforces this): it
calls :func:`raw` / :func:`peek` / the typed ``get_*`` helpers to read,
and :func:`set_env` / :func:`setdefault_env` / :func:`overriding` to
write.  Routing everything through one module buys three things:

* **Registration** — a typo'd variable name is a ``KeyError`` at the
  call site instead of a silently-ignored knob.
* **Typing** — garbage values warn (``RuntimeWarning``) and fall back
  to the documented default instead of crashing or being ignored.
* **Enumerability** — :func:`env_help` renders the whole catalogue for
  ``repro --help``, so no knob lives only in a docstring.

This module is deliberately a **leaf**: it imports nothing from
``repro`` (REP007 keeps it that way), so every layer — ``obs``,
``runtime``, ``experiments``, the CLI — may import it without creating
an architecture edge.
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "EnvVar",
    "REGISTRY",
    "env_help",
    "get_bool",
    "get_float",
    "get_int",
    "get_int_csv",
    "overriding",
    "peek",
    "raw",
    "set_env",
    "setdefault_env",
]


@dataclass(frozen=True)
class EnvVar:
    """One registered knob: its name, rough type, default, and purpose."""

    name: str
    kind: str
    default: str
    description: str


#: Every environment variable the repo reads, in ``--help`` order.
REGISTRY: tuple[EnvVar, ...] = (
    EnvVar(
        "REPRO_SCALE",
        "int",
        "experiment-specific",
        "world size (number of /24 blocks) for simulated campaigns",
    ),
    EnvVar(
        "REPRO_WORKERS",
        "int",
        "1 (serial)",
        "process-pool size for per-block analysis (CLI --workers)",
    ),
    EnvVar(
        "REPRO_SHARDS",
        "int",
        "1 (unsharded)",
        "contiguous block shards per campaign, spilled between shards "
        "(CLI --shards)",
    ),
    EnvVar(
        "REPRO_CACHE",
        "path",
        "unset (no cache)",
        "root directory of the content-addressed per-block result cache "
        "(CLI --cache)",
    ),
    EnvVar(
        "REPRO_BATCHED",
        "bool",
        "1",
        "columnar batched dispatch of the analysis tail (CLI --batched / "
        "--no-batched)",
    ),
    EnvVar(
        "REPRO_SHM",
        "bool",
        "0",
        "zero-copy shared-memory dispatch tier; needs workers > 1 "
        "(CLI --shm)",
    ),
    EnvVar(
        "REPRO_SHM_MIN_BYTES",
        "int",
        "4096",
        "arrays smaller than this are pickled inline instead of published "
        "to shm",
    ),
    EnvVar(
        "REPRO_SPILL_DIR",
        "path",
        "system temp dir",
        "parent directory under which sharded runs create their "
        "repro-spill-* directories",
    ),
    EnvVar(
        "REPRO_PAYLOAD_ACCOUNTING",
        "bool",
        "auto (on when tracing)",
        "measure pool payload bytes by re-pickling tasks/results; the CLI "
        "turns it on for --metrics/--trace runs",
    ),
    EnvVar(
        "REPRO_PROGRESS",
        "path",
        "unset (no heartbeats)",
        "directory receiving live progress.jsonl heartbeats "
        "(CLI --progress)",
    ),
    EnvVar(
        "REPRO_PROGRESS_INTERVAL",
        "float",
        "2",
        "minimum seconds between mid-run progress heartbeats",
    ),
    EnvVar(
        "REPRO_TRACEMALLOC",
        "bool",
        "0",
        "start tracemalloc so resource reports include allocator deltas "
        "(slow)",
    ),
    EnvVar(
        "REPRO_BENCH_SCALES",
        "int-csv",
        "1600,25000,100000",
        "comma-separated world scales for the bench scale sweep",
    ),
    EnvVar(
        "REPRO_SANITIZE",
        "bool",
        "0",
        "install the runtime ResourceSanitizer: track shm segments, "
        "process pools, and spill dirs; fail on leaks at engine close "
        "and process exit",
    ),
)

_BY_NAME: dict[str, EnvVar] = {var.name: var for var in REGISTRY}

_TRUTHY = frozenset(("1", "true", "yes", "on"))
_FALSY = frozenset(("0", "false", "no", "off"))


def _require(name: str) -> EnvVar:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unregistered environment variable {name!r}; add it to "
            "repro.runtime.envconfig.REGISTRY"
        ) from None


def raw(name: str) -> str:
    """The registered knob's value, stripped; ``''`` when unset."""
    _require(name)
    return os.environ.get(name, "").strip()


def peek(name: str) -> str | None:
    """The knob's exact value, or ``None`` when unset (presence matters)."""
    _require(name)
    return os.environ.get(name)


def _warn_garbage(name: str, value: str, expected: str, fallback: str) -> None:
    warnings.warn(
        f"{name}={value!r} is not {expected}; using {fallback}",
        RuntimeWarning,
        stacklevel=3,
    )


def get_int(name: str, default: int, *, minimum: int | None = None) -> int:
    """Integer knob; garbage warns and falls back to ``default``."""
    value = raw(name)
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        _warn_garbage(name, value, "an integer", str(default))
        return default
    if minimum is not None and parsed < minimum:
        return minimum
    return parsed


def get_float(name: str, default: float) -> float:
    """Float knob; garbage warns and falls back to ``default``."""
    value = raw(name)
    if not value:
        return default
    try:
        return float(value)
    except ValueError:
        _warn_garbage(name, value, "a number", str(default))
        return default


def get_bool(name: str, default: bool) -> bool:
    """Boolean knob (1/true/yes/on vs 0/false/no/off); garbage warns."""
    value = raw(name).lower()
    if not value:
        return default
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    _warn_garbage(name, value, "a boolean", "the default")
    return default


def get_int_csv(name: str) -> tuple[int, ...] | None:
    """Comma-separated-int knob; unset/empty/garbage means ``None``."""
    value = raw(name)
    if not value:
        return None
    try:
        parsed = tuple(int(part) for part in value.split(",") if part.strip())
    except ValueError:
        _warn_garbage(name, value, "a comma-separated list of integers", "the default")
        return None
    return parsed or None


def set_env(name: str, value: str) -> None:
    """Set a registered knob for the rest of this process (and children)."""
    _require(name)
    os.environ[name] = value


def setdefault_env(name: str, value: str) -> None:
    """Set a registered knob only when the environment did not already."""
    _require(name)
    os.environ.setdefault(name, value)


@contextmanager
def overriding(name: str, value: str | None) -> Iterator[None]:
    """Scoped override of a registered knob; restores the prior state
    (including absence) on exit.  ``None`` unsets for the scope."""
    _require(name)
    prior = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = prior


def env_help() -> str:
    """The whole catalogue, rendered for ``repro --help``."""
    width = max(len(var.name) for var in REGISTRY)
    lines = ["environment variables:"]
    for var in REGISTRY:
        lines.append(
            f"  {var.name:<{width}}  {var.description} "
            f"[{var.kind}; default: {var.default}]"
        )
    return "\n".join(lines)
