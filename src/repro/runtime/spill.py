"""Memory-mappable per-shard result spill for out-of-core campaigns.

A sharded engine run (:mod:`repro.runtime.sharding`) must not hold every
shard's results in RAM at once — that is the whole point.  After each
shard completes, the coordinator writes its ordered result list into a
columnar on-disk layout under a per-run spill directory and drops the
in-memory objects; :class:`SpilledResults` then presents all shards as
one lazy sequence that rehydrates a single result at a time.

Layout — four ``.npy`` files per shard, every one loadable with
``np.load(..., mmap_mode="r")``:

* ``shard-NN.blobs.npy`` — ``uint8`` concatenation of one pickle blob
  per result.  Results are pickled **individually** (not as one list)
  so random access never deserialises a whole shard.
* ``shard-NN.items.npy`` — structured ``(offset, length)`` row per
  result: where its blob lives.
* ``shard-NN.arrays.npy`` — ``uint8`` concatenation of the raw bytes of
  every large array.  The pickler externalises them with the
  persistent-id protocol (the same move :func:`repro.runtime.shm.shm_dumps`
  makes for shared memory), so blobs stay small and the array payload is
  read straight off the memory map on access.
* ``shard-NN.arrmeta.npy`` — structured ``(offset, nbytes, dtype, ndim,
  shape)`` row per externalised array.

Rehydrated results are byte-identical to the originals under
``pickle.dumps``: externalised arrays come back as plain C-contiguous
``np.ndarray`` objects re-viewed onto the process-canonical dtype
singleton (the ``_canonical_dtype_view`` rule from
:mod:`repro.runtime.jobs`), never as ``np.memmap`` views.

Ownership follows one rule — **the coordinator writes, the coordinator
deletes** (docs/dev.md): the engine creates the spill directory, cleans
it up itself if the sharded run fails mid-shard, and otherwise hands
ownership to the returned :class:`SpilledResults`, whose finalizer
removes the directory when the results are garbage-collected (or at
interpreter exit).  Workers and readers never delete spill files.
"""

from __future__ import annotations

import io
import os
import pickle
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Any, Iterator, Sequence

import numpy as np

from ..obs.metrics import get_registry
from . import envconfig

__all__ = [
    "SpillDir",
    "SpilledResults",
    "resolve_spill_parent",
]

#: Arrays at or above this size are externalised into the columnar
#: buffer; smaller ones stay inline in the pickle blob (a descriptor
#: would cost more than the payload).
MIN_SPILL_ARRAY_BYTES = 64

#: Most array dimensions the columnar metadata row can describe.
_MAX_DIMS = 4

#: Persistent-id tag marking an externalised array reference.
_PID_TAG = "repro-spill-array"

_ITEM_DTYPE = np.dtype([("offset", "<u8"), ("length", "<u8")])
_ARRAY_DTYPE = np.dtype(
    [
        ("offset", "<u8"),
        ("nbytes", "<u8"),
        ("dtype", "S16"),
        ("ndim", "u1"),
        ("shape", "<i8", (_MAX_DIMS,)),
    ]
)


def resolve_spill_parent() -> str | None:
    """Parent directory for per-run spill dirs (``REPRO_SPILL_DIR``).

    Unset or empty defers to the system temp directory.  The variable
    points at a *parent*: every sharded run still gets its own
    ``repro-spill-*`` subdirectory so concurrent runs never collide.
    """
    return envconfig.raw("REPRO_SPILL_DIR") or None


def _canonical_dtype_view(arr: np.ndarray) -> np.ndarray:
    # Same rule as repro.runtime.jobs._canonical_dtype_view (not imported
    # to keep this module free of the jobs -> engine import cycle):
    # re-viewing onto ``arr.dtype.type`` interns the dtype singleton so
    # rehydrated graphs pickle byte-identically to in-memory ones.
    # Unlike the jobs version (applied to known float fields only), this
    # one sees arbitrary spilled arrays, so it must skip dtypes the bare
    # scalar type cannot reproduce — parametric units (``M8[s]``) and
    # non-native byteorder — where the view would reinterpret the data.
    if np.dtype(arr.dtype.type) == arr.dtype:
        return arr.view(arr.dtype.type)
    return arr


def _spillable(obj: Any) -> bool:
    """Only plain, C-contiguous, fixed-dtype ndarrays are externalised.

    Subclasses (``np.memmap``, masked arrays) pickle their class and
    must stay inline; object/structured dtypes cannot round-trip through
    a raw-bytes buffer; tiny arrays are cheaper inline.
    """
    return (
        type(obj) is np.ndarray
        and obj.flags.c_contiguous
        and obj.ndim <= _MAX_DIMS
        and obj.dtype.kind in "biufcmM"
        and len(obj.dtype.str) <= 16
        and obj.nbytes >= MIN_SPILL_ARRAY_BYTES
    )


class _ArrayCollector:
    """Accumulates externalised array payloads for one shard."""

    def __init__(self) -> None:
        self.payload = bytearray()
        self.meta: list[tuple[int, int, bytes, int, tuple[int, ...]]] = []

    def add(self, arr: np.ndarray) -> int:
        index = len(self.meta)
        offset = len(self.payload)
        self.payload += arr.tobytes()
        shape = tuple(arr.shape) + (0,) * (_MAX_DIMS - arr.ndim)
        self.meta.append((offset, arr.nbytes, arr.dtype.str.encode(), arr.ndim, shape))
        return index

    def meta_array(self) -> np.ndarray:
        out = np.zeros(len(self.meta), dtype=_ARRAY_DTYPE)
        for i, (offset, nbytes, dtype, ndim, shape) in enumerate(self.meta):
            out[i] = (offset, nbytes, dtype, ndim, shape)
        return out


class _SpillPickler(pickle.Pickler):
    """Pickler that swaps large arrays for columnar-buffer references.

    Persistent-id saves bypass pickle's memo, so an array referenced
    twice in one result would spill twice and rehydrate as two distinct
    objects — changing the re-pickled memo structure.  Deduplicating by
    object id here (and memoising loads in :class:`_SpillUnpickler`)
    keeps intra-result aliasing, and therefore pickle bytes, intact.
    """

    def __init__(self, file: io.BytesIO, collector: _ArrayCollector) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._collector = collector
        self._seen: dict[int, int] = {}

    def persistent_id(self, obj: Any) -> Any:
        if _spillable(obj):
            index = self._seen.get(id(obj))
            if index is None:
                index = self._collector.add(obj)
                self._seen[id(obj)] = index
            return (_PID_TAG, index)
        return None


class _SpillUnpickler(pickle.Unpickler):
    """Unpickler that resolves array references from one shard's buffer."""

    def __init__(self, file: io.BytesIO, shard: "_ShardReader") -> None:
        super().__init__(file)
        self._shard = shard
        self._loaded: dict[int, np.ndarray] = {}

    def persistent_load(self, pid: Any) -> Any:
        if (
            isinstance(pid, tuple)
            and len(pid) == 2
            and pid[0] == _PID_TAG
            and isinstance(pid[1], int)
        ):
            index = pid[1]
            arr = self._loaded.get(index)
            if arr is None:
                arr = self._shard.load_array(index)
                self._loaded[index] = arr
            return arr
        raise pickle.UnpicklingError(f"unknown persistent id: {pid!r}")


class _ShardReader:
    """Lazy random access into one spilled shard.

    The four ``.npy`` files are opened with ``mmap_mode="r"`` on first
    use and can be released (dropping the maps) at any time — the next
    access simply reopens them.  ``load(i)`` copies exactly one result's
    blob and arrays out of the maps, so resident memory tracks the
    working set, not the shard size.
    """

    def __init__(self, directory: Path, shard_id: int, n_items: int) -> None:
        self.directory = directory
        self.shard_id = shard_id
        self.n_items = n_items
        self._blobs: np.ndarray | None = None
        self._items: np.ndarray | None = None
        self._arrays: np.ndarray | None = None
        self._arrmeta: np.ndarray | None = None

    def _path(self, part: str) -> Path:
        return self.directory / f"shard-{self.shard_id:02d}.{part}.npy"

    @staticmethod
    def _mmap_load(path: Path) -> np.ndarray:
        arr: np.ndarray
        try:
            arr = np.load(path, mmap_mode="r")
        except (ValueError, OSError):
            # zero-length arrays cannot be memory-mapped; tiny by
            # definition, so an eager load costs nothing
            arr = np.load(path)
        return arr

    def _ensure_open(self) -> None:
        if self._items is None:
            self._blobs = self._mmap_load(self._path("blobs"))
            self._items = self._mmap_load(self._path("items"))
            self._arrays = self._mmap_load(self._path("arrays"))
            self._arrmeta = self._mmap_load(self._path("arrmeta"))

    def release(self) -> None:
        """Drop the open memory maps (reopened on next access)."""
        self._blobs = self._items = self._arrays = self._arrmeta = None

    def load_array(self, index: int) -> np.ndarray:
        assert self._arrays is not None and self._arrmeta is not None
        meta = self._arrmeta[index]
        lo = int(meta["offset"])
        hi = lo + int(meta["nbytes"])
        dtype = np.dtype(bytes(meta["dtype"]).decode())
        shape = tuple(int(s) for s in meta["shape"][: int(meta["ndim"])])
        # one copy out of the map, then the canonical-dtype re-view: the
        # result must be a plain writeable ndarray indistinguishable
        # from the original, never a view pinning the mmap open
        arr = np.frombuffer(self._arrays[lo:hi].tobytes(), dtype=dtype)
        return _canonical_dtype_view(arr.reshape(shape).copy())

    def load(self, index: int) -> Any:
        if not 0 <= index < self.n_items:
            raise IndexError(f"item {index} outside shard of {self.n_items}")
        self._ensure_open()
        assert self._items is not None and self._blobs is not None
        row = self._items[index]
        lo = int(row["offset"])
        hi = lo + int(row["length"])
        blob = self._blobs[lo:hi].tobytes()
        return _SpillUnpickler(io.BytesIO(blob), self).load()


def _remove_tree(path: str) -> None:
    """Finalizer target: must not hold a reference back to the owner."""
    shutil.rmtree(path, ignore_errors=True)


class SpillDir:
    """One sharded run's spill directory and its write path.

    Created under ``REPRO_SPILL_DIR`` (or the system temp dir) with a
    unique ``repro-spill-`` prefix.  Only the coordinating engine writes
    here, and only the coordinator (directly on failure, or through the
    :class:`SpilledResults` finalizer on success) deletes it.
    """

    def __init__(self, directory: "str | os.PathLike[str]") -> None:
        self.directory = Path(directory)
        self.bytes_written = 0
        self.n_items = 0
        self._finalizer = weakref.finalize(self, _remove_tree, str(self.directory))

    @classmethod
    def create(cls) -> "SpillDir":
        parent = resolve_spill_parent()
        if parent is not None:
            Path(parent).mkdir(parents=True, exist_ok=True)
        return cls(tempfile.mkdtemp(prefix="repro-spill-", dir=parent))

    def write_shard(self, shard_id: int, results: Sequence[Any]) -> _ShardReader:
        """Spill one shard's ordered results; returns its lazy reader."""
        collector = _ArrayCollector()
        blobs = io.BytesIO()
        items = np.zeros(len(results), dtype=_ITEM_DTYPE)
        for i, result in enumerate(results):
            offset = blobs.tell()
            _SpillPickler(blobs, collector).dump(result)
            items[i] = (offset, blobs.tell() - offset)
        written = 0
        for part, payload in (
            ("blobs", np.frombuffer(blobs.getbuffer(), dtype=np.uint8)),
            ("items", items),
            ("arrays", np.frombuffer(bytes(collector.payload), dtype=np.uint8)),
            ("arrmeta", collector.meta_array()),
        ):
            path = self.directory / f"shard-{shard_id:02d}.{part}.npy"
            np.save(path, payload)
            written += path.stat().st_size
        self.bytes_written += written
        self.n_items += len(results)
        get_registry().counter("spill.bytes.written").inc(written)
        return _ShardReader(self.directory, shard_id, len(results))

    def cleanup(self) -> None:
        """Remove the directory now (idempotent; detaches the finalizer)."""
        if self._finalizer.detach() is not None:
            _remove_tree(str(self.directory))

    @property
    def alive(self) -> bool:
        return self._finalizer.alive


#: How many shards keep their memory maps open at once.  Sequential
#: scans (the mapping iteration pattern) touch shards in order, so two
#: is enough to make the boundary between shards free.
_OPEN_SHARD_CAP = 2


class SpilledResults(Sequence[Any]):
    """All shards of one run as a lazy, ordered result sequence.

    ``results[i]`` rehydrates exactly one result from the owning shard's
    memory maps; nothing else is resident.  Owns the spill directory:
    when this object is garbage-collected (or the process exits) the
    directory is removed — callers that need results past the engine
    run's lifetime simply keep the sequence alive.
    """

    def __init__(self, spill: SpillDir, shards: Sequence[_ShardReader]) -> None:
        self._spill = spill
        self._shards = list(shards)
        self._starts: list[int] = []
        total = 0
        for reader in self._shards:
            self._starts.append(total)
            total += reader.n_items
        self._total = total
        self._open_order: list[int] = []

    @property
    def spill_dir(self) -> Path:
        return self._spill.directory

    @property
    def spilled_bytes(self) -> int:
        return self._spill.bytes_written

    def __len__(self) -> int:
        return self._total

    def _locate(self, index: int) -> tuple[int, int]:
        shard = int(np.searchsorted(np.asarray(self._starts), index, side="right")) - 1
        return shard, index - self._starts[shard]

    def _touch(self, shard_index: int) -> None:
        if shard_index in self._open_order:
            self._open_order.remove(shard_index)
        self._open_order.append(shard_index)
        while len(self._open_order) > _OPEN_SHARD_CAP:
            self._shards[self._open_order.pop(0)].release()

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(self._total))]
        i = int(index)
        if i < 0:
            i += self._total
        if not 0 <= i < self._total:
            raise IndexError(f"result index {index} outside [0, {self._total})")
        shard_index, local = self._locate(i)
        self._touch(shard_index)
        return self._shards[shard_index].load(local)

    def __iter__(self) -> Iterator[Any]:
        for shard_index, reader in enumerate(self._shards):
            self._touch(shard_index)
            for local in range(reader.n_items):
                yield reader.load(local)
