"""Kernel/engine micro-benchmark measurement cores and the bench trajectory.

``BENCH_kernels.json`` used to be a single overwritten snapshot; this
module versions it into a **trajectory**: the latest sections stay at
the top level (so existing greps and the pytest artifact tests keep
working), and every ``repro bench`` invocation appends a full record —
git describe, machine fingerprint, timings — to a bounded ``history``
list.  ``repro bench --check`` then compares the newest record against
the median of comparable prior records (same machine fingerprint, and
for the engine section the same scale) and fails on a >threshold%
regression, which is what ROADMAP item 1 means by "a BENCH section
tracking blocks/sec at scale".

The measurement functions here are the single source of truth: the
``benchmarks/test_microbench.py`` artifact tests import them, so pytest
runs and ``repro bench`` runs time exactly the same code on exactly the
same fixtures.  Every vectorized/batched measurement asserts
byte-identity against its scalar oracle before timing lands in the
artifact — a speedup over a kernel that disagrees is meaningless.

``measure_cusum_scaling`` exists because the trajectory's first real
question was "why is ``cusum_rows`` only ~1.2x batched?".  The answer
used to be "because ``detect_cusum_batch`` only hoisted NaN
forward-fill and looped per-row passes"; the row-parallel
``_cusum_pass_batch`` kernel replaced that loop (all rows' segments
advance together as 2-D reductions, Python work is O(alarms)), and the
sweep now shows the speedup growing with B (~1.5x at 16 to ~2x at 256+)
instead of flat.  See docs/algorithms.md §14.

``measure_scale`` extends the trajectory to out-of-core scale: a
sharded serial engine (``--shards``) streams world sizes from
``REPRO_BENCH_SCALES`` (default 1600, 25k, 100k blocks) and records
blocks/sec, peak coordinator RSS, and spill volume per scale — the
"scale" section ROADMAP item 1 asks for.  One pass per scale, no
best-of: a 100k-block world is minutes, and the RSS bound (not the
timing noise floor) is the headline.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import pickle
import platform
import sys
import time
from datetime import datetime
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "BENCH_FILE",
    "BENCH_SCHEMA",
    "DEFAULT_SECTIONS",
    "DEFAULT_THRESHOLD_PCT",
    "append_record",
    "check_regression",
    "count_matrix_fixture",
    "load_history",
    "machine_fingerprint",
    "measure_batched_kernels",
    "measure_cusum_scaling",
    "measure_dispatch_tiers",
    "measure_engine",
    "measure_kernels",
    "measure_scale",
    "merge_latest_section",
    "quarter_block_fixture",
    "run_sections",
]

BENCH_FILE = "BENCH_kernels.json"
BENCH_SCHEMA = 1
HISTORY_CAP = 500
DEFAULT_THRESHOLD_PCT = 25.0
DEFAULT_SECTIONS = (
    "kernels",
    "batched",
    "cusum_rows_scaling",
    "dispatch_tiers",
    "engine",
    "scale",
)

QUARTER_S = 84 * 86_400.0
BATCH_BLOCKS = 256
ENGINE_DATASET = "2020it89-match-ejnw"  # two weeks, four observers
CUSUM_BATCH_SIZES = (16, 64, 256, 1024)
SCALE_SWEEP = (1_600, 25_000, 100_000)
SCALE_SHARD_BLOCKS = 2_000  # target shard width for the scale sweep
DISPATCH_BATCH_SIZES = (64, 256, 1024)
DISPATCH_TASKS = 2  # tasks per map: enough to engage the pool, cheap to run


# ---------------------------------------------------------------------------
# fixtures (shared with benchmarks/test_microbench.py)
# ---------------------------------------------------------------------------
def quarter_block_fixture():
    """One block's quarter-length truth, probe order, and observation log."""
    from .net.events import Calendar
    from .net.prober import TrinocularObserver, probe_order
    from .net.usage import WorkplaceUsage, round_grid

    calendar = Calendar(epoch=datetime(2020, 1, 1), tz_hours=0.0)
    usage = WorkplaceUsage(n_desktops=60, n_servers=2)
    truth = usage.generate(np.random.default_rng(5), round_grid(QUARTER_S), calendar)
    order = probe_order(truth.n_addresses, 5)
    log = TrinocularObserver("e").observe(truth, order, rng=np.random.default_rng(6))
    return truth, order, log


def count_matrix_fixture(n_blocks: int = BATCH_BLOCKS):
    """``n_blocks`` plausible two-week count series sharing one round grid."""
    from .timeseries.series import BlockMatrix, TimeSeries

    rng = np.random.default_rng(17)
    n = int(14 * 86_400.0 / 660.0)  # two weeks of 11-minute rounds
    times = np.arange(n) * 660.0
    series = []
    for _ in range(n_blocks):
        level = rng.uniform(8.0, 60.0)
        amp = rng.uniform(0.1, 0.5) * level
        values = level + amp * np.sin(2 * np.pi * times / 86_400.0)
        values += rng.normal(0.0, 0.05 * level, n)
        series.append(TimeSeries(times, values))
    return series, BlockMatrix.from_series(series)


def _best_of(fn: Callable[..., Any], *args: Any, repeats: int = 3, **kwargs: Any):
    """(best wall seconds, last result) over ``repeats`` calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


# ---------------------------------------------------------------------------
# measurement cores
# ---------------------------------------------------------------------------
def measure_kernels(quarter_block=None) -> dict[str, dict[str, float]]:
    """Vectorized-vs-reference speedups on the quarter fixture."""
    from .core.reconstruction import full_scan_durations, full_scan_durations_reference
    from .net.prober import TrinocularObserver
    from .timeseries.detect import detect_cusum, detect_cusum_reference

    truth, order, log = quarter_block or quarter_block_fixture()
    obs = TrinocularObserver("e")

    fast_s, fast_log = _best_of(
        lambda: obs.observe(truth, order, rng=np.random.default_rng(1))
    )
    ref_s, ref_log = _best_of(
        lambda: obs.observe_reference(truth, order, rng=np.random.default_rng(1))
    )
    assert np.array_equal(fast_log.times, ref_log.times)
    prober = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    fast_s, fast_d = _best_of(full_scan_durations, log, truth.addresses)
    ref_s, ref_d = _best_of(full_scan_durations_reference, log, truth.addresses)
    assert np.array_equal(fast_d, ref_d)
    recon = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    # the pipeline's shape: a long z-scored trend with a few level shifts
    rng = np.random.default_rng(3)
    steps = np.repeat([0.0, -3.0, -0.5, 2.5, 0.0], 10_000)
    y = steps + rng.normal(0.0, 0.1, steps.size)
    fast_s, fast_c = _best_of(detect_cusum, y, 1.0, 0.0055)
    ref_s, ref_c = _best_of(detect_cusum_reference, y, 1.0, 0.0055)
    assert fast_c.alarms == ref_c.alarms
    cusum = {"vectorized_s": fast_s, "reference_s": ref_s, "speedup": ref_s / fast_s}

    return {"prober": prober, "full_scan_durations": recon, "cusum": cusum}


def measure_batched_kernels(count_matrix=None) -> dict[str, dict[str, float]]:
    """Batched-vs-scalar-loop wall times over the 256-block batch."""
    from .core.sensitivity import SensitivityClassifier
    from .core.trend import TrendExtractor
    from .timeseries.detect import detect_cusum, detect_cusum_batch, zscore_rows
    from .timeseries.series import BlockMatrix

    series, matrix = count_matrix or count_matrix_fixture()
    out: dict[str, dict[str, float]] = {}

    extractor = TrendExtractor()
    batch_s, batch_trends = _best_of(extractor.extract_batch, matrix)
    loop_s, loop_trends = _best_of(lambda: [extractor.extract(s) for s in series])
    for b, l in zip(batch_trends, loop_trends):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["trend"] = {"batched_s": batch_s, "scalar_s": loop_s, "speedup": loop_s / batch_s}

    classifier = SensitivityClassifier()
    batch_s, batch_cls = _best_of(classifier.classify_batch, matrix)
    loop_s, loop_cls = _best_of(lambda: [classifier.classify(s) for s in series])
    for b, l in zip(batch_cls, loop_cls):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["classify"] = {
        "batched_s": batch_s,
        "scalar_s": loop_s,
        "speedup": loop_s / batch_s,
    }

    trends = BlockMatrix(
        batch_trends[0].trend.times,
        zscore_rows(
            np.stack([t.trend.values for t in batch_trends]),
            min_abs_scale=0.5,
            min_rel_scale=0.02,
        ),
    )
    batch_s, batch_cusum = _best_of(detect_cusum_batch, trends.values, 1.0, 0.0055)
    loop_s, loop_cusum = _best_of(
        lambda: [detect_cusum(row, 1.0, 0.0055) for row in trends.values]
    )
    for b, l in zip(batch_cusum, loop_cusum):
        assert pickle.dumps(b) == pickle.dumps(l)
    out["cusum_rows"] = {
        "batched_s": batch_s,
        "scalar_s": loop_s,
        "speedup": loop_s / batch_s,
    }
    return out


def measure_cusum_scaling(
    batch_sizes: Sequence[int] = CUSUM_BATCH_SIZES,
) -> dict[str, dict[str, float]]:
    """``cusum_rows`` batched-vs-loop speedup across batch sizes.

    The satellite question behind this sweep: does the ~1.2x batched
    speedup at B=256 grow with B (fixable dispatch overhead) or stay
    flat (bandwidth-bound per-row kernel)?  Results are keyed by B so
    the trajectory records the whole curve.
    """
    from .timeseries.detect import detect_cusum, detect_cusum_batch, zscore_rows

    rng = np.random.default_rng(23)
    n = int(14 * 86_400.0 / 660.0)
    out: dict[str, dict[str, float]] = {}
    for b in batch_sizes:
        base = np.repeat(
            rng.uniform(-0.5, 0.5, (b, (n + 5) // 6)), 6, axis=1
        )[:, :n]
        rows = zscore_rows(
            base + rng.normal(0.0, 0.1, (b, n)),
            min_abs_scale=0.5,
            min_rel_scale=0.02,
        )
        batch_s, batch_res = _best_of(detect_cusum_batch, rows, 1.0, 0.0055)
        loop_s, loop_res = _best_of(
            lambda r=rows: [detect_cusum(row, 1.0, 0.0055) for row in r]
        )
        for x, y in zip(batch_res, loop_res):
            assert pickle.dumps(x) == pickle.dumps(y)
        out[str(b)] = {
            "batched_s": batch_s,
            "scalar_s": loop_s,
            "speedup": loop_s / batch_s,
            "rows_per_sec_batched": b / batch_s if batch_s > 0 else 0.0,
        }
    return out


def _dispatch_tier_task(task: dict[str, Any]) -> np.ndarray:
    """The dispatch-tier bench job: row sums over one shipped matrix.

    Deliberately trivial compute — the section measures the *dispatch*
    plane (pickle vs shared-memory array handoff), so the kernel must
    not dominate.  Module-level so both pool executors can pickle it.
    """
    return np.nansum(task["values"], axis=1) + float(task["tag"])


def measure_dispatch_tiers(
    batch_sizes: Sequence[int] = DISPATCH_BATCH_SIZES,
) -> dict[str, dict[str, float]]:
    """Pickle-vs-shared-memory dispatch cost across matrix batch sizes.

    For each B the same ``(B, n)`` count matrix rides inside
    ``DISPATCH_TASKS`` tasks through a :class:`ParallelExecutor` (full
    array pickles) and a :class:`SharedMemoryExecutor` (descriptors +
    one shm publication), after a warm-up map so the persistent pool's
    spawn does not land in the timing.  Records what each tier actually
    shipped — ``pickle_task_bytes`` vs ``shm_task_bytes`` (+
    ``shm_bytes`` published out-of-band) — and blocks/sec per tier;
    results are asserted byte-identical before anything is recorded.
    Keyed by B, like :func:`measure_cusum_scaling`.
    """
    from .runtime import envconfig
    from .runtime.executors import ParallelExecutor, SharedMemoryExecutor

    out: dict[str, dict[str, float]] = {}
    # the pickle path's task-byte measurement is accounting-gated
    with envconfig.overriding("REPRO_PAYLOAD_ACCOUNTING", "1"):
        for b in batch_sizes:
            _, matrix = count_matrix_fixture(b)
            tasks = [
                {"values": matrix.values, "tag": i} for i in range(DISPATCH_TASKS)
            ]
            expected = [_dispatch_tier_task(t) for t in tasks]

            tiers: dict[str, tuple[Any, dict[str, float]]] = {}
            for tier, executor in (
                ("pickle", ParallelExecutor(workers=2)),
                ("shm", SharedMemoryExecutor(workers=2)),
            ):
                executor.map(_dispatch_tier_task, tasks)  # warm-up (spawns)
                before = dict(executor.payload)
                t0 = time.perf_counter()
                results = executor.map(_dispatch_tier_task, tasks)
                wall_s = time.perf_counter() - t0
                delta = {
                    k: executor.payload.get(k, 0) - before.get(k, 0)
                    for k in executor.payload
                }
                if executor.fallback_reason is not None or delta.get("maps") != 1:
                    raise RuntimeError(
                        f"dispatch_tiers[{tier}] B={b} did not dispatch through "
                        f"the pool: {executor.fallback_reason!r}"
                    )
                for got, want in zip(results, expected):
                    assert pickle.dumps(got) == pickle.dumps(want)
                tiers[tier] = (delta, {"wall_s": wall_s})
                closer = getattr(executor, "close", None)
                if callable(closer):
                    closer()

            pickle_delta, pickle_t = tiers["pickle"]
            shm_delta, shm_t = tiers["shm"]
            n_blocks = b * DISPATCH_TASKS
            out[str(b)] = {
                "pickle_task_bytes": float(pickle_delta["task_bytes"]),
                "shm_task_bytes": float(shm_delta["task_bytes"]),
                "shm_bytes": float(shm_delta.get("shm_bytes", 0)),
                "task_bytes_ratio": (
                    pickle_delta["task_bytes"] / shm_delta["task_bytes"]
                    if shm_delta["task_bytes"]
                    else 0.0
                ),
                "pickle_wall_s": pickle_t["wall_s"],
                "shm_wall_s": shm_t["wall_s"],
                "blocks_per_sec_pickle": (
                    n_blocks / pickle_t["wall_s"] if pickle_t["wall_s"] > 0 else 0.0
                ),
                "blocks_per_sec_shm": (
                    n_blocks / shm_t["wall_s"] if shm_t["wall_s"] > 0 else 0.0
                ),
            }
    return out


def measure_engine(n_blocks: int | None = None) -> dict[str, float | int]:
    """Serial whole-world analysis throughput (blocks/sec at scale)."""
    from .datasets.builder import DatasetBuilder
    from .experiments.common import bench_scale
    from .net.world import WorldModel, scenario_covid2020
    from .runtime import CampaignEngine, SerialExecutor

    scale = int(n_blocks) if n_blocks is not None else bench_scale(200)
    world = WorldModel(scenario_covid2020(), n_blocks=scale, seed=11)
    engine = CampaignEngine(SerialExecutor())
    result = DatasetBuilder(world).analyze(ENGINE_DATASET, engine=engine)
    metrics = result.metrics
    return {
        "scale": scale,
        "wall_s": metrics.wall_s,
        "blocks_per_sec": metrics.blocks_per_sec,
    }


def _scale_sweep() -> tuple[int, ...]:
    """Scales for ``measure_scale``: ``REPRO_BENCH_SCALES`` (comma ints)
    overrides the default :data:`SCALE_SWEEP` so CI can run a tiny sweep."""
    from .runtime import envconfig

    return envconfig.get_int_csv("REPRO_BENCH_SCALES") or SCALE_SWEEP


def measure_scale(scales: "Sequence[int] | None" = None) -> dict[str, Any]:
    """Sharded out-of-core throughput and peak RSS across world scales.

    For each world size the whole ``ENGINE_DATASET`` campaign streams
    through a sharded serial engine (~:data:`SCALE_SHARD_BLOCKS` blocks
    per shard, at least two shards so spill/merge is always exercised)
    and records blocks/sec, the coordinator's peak RSS, and the spill
    volume.  One pass per scale — a 100k-block world takes minutes, and
    the headline is the RSS bound, not the timing noise floor.  The keys
    deliberately avoid ``vectorized_s``/``batched_s`` so the regression
    gate (which keys off those names) ignores this section: the sweep
    varies with ``REPRO_BENCH_SCALES`` and is not comparable run-to-run.
    """
    from .datasets.builder import DatasetBuilder
    from .net.world import WorldModel, scenario_covid2020
    from .runtime import CampaignEngine, SerialExecutor

    out: dict[str, Any] = {}
    for scale in scales if scales is not None else _scale_sweep():
        n_blocks = int(scale)
        n_shards = max(-(-n_blocks // SCALE_SHARD_BLOCKS), 2)
        world = WorldModel(scenario_covid2020(), n_blocks=n_blocks, seed=11)
        engine = CampaignEngine(SerialExecutor(), shards=n_shards)
        result = DatasetBuilder(world).analyze(ENGINE_DATASET, engine=engine)
        metrics = result.metrics
        resources = metrics.resources or {}
        shards = metrics.shards or {}
        out[str(n_blocks)] = {
            "n_blocks": n_blocks,
            "n_shards": shards.get("shards", n_shards),
            "wall_s": metrics.wall_s,
            "blocks_per_sec": metrics.blocks_per_sec,
            "rss_peak_bytes": resources.get("rss_peak_bytes", 0),
            "spill_bytes": shards.get("spill_bytes", 0),
        }
    return out


def run_sections(sections: Iterable[str]) -> dict[str, Any]:
    """Measure each named section; unknown names raise ``ValueError``."""
    runners: dict[str, Callable[[], Any]] = {
        "kernels": measure_kernels,
        "batched": measure_batched_kernels,
        "cusum_rows_scaling": measure_cusum_scaling,
        "dispatch_tiers": measure_dispatch_tiers,
        "engine": measure_engine,
        "scale": measure_scale,
    }
    out: dict[str, Any] = {}
    for name in sections:
        runner = runners.get(name)
        if runner is None:
            raise ValueError(
                f"unknown bench section {name!r}; known: {sorted(runners)}"
            )
        out[name] = runner()
    return out


# ---------------------------------------------------------------------------
# machine fingerprint and the versioned history document
# ---------------------------------------------------------------------------
def machine_fingerprint() -> dict[str, Any]:
    """What hardware/toolchain produced a record (comparability key)."""
    fields = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
    }
    token = json.dumps(fields, sort_keys=True)
    fields["id"] = hashlib.sha256(token.encode()).hexdigest()[:12]
    return fields


def load_history(path: "str | os.PathLike[str]") -> dict[str, Any]:
    """Read the bench document, migrating a legacy flat snapshot in place.

    A pre-trajectory file (no ``schema`` key) keeps its sections as the
    "latest" values and starts with an empty history — old numbers are
    not fabricated into records they never were.
    """
    p = Path(path)
    try:
        doc = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError):
        doc = {}
    if not isinstance(doc, dict):
        doc = {}
    if "schema" not in doc:
        doc = {"schema": BENCH_SCHEMA, **doc, "history": []}
    doc.setdefault("history", [])
    return doc


def append_record(
    path: "str | os.PathLike[str]", sections: dict[str, Any]
) -> dict[str, Any]:
    """Append one trajectory record and refresh the latest sections."""
    from .obs.sinks import git_describe

    doc = load_history(path)
    record = {
        "t_unix": time.time(),
        "git": git_describe(),
        "machine": machine_fingerprint(),
        "sections": sections,
    }
    doc["history"].append(record)
    doc["history"] = doc["history"][-HISTORY_CAP:]
    for name, payload in sections.items():
        doc[name] = payload
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def merge_latest_section(
    path: "str | os.PathLike[str]", section: str, payload: Any
) -> None:
    """Update one latest section without touching the history.

    This is the pytest artifact tests' write path: they refresh the
    headline numbers on every run, while only explicit ``repro bench``
    invocations append trajectory records.
    """
    doc = load_history(path)
    doc[section] = payload
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")


# ---------------------------------------------------------------------------
# regression gate
# ---------------------------------------------------------------------------
def _metric_paths(sections: dict[str, Any]) -> list[tuple[str, str, str, bool]]:
    """(section, sub-key, metric, lower_is_better) triples to compare."""
    paths: list[tuple[str, str, str, bool]] = []
    for section, payload in sections.items():
        if section == "engine":
            paths.append((section, "", "blocks_per_sec", False))
            continue
        if not isinstance(payload, dict):
            continue
        for sub, stats in payload.items():
            if not isinstance(stats, dict):
                continue
            if "vectorized_s" in stats:
                paths.append((section, sub, "vectorized_s", True))
            elif "batched_s" in stats:
                paths.append((section, sub, "batched_s", True))
    return paths


def _lookup(sections: dict[str, Any], section: str, sub: str, metric: str):
    payload = sections.get(section)
    if not isinstance(payload, dict):
        return None
    stats = payload.get(sub) if sub else payload
    if not isinstance(stats, dict):
        return None
    value = stats.get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def _comparable(candidate: dict[str, Any], prior: dict[str, Any]) -> bool:
    """Prior records count only when measured on comparable ground."""
    cand_id = (candidate.get("machine") or {}).get("id")
    prior_id = (prior.get("machine") or {}).get("id")
    if cand_id != prior_id:
        return False
    cand_scale = _lookup(candidate.get("sections") or {}, "engine", "", "scale")
    prior_scale = _lookup(prior.get("sections") or {}, "engine", "", "scale")
    if cand_scale is not None and prior_scale is not None and cand_scale != prior_scale:
        return False
    return True


def check_regression(
    doc: dict[str, Any], threshold_pct: float = DEFAULT_THRESHOLD_PCT
) -> tuple[list[str], list[str]]:
    """(regressions, notes) for the newest record vs the prior trajectory.

    The newest history record is the candidate; the baseline per metric
    is the **median** of that metric over comparable prior records (same
    machine fingerprint; same engine scale).  Medians make one earlier
    noisy run harmless.  Timing metrics regress when slower than
    baseline by more than ``threshold_pct``; throughput metrics
    (``blocks_per_sec``) when lower by more than ``threshold_pct``.
    """
    history = doc.get("history") or []
    if len(history) < 2:
        return [], ["no prior trajectory records to compare against"]
    candidate = history[-1]
    pool = [r for r in history[:-1] if _comparable(candidate, r)]
    if not pool:
        return [], [
            "no comparable prior records (different machine fingerprint or scale)"
        ]

    regressions: list[str] = []
    notes: list[str] = []
    cand_sections = candidate.get("sections") or {}
    for section, sub, metric, lower_better in _metric_paths(cand_sections):
        cand = _lookup(cand_sections, section, sub, metric)
        if cand is None:
            continue
        prior_values = [
            v
            for r in pool
            if (v := _lookup(r.get("sections") or {}, section, sub, metric)) is not None
        ]
        if not prior_values:
            notes.append(f"{section}/{sub or metric}: new metric, no baseline yet")
            continue
        baseline = float(np.median(prior_values))
        label = f"{section}/{sub}/{metric}" if sub else f"{section}/{metric}"
        if baseline <= 0:
            continue
        if lower_better:
            change_pct = 100.0 * (cand - baseline) / baseline
            if change_pct > threshold_pct:
                regressions.append(
                    f"{label}: {cand:.6f}s vs median {baseline:.6f}s "
                    f"(+{change_pct:.0f}% slower, threshold {threshold_pct:.0f}%)"
                )
        else:
            change_pct = 100.0 * (baseline - cand) / baseline
            if change_pct > threshold_pct:
                regressions.append(
                    f"{label}: {cand:.2f} vs median {baseline:.2f} "
                    f"(-{change_pct:.0f}% throughput, threshold {threshold_pct:.0f}%)"
                )
    return regressions, notes


# ---------------------------------------------------------------------------
# CLI (``repro bench``)
# ---------------------------------------------------------------------------
def _summarise(sections: dict[str, Any]) -> list[str]:
    lines = []
    for section, payload in sections.items():
        if section == "engine" and isinstance(payload, dict):
            lines.append(
                f"  engine: {payload.get('blocks_per_sec', 0.0):.1f} blocks/s "
                f"at scale {payload.get('scale', '?')} "
                f"({payload.get('wall_s', 0.0):.2f}s wall)"
            )
            continue
        if section == "scale" and isinstance(payload, dict):
            for sub, stats in payload.items():
                if not isinstance(stats, dict):
                    continue
                rss_mib = float(stats.get("rss_peak_bytes", 0)) / (1024 * 1024)
                lines.append(
                    f"  scale/{sub}: {stats.get('blocks_per_sec', 0.0):.1f} blocks/s, "
                    f"{stats.get('n_shards', '?')} shards, peak RSS {rss_mib:.0f} MiB"
                )
            continue
        if not isinstance(payload, dict):
            continue
        for sub, stats in payload.items():
            if isinstance(stats, dict) and "speedup" in stats:
                lines.append(f"  {section}/{sub}: {stats['speedup']:.2f}x")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the kernel/engine microbenchmarks and append a record "
            "(git describe, machine fingerprint, timings) to the "
            "BENCH_kernels.json trajectory; --check compares the newest "
            "record against the recorded history."
        ),
    )
    parser.add_argument(
        "--output",
        default=BENCH_FILE,
        help="bench history file (default: %(default)s)",
    )
    parser.add_argument(
        "--sections",
        default=",".join(DEFAULT_SECTIONS),
        help="comma-separated sections to run (default: %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare the newest record against the trajectory instead of measuring",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        help="regression threshold in percent for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    if args.check:
        doc = load_history(args.output)
        regressions, notes = check_regression(doc, threshold_pct=args.threshold)
        for note in notes:
            print(f"bench check: {note}")
        if regressions:
            for line in regressions:
                print(f"bench REGRESSION: {line}")
            if args.warn_only:
                print(f"bench check: {len(regressions)} regression(s), warn-only mode")
                return 0
            return 1
        print(
            f"bench check: OK ({len(doc.get('history') or [])} records, "
            f"threshold {args.threshold:.0f}%)"
        )
        return 0

    sections = run_sections(s for s in args.sections.split(",") if s)
    append_record(args.output, sections)
    doc = load_history(args.output)
    print(f"bench: recorded {len(doc['history'])} trajectory record(s) in {args.output}")
    for line in _summarise(sections):
        print(line)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
