"""Diagnosing a congested observer path and repairing it (paper §3.3).

One of five observers probes a block through a link whose loss is
diurnal — which can fake a diurnal usage pattern at the *destination*.
This example shows the full diagnostic workflow a measurement operator
would run: per-observer reply-rate comparison flags the outlier, 1-loss
repair fixes the stream, and the repaired multi-observer reconstruction
no longer inherits the congestion artifact.

Run:  python examples/congestion_repair.py
"""

from datetime import datetime

import numpy as np

from repro.core.combine import compare_observers
from repro.core.diurnal import DiurnalTest
from repro.core.reconstruction import reconstruct
from repro.core.repair import one_loss_repair, repaired_fraction
from repro.net.events import Calendar
from repro.net.loss import BernoulliLoss, DiurnalCongestionLoss
from repro.net.observations import merge_observations
from repro.net.prober import TrinocularObserver, probe_order
from repro.net.usage import SparseUsage, round_grid


def main() -> None:
    # a non-diurnal destination: long-lived sparse addresses
    calendar = Calendar(epoch=datetime(2023, 4, 1), tz_hours=8.0)
    usage = SparseUsage(n_addresses=120, mean_on_days=6.0, mean_off_days=3.0)
    truth = usage.generate(np.random.default_rng(7), round_grid(28 * 86_400.0), calendar)
    order = probe_order(truth.n_addresses, 7)

    congested = DiurnalCongestionLoss(base=0.04, peak=0.5, peak_hour=21.0, tz_hours=8.0)
    clean = BernoulliLoss(0.004)
    logs = {}
    for i, name in enumerate("cegnw"):
        loss = congested if name == "w" else clean
        logs[name] = TrinocularObserver(name, phase_offset_s=101.0 * (i + 1)).observe(
            truth, order, loss, np.random.default_rng([7, i])
        )

    print("step 1: cross-observer health check (per-block reply rates)")
    for health in compare_observers(list(logs.values())):
        flag = "  <-- suspicious" if health.suspicious else ""
        print(f"  {health.observer}: {health.reply_rate:.3f} ({health.deviation:+.3f}){flag}")

    print("\nstep 2: does the lossy stream fake diurnality?")
    for name in ("n", "w"):
        recon = reconstruct(logs[name], truth.addresses, truth.col_times)
        verdict = DiurnalTest().evaluate(recon.counts)
        print(f"  observer {name}: diurnal energy ratio {verdict.energy_ratio:.2f}")

    print("\nstep 3: 1-loss repair")
    for name, log in logs.items():
        print(f"  {name}: repairs {repaired_fraction(log):.1%} of probes")
    repaired = {name: one_loss_repair(log) for name, log in logs.items()}

    merged_raw = merge_observations(list(logs.values()))
    merged_fixed = merge_observations(list(repaired.values()))
    print("\nstep 4: all-observer reconstruction")
    print(f"  reply rate without repair: {merged_raw.reply_rate():.3f}")
    print(f"  reply rate with repair:    {merged_fixed.reply_rate():.3f}")
    print(f"  ground-truth activity:     {truth.active.mean():.3f}")


if __name__ == "__main__":
    main()
