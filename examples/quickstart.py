"""Quickstart: detect a work-from-home shift in one /24 block.

Builds a synthetic workplace block (people at desks on public IPs during
work hours), schedules a WFH order for 2020-03-15, probes it with four
Trinocular-style observers, and runs the full analysis pipeline:
1-loss repair -> merge -> reconstruction -> change-sensitivity -> STL
trend -> CUSUM change detection.

Run:  python examples/quickstart.py
"""

from datetime import date, datetime, timedelta

import numpy as np

from repro import BlockPipeline, TrinocularObserver, probe_order
from repro.net.events import Calendar, WorkFromHome
from repro.net.usage import WorkplaceUsage, round_grid


def main() -> None:
    # 1. ground truth: a block whose people stop coming in on 2020-03-15
    epoch = datetime(2020, 1, 1)
    calendar = Calendar(
        epoch=epoch,
        tz_hours=-8.0,  # Los Angeles
        events=(WorkFromHome(start=date(2020, 3, 15), work_factor=0.05),),
    )
    usage = WorkplaceUsage(n_desktops=40, n_servers=2)
    truth = usage.generate(
        np.random.default_rng(42), round_grid(84 * 86_400.0), calendar
    )
    print(f"block has |E(b)| = {truth.n_addresses} ever-active addresses")

    # 2. measurement: four observers, unsynchronized, shared probe order
    order = probe_order(truth.n_addresses, seed=42)
    logs = [
        TrinocularObserver(name, phase_offset_s=137.0 * (i + 1)).observe(
            truth, order, rng=np.random.default_rng([42, i])
        )
        for i, name in enumerate("ejnw")
    ]
    print(f"collected {sum(len(log) for log in logs)} probe results from 4 observers")

    # 3. analysis
    analysis = BlockPipeline().analyze(logs, truth.addresses)
    c = analysis.classification
    print(f"responsive:        {c.responsive}")
    print(f"diurnal:           {c.is_diurnal} (energy ratio {c.diurnal.energy_ratio:.2f})")
    print(f"wide daily swing:  {c.is_wide_swing} (max swing {c.swing.max_swing:.0f})")
    print(f"change-sensitive:  {c.is_change_sensitive}")

    for event in analysis.changes.human_candidates:
        when = epoch.date() + timedelta(days=event.day)
        direction = "down" if event.is_downward else "up"
        print(f"detected {direction}ward change around {when} (magnitude {event.magnitude:+.1f})")
    print("ground truth: WFH began 2020-03-15")


if __name__ == "__main__":
    main()
