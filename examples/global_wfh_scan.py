"""Global scan: where and when did daily activity change in 2020h1?

A scaled-down version of the paper's §4 analysis: build a world of a few
hundred /24 blocks across ~46 real cities, find the change-sensitive
blocks on the January baseline, detect changes over the half year, and
aggregate downward trends into 2x2-degree gridcells and continents.

Run:  python examples/global_wfh_scan.py          (about a minute)
      REPRO_SCALE=1600 python examples/global_wfh_scan.py   (paper shapes)
"""

import os

from repro.core.aggregate import GridAggregator
from repro.experiments.common import covid_campaign, sparkline


def main() -> None:
    n_blocks = int(os.environ.get("REPRO_SCALE", 500))
    print(f"building and analyzing a {n_blocks}-block world (one-time cost)...")
    campaign = covid_campaign(n_blocks=n_blocks)
    print(f"change-sensitive blocks: {len(campaign.analyses)} of {len(campaign.records)}")

    agg: GridAggregator = campaign.aggregator()
    coverage = agg.coverage()
    print(
        f"gridcells: {coverage.n_cells} total, {coverage.n_observed} observed, "
        f"{coverage.n_represented} represented"
    )

    print("\ntop gridcells by change-sensitive blocks:")
    cells = sorted(agg.cells.values(), key=lambda s: -s.n_change_sensitive)[:8]
    for stats in cells:
        print(f"  {str(stats.cell):>12s}  {stats.continent:<14s} {stats.n_change_sensitive}")

    print("\ndaily downward-trend fraction by continent (Jan 1 - Jun 30 2020):")
    series = agg.continent_daily_fractions(
        campaign.first_day, campaign.n_days, represented_only=False
    )
    for continent in sorted(series, key=lambda c: -series[c].max()):
        values = series[continent]
        peak_idx = int(values.argmax())
        peak_date = campaign.date_of(campaign.first_day + peak_idx)
        print(f"  {continent:>14s} |{sparkline(values)}| peak {values.max():.1%} on {peak_date}")

    print(
        "\nexpected: Asia peaks late January (Spring Festival + Wuhan lockdown),"
        "\nthe rest of the world peaks mid-to-late March (Covid WFH orders)."
    )


if __name__ == "__main__":
    main()
