"""Event discovery: find anomalous days in a gridcell *without* a news feed.

The paper's §4.3 story: browsing the data surfaced hot spots in New Delhi
in late February 2020 (riots with curfew calls) weeks before the Covid
lockdown.  This example plays the analyst: it scans a gridcell's daily
downward fractions for days that stand far above the cell's typical
level, reports them as candidate events — and only then reveals the
world's scheduled ground truth for comparison.

Run:  python examples/curfew_discovery.py
"""

import os

import numpy as np

from repro.experiments.common import covid_campaign
from repro.net.geo import GridCell


def discover_anomalies(down: np.ndarray, min_factor: float = 4.0) -> list[int]:
    """Days whose downward fraction stands far above the typical level."""
    positive = down[down > 0]
    if positive.size == 0:
        return []
    typical = max(float(np.median(positive)), 1e-3)
    threshold = max(min_factor * typical, float(np.quantile(down, 0.97)))
    return [int(i) for i in np.flatnonzero(down >= threshold)]


def main() -> None:
    n_blocks = int(os.environ.get("REPRO_SCALE", 500))
    campaign = covid_campaign(n_blocks=n_blocks)
    agg = campaign.aggregator()

    cell = GridCell(28, 76)  # New Delhi
    stats = agg.cell(cell)
    if stats is None or stats.n_change_sensitive == 0:
        print(f"no change-sensitive blocks in {cell}; rerun with REPRO_SCALE=1600")
        return
    print(f"examining {cell}: {stats.n_change_sensitive} change-sensitive blocks")

    down, _ = agg.cell_daily_fractions(cell, campaign.first_day, campaign.n_days)
    candidates = discover_anomalies(down)

    print("\ncandidate event days (no ground truth consulted):")
    for day in candidates:
        when = campaign.date_of(campaign.first_day + day)
        print(f"  {when}: {down[day]:.1%} of blocks trending down")

    print("\nscheduled ground truth for New Delhi:")
    print("  2020-02-23..03-01  riots with curfew calls (paper S4.3)")
    print("  2020-03-22         Janata curfew")
    print("  2020-03-24         national lockdown / WFH")


if __name__ == "__main__":
    main()
