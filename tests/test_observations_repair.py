"""Unit tests for observation containers, merging and 1-loss repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.repair import one_loss_repair, repaired_fraction
from repro.net.observations import ObservationSeries, merge_observations


def series(times, addrs, results, observer="e"):
    return ObservationSeries(
        times=np.asarray(times, dtype=float),
        addresses=np.asarray(addrs, dtype=np.int16),
        results=np.asarray(results, dtype=bool),
        observer=observer,
    )


class TestObservationSeries:
    def test_validates_lengths(self):
        with pytest.raises(ValueError, match="equal-length"):
            series([0, 1], [1], [True])

    def test_validates_time_order(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            series([1, 0], [1, 1], [True, True])

    def test_reply_rate(self):
        s = series([0, 1, 2, 3], [1, 1, 2, 2], [True, False, True, True])
        assert s.reply_rate() == pytest.approx(0.75)

    def test_reply_rate_empty_is_nan(self):
        assert np.isnan(series([], [], []).reply_rate())

    def test_reply_rate_by_address(self):
        s = series([0, 1, 2, 3], [1, 1, 2, 2], [True, False, True, True])
        rates = s.reply_rate_by_address()
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(1.0)

    def test_address_view_in_time_order(self):
        s = series([0, 1, 2], [5, 7, 5], [True, False, False])
        times, results = s.address_view(5)
        assert np.array_equal(times, [0, 2])
        assert np.array_equal(results, [True, False])

    def test_slice_time_half_open(self):
        s = series([0, 10, 20], [1, 2, 3], [True, True, True])
        sub = s.slice_time(0, 20)
        assert len(sub) == 2


class TestMerge:
    def test_merges_in_time_order(self):
        a = series([0, 10], [1, 1], [True, True], "a")
        b = series([5, 15], [2, 2], [False, False], "b")
        merged = merge_observations([a, b])
        assert np.array_equal(merged.times, [0, 5, 10, 15])
        assert merged.observer == "merged"

    def test_preserves_provenance(self):
        a = series([0], [1], [True], "a")
        b = series([5], [2], [False], "b")
        merged = merge_observations([a, b])
        assert merged.source_names == ("a", "b")
        assert merged.sources.tolist() == [0, 1]

    def test_empty_inputs(self):
        merged = merge_observations([])
        assert merged.is_empty

    def test_single_input_passthrough(self):
        a = series([0, 1], [1, 2], [True, False], "a")
        merged = merge_observations([a])
        assert np.array_equal(merged.times, a.times)
        assert merged.source_names == ("a",)

    def test_stable_for_equal_times(self):
        a = series([5.0], [1], [True], "a")
        b = series([5.0], [2], [False], "b")
        merged = merge_observations([a, b])
        assert merged.addresses.tolist() == [1, 2]  # input order preserved


class TestOneLossRepair:
    def test_repairs_101_pattern(self):
        s = series([0, 10, 20], [1, 1, 1], [True, False, True])
        repaired = one_loss_repair(s)
        assert repaired.results.all()

    def test_leaves_110_and_011(self):
        s = series([0, 10, 20, 30, 40, 50], [1, 1, 1, 2, 2, 2],
                   [True, True, False, False, True, True])
        repaired = one_loss_repair(s)
        assert np.array_equal(repaired.results, s.results)

    def test_leaves_back_to_back_losses(self):
        s = series([0, 10, 20, 30], [1, 1, 1, 1], [True, False, False, True])
        repaired = one_loss_repair(s)
        assert np.array_equal(repaired.results, s.results)

    def test_does_not_cross_addresses(self):
        # the 0 at t=10 belongs to addr 2; its neighbours in time are addr 1
        s = series([0, 10, 20], [1, 2, 1], [True, False, True])
        repaired = one_loss_repair(s)
        assert not repaired.results[1]

    def test_repairs_multiple_independent_holes(self):
        s = series(
            [0, 10, 20, 30, 40, 50],
            [1, 1, 1, 2, 2, 2],
            [True, False, True, True, False, True],
        )
        repaired = one_loss_repair(s)
        assert repaired.results.all()

    def test_short_series_unchanged(self):
        s = series([0, 10], [1, 1], [True, False])
        assert one_loss_repair(s) is s

    def test_original_untouched(self):
        s = series([0, 10, 20], [1, 1, 1], [True, False, True])
        one_loss_repair(s)
        assert not s.results[1]

    def test_repaired_fraction(self):
        s = series([0, 10, 20, 30], [1, 1, 1, 1], [True, False, True, True])
        assert repaired_fraction(s) == pytest.approx(0.25)

    def test_repair_recovers_random_loss_statistics(self):
        rng = np.random.default_rng(0)
        n = 3000
        times = np.arange(n, dtype=float)
        addrs = np.repeat(np.arange(30), 100).astype(np.int16)
        order = np.argsort(np.tile(np.arange(100), 30), kind="stable")
        addrs = addrs[order]
        truth = np.ones(n, dtype=bool)
        lost = rng.random(n) < 0.1
        observed = truth & ~lost
        s = series(times, addrs, observed)
        repaired = one_loss_repair(s)
        # isolated losses dominate at 10%, so most should be repaired
        assert repaired.reply_rate() > 0.97
