"""Tests for the resource-accounting and progress (heartbeat) planes."""

from __future__ import annotations

import json
import warnings

import pytest

from repro.datasets.builder import DatasetBuilder
from repro.net.world import WorldModel, scenario_covid2020
from repro.obs.progress import (
    NoopProgress,
    ProgressEmitter,
    default_progress,
    get_progress,
    use_progress,
)
from repro.obs.resources import (
    ResourceSnapshot,
    ResourceTracker,
    cpu_seconds,
    format_bytes,
    peak_rss_bytes,
    rss_bytes,
    thread_cpu_seconds,
)
from repro.runtime import CampaignEngine, ParallelExecutor, SerialExecutor

DATASET = "2020it89-match-ejnw"  # two weeks, four observers: cheap but real


def _square(x: int) -> int:
    """Module-level so the pool executors can pickle it."""
    return x * x


@pytest.fixture(scope="module")
def world40() -> WorldModel:
    """A small-but-real world: enough blocks for a genuine pool dispatch."""
    return WorldModel(scenario_covid2020(), n_blocks=40, seed=7)


class TestResourceHelpers:
    def test_rss_probes_return_positive_bytes(self):
        # any live python process holds tens of MB resident
        assert peak_rss_bytes() > 1_000_000
        assert rss_bytes() > 1_000_000

    def test_peak_is_a_high_water_mark(self):
        before = peak_rss_bytes()
        ballast = bytearray(32 * 1024 * 1024)
        ballast[::4096] = b"x" * len(ballast[::4096])  # fault the pages in
        after = peak_rss_bytes()
        del ballast
        assert after >= before

    def test_cpu_clocks_are_monotone(self):
        c0, t0 = cpu_seconds(), thread_cpu_seconds()
        sum(i * i for i in range(200_000))
        assert cpu_seconds() >= c0
        assert thread_cpu_seconds() >= t0

    def test_snapshot_now_is_picklable_shape(self):
        snap = ResourceSnapshot.now()
        assert snap.rss_peak_bytes > 0
        assert snap.wall_s > 0

    def test_tracker_summary_keys_and_utilization(self):
        with ResourceTracker() as tracker:
            sum(i * i for i in range(200_000))
        summary = tracker.summary()
        for key in (
            "wall_s",
            "cpu_s",
            "cpu_utilization",
            "rss_bytes",
            "rss_peak_bytes",
            "rss_peak_delta_bytes",
        ):
            assert key in summary, key
        assert summary["wall_s"] > 0
        assert 0.0 <= summary["cpu_utilization"]

    def test_format_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(5 * 1024 * 1024) == "5.0 MiB"
        assert format_bytes(3 * 1024**3) == "3.0 GiB"


class TestEngineResourceAccounting:
    def test_serial_run_reports_resources(self, world40):
        engine = CampaignEngine(SerialExecutor())
        result = DatasetBuilder(world40).analyze(DATASET, engine=engine)
        res = result.metrics.resources
        assert res is not None
        assert res["wall_s"] > 0
        assert res["cpu_s"] > 0
        assert res["rss_peak_bytes"] > 1_000_000
        assert "pool" not in res  # nothing crossed a process boundary
        report = result.metrics.report()
        assert "resources:" in report
        assert "cpu_s" in report and "rss+" in report  # per-stage columns

    def test_parallel_run_reports_pool_payload(self, world40, monkeypatch):
        # payload measurement re-pickles, so it is opt-in (the CLI opts
        # --metrics/--trace runs in automatically)
        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "1")
        engine = CampaignEngine(ParallelExecutor(workers=2))
        result = DatasetBuilder(world40).analyze(DATASET, engine=engine)
        assert engine.executor.fallback_reason is None
        res = result.metrics.resources
        assert res is not None
        pool = res.get("pool")
        assert pool is not None
        assert pool["fn_bytes"] > 0
        assert pool["task_bytes"] > 0
        assert pool["result_bytes"] > 0
        assert pool["maps"] >= 1
        assert "pool:" in result.metrics.report()

    def test_payload_counts_each_byte_exactly_once(self, monkeypatch):
        """Satellite regression: fn/task/result bytes equal the sum of
        individually measured pickles — no double-counted fn bytes."""
        import pickle

        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "1")
        executor = ParallelExecutor(workers=2)
        tasks = list(range(12))
        results = executor.map(_square, tasks)
        assert executor.fallback_reason is None
        assert results == [t * t for t in tasks]
        proto = pickle.HIGHEST_PROTOCOL
        fn_bytes = len(pickle.dumps(_square, protocol=proto))
        task_bytes = sum(len(pickle.dumps(t, protocol=proto)) for t in tasks)
        result_bytes = sum(len(pickle.dumps(r, protocol=proto)) for r in results)
        assert executor.payload["fn_bytes"] == fn_bytes
        assert executor.payload["task_bytes"] == task_bytes
        assert executor.payload["result_bytes"] == result_bytes
        assert (
            executor.payload["fn_bytes"]
            + executor.payload["task_bytes"]
            + executor.payload["result_bytes"]
            == fn_bytes + task_bytes + result_bytes
        )

    def test_payload_accounting_gate_resolution(self, monkeypatch):
        from repro.runtime.executors import payload_accounting_enabled

        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "1")
        assert payload_accounting_enabled() is True
        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "off")
        assert payload_accounting_enabled() is False
        # unset = auto: on only when the ambient tracer is recording
        monkeypatch.delenv("REPRO_PAYLOAD_ACCOUNTING", raising=False)
        assert payload_accounting_enabled() is False
        from repro.obs.trace import Tracer, use_tracer

        with use_tracer(Tracer()):
            assert payload_accounting_enabled() is True

    def test_accounting_off_skips_measurement_keeps_results(self, monkeypatch):
        import pickle

        tasks = list(range(12))
        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "0")
        off = ParallelExecutor(workers=2)
        results_off = off.map(_square, tasks)
        assert off.fallback_reason is None
        assert off.payload["fn_bytes"] == 0
        assert off.payload["task_bytes"] == 0
        assert off.payload["result_bytes"] == 0
        assert off.payload["maps"] == 1  # the dispatch itself still counts
        monkeypatch.setenv("REPRO_PAYLOAD_ACCOUNTING", "1")
        on = ParallelExecutor(workers=2)
        results_on = on.map(_square, tasks)
        assert on.fallback_reason is None
        assert on.payload["task_bytes"] > 0
        assert pickle.dumps(results_off) == pickle.dumps(results_on)

    def test_traced_run_reports_worker_resources(self, world40):
        from repro.obs.trace import Tracer, use_tracer

        engine = CampaignEngine(SerialExecutor())
        with use_tracer(Tracer()):
            result = DatasetBuilder(world40).analyze(DATASET, engine=engine)
        res = result.metrics.resources
        assert res is not None
        workers = res.get("workers")
        assert workers is not None
        # >= rather than ==: batched phase-B chunks ship meters too
        assert workers["tasks"] >= world40.n_blocks
        assert workers["rss_peak_bytes"] > 0
        assert "workers:" in result.metrics.report()

    def test_resources_roundtrip_through_dict(self, world40):
        from repro.runtime import RunMetrics

        engine = CampaignEngine(SerialExecutor())
        result = DatasetBuilder(world40).analyze(DATASET, engine=engine)
        reloaded = RunMetrics.from_dict(
            json.loads(json.dumps(result.metrics.as_dict()))
        )
        assert reloaded.resources == result.metrics.resources
        assert reloaded.report() == result.metrics.report()

    def test_accounting_preserves_byte_identity(self, world40):
        import pickle

        serial = DatasetBuilder(world40).analyze(
            DATASET, engine=CampaignEngine(SerialExecutor())
        )
        parallel = DatasetBuilder(world40).analyze(
            DATASET, engine=CampaignEngine(ParallelExecutor(workers=2))
        )
        for cidr, analysis in parallel.analyses.items():
            assert pickle.dumps(analysis) == pickle.dumps(serial.analyses[cidr])


class TestProgressEmitter:
    def test_ambient_default_is_noop(self):
        assert type(get_progress()) is NoopProgress

    def test_engine_run_leaves_at_least_two_heartbeats(self, world40, tmp_path):
        emitter = ProgressEmitter(tmp_path, interval_s=0.0)
        with use_progress(emitter):
            engine = CampaignEngine(SerialExecutor())
            DatasetBuilder(world40).analyze(DATASET, engine=engine)
        lines = [
            json.loads(line)
            for line in emitter.path.read_text().splitlines()
            if line.strip()
        ]
        assert len(lines) >= 2
        assert lines[0]["event"] == "start"
        assert lines[-1]["event"] == "finish"
        assert lines[-1]["done"] == lines[-1]["total"] == world40.n_blocks
        assert lines[-1]["rss_bytes"] > 0
        assert lines[-1]["blocks_per_sec"] > 0

    def test_batched_ticks_converge_to_total(self, world40, tmp_path, monkeypatch):
        # batched dispatch re-maps the analysis tail in grid chunks;
        # those phase-B ticks must not double-count blocks
        monkeypatch.setenv("REPRO_BATCHED", "1")
        emitter = ProgressEmitter(tmp_path, interval_s=0.0)
        with use_progress(emitter):
            engine = CampaignEngine(SerialExecutor())
            DatasetBuilder(world40).analyze(DATASET, engine=engine)
        last = json.loads(emitter.path.read_text().splitlines()[-1])
        assert last["done"] == last["total"] == world40.n_blocks

    def test_unwritable_sink_warns_once_and_degrades(self, tmp_path):
        target = tmp_path / "blocked"
        target.write_text("a file where the directory should be")
        emitter = ProgressEmitter(target / "sub", interval_s=0.0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            emitter.begin("x", 4)
            emitter.tick()
            emitter.finish()
        sink_warnings = [w for w in caught if "progress sink" in str(w.message)]
        assert len(sink_warnings) == 1  # one warning, then silence
        assert emitter._disabled

    def test_default_progress_reads_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        assert type(default_progress()) is NoopProgress
        monkeypatch.setenv("REPRO_PROGRESS", str(tmp_path))
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0.5")
        emitter = default_progress()
        assert isinstance(emitter, ProgressEmitter)
        assert emitter.directory == tmp_path
        assert emitter.interval_s == 0.5

    def test_interval_rate_limits_mid_run_ticks(self, tmp_path):
        emitter = ProgressEmitter(tmp_path, interval_s=3600.0)
        emitter.begin("x", 100)
        for _ in range(50):
            emitter.tick()
        emitter.finish()
        lines = emitter.path.read_text().splitlines()
        # forced start + forced finish only; no tick squeezed between
        assert len(lines) == 2


class TestCliAcceptance:
    def test_fig3_metrics_and_progress(self, tmp_path, monkeypatch, capsys):
        """The ISSUE acceptance path: fig3 with --metrics --progress."""
        from repro.cli import main as cli_main
        from repro.obs.progress import set_progress

        monkeypatch.setenv("REPRO_SCALE", "16")
        monkeypatch.setenv("REPRO_PROGRESS_INTERVAL", "0")
        monkeypatch.delenv("REPRO_PROGRESS", raising=False)
        sink = tmp_path / "progress"
        try:
            code = cli_main(["--metrics", "--progress", str(sink), "fig3"])
        finally:
            set_progress(NoopProgress())  # the CLI installs process-wide
        assert code == 0
        err = capsys.readouterr().err
        assert "resources:" in err
        assert "cpu" in err and "rss" in err
        heartbeats = [
            json.loads(line)
            for line in (sink / "progress.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert len(heartbeats) >= 2
