"""Half of the REP007 cycle fixture: imports its own importer."""

from .cycle_b import helper_b


def helper_a():
    return helper_b() + 1
