# REP005 clean: registered literals, and dynamic tails through
# metric_name over a registered family.
from repro.obs.metrics import get_registry
from repro.obs.names import metric_name


def record(key: str, n: int) -> None:
    registry = get_registry()
    registry.counter("cache.hit").inc()
    registry.counter("engine.tasks").inc(n)
    registry.counter(metric_name("funnel", key)).inc(n)
