"""Clean fixture for REP007: core importing an existing leaf symbol."""

from ..timeseries.windows import clamp


def normalise(x):
    return clamp(x / 100.0)
