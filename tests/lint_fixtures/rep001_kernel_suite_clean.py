# REP001 clean: one test references both twins (via a helper, which the
# rule resolves one level deep).
from repro.kernels import frobnicate, frobnicate_reference


def check_pair(x):
    assert (frobnicate(x) == frobnicate_reference(x)).all()


def test_frobnicate_matches_reference():
    check_pair([1.0, 2.0])
