"""Violating fixture for REP007: importing a name that does not exist."""

from ..timeseries.windows import not_a_symbol


def use():
    return not_a_symbol()
