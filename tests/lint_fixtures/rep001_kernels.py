# REP001 fixture: a module defining an oracle pair (installed as a
# src/repro module by the test; whether it violates depends on which
# kernel-test fixture is installed next to it).
import numpy as np


def frobnicate(x):
    return np.asarray(x) * 2.0


def frobnicate_reference(x):
    return np.asarray(x) * 2.0
