# REP003 clean: a job carrying only plain-data shm descriptors.
from dataclasses import dataclass

from repro.runtime.shm import ArrayDescriptor, attach_view


@dataclass(frozen=True)
class DescriptorTailJob:
    desc: ArrayDescriptor  # name/shape/dtype/offset record: plain data
    scale: float = 1.0

    def __call__(self, _task):
        view = attach_view(self.desc)  # attached per call, never stored
        return float(view.sum()) * self.scale
