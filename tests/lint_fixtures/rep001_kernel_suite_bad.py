# REP001 violation: the suite exercises the vectorized kernel but the
# oracle is never compared against it (the equivalence test was lost).
from repro.kernels import frobnicate


def test_frobnicate_runs():
    frobnicate([1.0, 2.0])
