"""Other half of the REP007 cycle fixture."""

from .cycle_a import helper_a


def helper_b():
    return helper_a() + 1
