"""Clean fixture for REP006: every acquisition is protected."""

import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np


def with_context(blocks):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(len, blocks))


def try_finally():
    seg = shared_memory.SharedMemory(create=True, size=64)
    try:
        return seg.size
    finally:
        seg.close()
        seg.unlink()


def mmap_view(path):
    with np.load(path, mmap_mode="r") as data:
        return data["values"].sum()


def handoff():
    seg = shared_memory.SharedMemory(create=True, size=64)
    _adopt(seg)  # ownership transferred to the callee


def _adopt(seg) -> None:
    seg.close()
    seg.unlink()


class FinalizedOwner:
    """No lifecycle method, but a GC safety net releases the dir."""

    def __init__(self) -> None:
        self.scratch = tempfile.mkdtemp(prefix="fixture-")
        self._finalizer = weakref.finalize(self, shutil.rmtree, self.scratch)


class PoolOwner:
    """Stores the pool on self and owns its shutdown."""

    def __init__(self) -> None:
        self._pool = ProcessPoolExecutor(max_workers=2)

    def close(self) -> None:
        self._pool.shutdown()
