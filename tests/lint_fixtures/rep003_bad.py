# REP003 violations: a dispatched job capturing unpicklable state.
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BrokenAnalysisJob:
    scale: float = 1.0
    transform = lambda x: x * 2  # lambda class attribute default
    weights: object = field(default=lambda: [1.0])  # lambda field default


class LeakyScanJob:
    def __init__(self, path):
        def helper(x):
            return x + 1

        self.helper = helper  # nested function attribute
        self.log = open(path)  # open handle attribute
