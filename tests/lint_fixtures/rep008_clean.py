"""Clean fixture for REP008: every knob goes through the resolver."""

from repro.runtime import envconfig


def scale():
    return envconfig.get_int("REPRO_SCALE", 400)


def workers():
    return envconfig.raw("REPRO_WORKERS")


def enable_batched():
    envconfig.set_env("REPRO_BATCHED", "1")
