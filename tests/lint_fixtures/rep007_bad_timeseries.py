"""Violating fixture for REP007: a leaf layer reaching up into runtime."""

from repro.runtime.engine import default_engine


def clamp(x):
    return max(0.0, min(1.0, x))


def run():
    return default_engine()
