# REP004 violation: a spec whose cache key forgets a field, so two
# different thresholds collide on one cache entry.
from dataclasses import dataclass


@dataclass(frozen=True)
class WindowSpec:
    n_days: int
    threshold: float
    kind: str = "scan"

    def cache_key(self):
        return ("window", self.n_days, self.kind)  # threshold is missing
