"""Synthetic runtime.engine for the REP007 fixture trees."""


def default_engine():
    return None
