# REP005 violations: an f-string instrument name, an unregistered
# literal, and an unregistered metric_name family.
from repro.obs.metrics import get_registry
from repro.obs.names import metric_name


def record(stage: str, n: int) -> None:
    registry = get_registry()
    registry.counter(f"stage.{stage}.done").inc(n)  # f-string name
    registry.counter("engine.taks").inc()  # typo'd, unregistered
    registry.histogram(metric_name("latency", stage)).observe(0.1)  # bad family
