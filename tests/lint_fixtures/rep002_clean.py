# REP002 clean: randomness flows through a passed-in Generator, timing
# through perf_counter (telemetry-only), hashing through crc32.
import time
import zlib

import numpy as np


def jitter(values, rng: np.random.Generator):
    return values + rng.normal(0.0, 1.0, len(values))


def make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def elapsed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def bucket(name: str) -> int:
    return zlib.crc32(name.encode()) % 16
