# REP003 clean: frozen dataclass job with picklable fields only.
from dataclasses import dataclass, field


def double(x):
    return x * 2


@dataclass(frozen=True)
class CleanAnalysisJob:
    scale: float = 1.0
    weights: list = field(default_factory=list)  # factory runs at init time

    def __call__(self, x):
        return double(x) * self.scale
