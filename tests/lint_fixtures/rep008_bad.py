"""Violating fixture for REP008: raw environment access everywhere."""

import os
from os import environ, getenv


def scale():
    return int(os.environ.get("REPRO_SCALE", "400"))


def workers():
    return os.getenv("REPRO_WORKERS", "1")


def enable_batched():
    os.environ["REPRO_BATCHED"] = "1"


def from_import_reads():
    return environ.get("REPRO_CACHE"), getenv("REPRO_SHM")
