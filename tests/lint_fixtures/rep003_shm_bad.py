# REP003 violations: a dispatched job capturing live shared-memory state.
from multiprocessing import shared_memory
from multiprocessing.shared_memory import SharedMemory


class ShmHoardingJob:
    def __init__(self, name):
        self.seg = SharedMemory(name=name)  # live handle attribute
        self.raw = shared_memory.SharedMemory(name=name)  # dotted form too
        self.view = memoryview(b"payload")  # memoryview attribute
        self.buf = self.seg.buf  # segment buffer attribute
