"""Clean fixture for REP007: a leaf layer importing nothing from repro."""

import math


def clamp(x):
    return max(0.0, min(1.0, x))


def decibels(power):
    return 10.0 * math.log10(power)
