"""Violating fixture for REP006: acquisitions leaked on some path."""

import tempfile
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory


def leak_dropped() -> None:
    # acquired with no handle at all: nothing can ever release it
    shared_memory.SharedMemory(create=True, size=64)


def leak_exception_edge(blocks):
    pool = ProcessPoolExecutor(max_workers=2)
    results = list(pool.map(len, blocks))  # can raise before shutdown
    pool.shutdown()
    return results


def leak_never_released():
    scratch = tempfile.mkdtemp(prefix="fixture-")
    return "done"


class Holder:
    """Stores a segment on self but can never let go of it again."""

    def __init__(self) -> None:
        self.seg = shared_memory.SharedMemory(create=True, size=64)
