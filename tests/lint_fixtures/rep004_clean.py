# REP004 clean: every public field reaches the token (one spec
# explicitly, one through the dataclasses.fields escape hatch).
import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class WindowSpec:
    n_days: int
    threshold: float
    kind: str = "scan"

    def cache_key(self):
        return ("window", self.n_days, self.threshold, self.kind)


@dataclass(frozen=True)
class GridSpec:
    step_s: float
    origin: float

    def cache_token(self):
        return tuple(
            getattr(self, f.name) for f in dataclasses.fields(self)
        )
