# REP002 violations: hidden global state and wall-clock in deterministic code.
import random
import time
from datetime import datetime

import numpy as np


def jitter(values):
    noise = np.random.normal(0.0, 1.0, len(values))  # legacy global RNG
    return values + noise


def sample_one(options):
    return random.choice(options)  # stdlib global RNG


def stamp():
    return time.time()  # wall clock


def label():
    return datetime.now().isoformat()  # wall clock


def bucket(name):
    return hash(name) % 16  # process-salted for strings
