# REP005 fixture: the central instrument-name registry of the synthetic
# tree (installed as src/repro/obs/names.py by the test).
METRICS = frozenset(
    {
        "cache.hit",
        "engine.tasks",
    }
)

METRIC_FAMILIES = frozenset(
    {
        "funnel",
    }
)


def metric_name(family, *parts):
    return ".".join((family, *parts))
