"""The shared-memory dispatch tier: transport, lifecycle, byte-identity.

Covers the lifecycle rules the shm tier promises (see
``src/repro/runtime/shm.py``): segments are unlinked after normal map
completion, after a pool fallback, and after a worker exception; the
persistent pool spawns exactly once per engine run; and fig3 results are
byte-identical across serial, parallel, and shm execution.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np
import pytest

from repro.obs.metrics import scoped_registry
from repro.runtime import (
    CampaignEngine,
    ParallelExecutor,
    SerialExecutor,
    SharedArrayPool,
    SharedMemoryExecutor,
    default_engine,
)
from repro.runtime import executors as executors_mod
from repro.runtime.shm import (
    DEFAULT_MIN_SHM_BYTES,
    attach_bytes,
    attach_view,
    resolve_min_shm_bytes,
    shm_dumps,
    shm_loads,
)

SRC = Path(__file__).resolve().parent.parent / "src"


def _segment_exists(name: str) -> bool:
    try:
        seg = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    seg.close()
    return True


def _sum_task(task: dict) -> float:
    """Module-level so the pool executors can pickle it."""
    return float(task["a"].sum()) + task["i"]


def _explode_on_three(task: dict) -> float:
    if task["i"] == 3:
        raise ValueError("bad task")
    return float(task["i"])


def _big_tasks(n: int = 6) -> list[dict]:
    arr = np.arange(40_000, dtype=np.float64).reshape(200, 200)
    return [{"a": arr, "i": i} for i in range(n)]


# ---------------------------------------------------------------------------
# SharedArrayPool + shm pickling
# ---------------------------------------------------------------------------
class TestSharedArrayPool:
    def test_publish_attach_roundtrip(self):
        arr = np.linspace(0.0, 1.0, 5000).reshape(50, 100)
        with SharedArrayPool() as pool:
            desc = pool.publish(arr)
            view = attach_view(desc)
            assert np.array_equal(view, arr)
            assert view.shape == arr.shape
            # descriptor dtype strings resolve to the interned singleton
            assert view.dtype is np.dtype("float64")
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0

    def test_publish_memoizes_by_object_identity(self):
        arr = np.ones(4096)
        with SharedArrayPool() as pool:
            d1 = pool.publish(arr)
            d2 = pool.publish(arr)
            assert d1 == d2
            assert pool.published_arrays == 1
            # an equal-valued but distinct object publishes separately
            d3 = pool.publish(np.ones(4096))
            assert d3 != d1
            assert pool.published_arrays == 2

    def test_publish_bytes_roundtrip(self):
        payload = os.urandom(10_000)
        with SharedArrayPool() as pool:
            desc = pool.publish_bytes(payload)
            assert bytes(attach_bytes(desc)) == payload

    def test_oversized_array_gets_its_own_segment(self):
        with SharedArrayPool(segment_bytes=1024) as pool:
            big = np.zeros(1_000_000)  # 8 MB > the 1 KiB segment size
            desc = pool.publish(big)
            assert desc.nbytes == big.nbytes
            assert np.array_equal(attach_view(desc), big)

    def test_release_unlinks_everything_and_is_idempotent(self):
        pool = SharedArrayPool()
        pool.publish(np.arange(5000.0))
        pool.publish_bytes(b"x" * 9000)
        names = list(pool.created)
        assert names and all(_segment_exists(n) for n in names)
        assert pool.release() >= 1
        assert all(not _segment_exists(n) for n in names)
        assert pool.release() == 0  # second release: nothing left
        assert pool.created == names  # history survives for exactly this test

    def test_shm_dumps_inlines_small_arrays(self):
        small = np.arange(4.0)  # 32 bytes, far below the threshold
        with SharedArrayPool() as pool:
            payload = shm_dumps({"s": small}, pool, DEFAULT_MIN_SHM_BYTES)
            assert pool.published_arrays == 0
            assert pool.created == []
            out = shm_loads(payload)
        assert np.array_equal(out["s"], small)
        assert out["s"].flags.writeable  # inline arrays unpickle as usual

    def test_shm_dumps_swaps_large_arrays_for_descriptors(self):
        big = np.arange(5000.0)
        with SharedArrayPool() as pool:
            payload = shm_dumps({"b": big, "tag": 7}, pool, DEFAULT_MIN_SHM_BYTES)
            assert pool.published_bytes == big.nbytes
            assert len(payload) < 1000  # descriptors, not 40 KB of data
            out = shm_loads(payload)
            assert np.array_equal(out["b"], big)
            assert out["tag"] == 7
            assert not out["b"].flags.writeable

    def test_object_dtype_arrays_pickle_inline(self):
        weird = np.array([{"k": 1}, None, "text"] * 2000, dtype=object)
        with SharedArrayPool() as pool:
            payload = shm_dumps(weird, pool, 0)
            assert pool.published_arrays == 0  # never published, inlined
            out = shm_loads(payload)
        assert out[0] == {"k": 1} and out[2] == "text"

    def test_unknown_persistent_id_fails_loudly(self):
        import io

        class ForeignPickler(pickle.Pickler):
            def persistent_id(self, obj):
                return ("not-a-repro-shm-pid",) if obj is marker else None

        marker = object()
        buf = io.BytesIO()
        ForeignPickler(buf).dump([marker])
        with pytest.raises(pickle.UnpicklingError):
            shm_loads(buf.getvalue())

    def test_min_shm_bytes_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_MIN_BYTES", raising=False)
        assert resolve_min_shm_bytes() == DEFAULT_MIN_SHM_BYTES
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "128")
        assert resolve_min_shm_bytes() == 128
        monkeypatch.setenv("REPRO_SHM_MIN_BYTES", "garbage")
        assert resolve_min_shm_bytes() == DEFAULT_MIN_SHM_BYTES


# ---------------------------------------------------------------------------
# SharedMemoryExecutor: dispatch + lifecycle
# ---------------------------------------------------------------------------
class TestSharedMemoryExecutor:
    def test_matches_serial_and_ships_descriptors(self):
        tasks = _big_tasks()
        with SharedMemoryExecutor(workers=2) as executor:
            results = executor.map(_sum_task, tasks)
            assert executor.fallback_reason is None
            assert results == [_sum_task(t) for t in tasks]
            # the array crossed once via shm; pickled tasks stayed tiny
            assert executor.payload["shm_bytes"] >= tasks[0]["a"].nbytes
            assert 0 < executor.payload["task_bytes"] < tasks[0]["a"].nbytes

    def test_segments_unlinked_after_normal_completion(self):
        with SharedMemoryExecutor(workers=2) as executor:
            executor.map(_sum_task, _big_tasks())
            assert executor.last_segments  # something was published...
            assert all(not _segment_exists(n) for n in executor.last_segments)

    def test_segments_unlinked_after_worker_exception(self):
        with SharedMemoryExecutor(workers=2) as executor:
            tasks = _big_tasks()
            with pytest.raises(ValueError, match="bad task"):
                executor.map(_explode_on_three, tasks)
            assert executor.last_segments
            assert all(not _segment_exists(n) for n in executor.last_segments)
            # the pool survives a task exception: no respawn needed
            assert executor.map(_sum_task, tasks) == [_sum_task(t) for t in tasks]
            assert executor.payload["pool_spawns"] == 1

    def test_segments_unlinked_after_pool_fallback(self, monkeypatch):
        from concurrent.futures.process import BrokenProcessPool

        class BrokenMapPool:
            def __init__(self, *args, **kwargs):
                pass

            def map(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", BrokenMapPool)
        executor = SharedMemoryExecutor(workers=2)
        tasks = _big_tasks()
        results = executor.map(_sum_task, tasks)
        assert results == [_sum_task(t) for t in tasks]  # no task lost
        assert "pool failed" in executor.fallback_reason
        assert executor.last_segments
        assert all(not _segment_exists(n) for n in executor.last_segments)

    def test_spawn_failure_falls_back_to_serial(self, monkeypatch):
        class ExplodingPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no processes for you")

        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", ExplodingPool)
        executor = SharedMemoryExecutor(workers=2)
        results = executor.map(_sum_task, _big_tasks())
        assert results == [_sum_task(t) for t in _big_tasks()]
        assert "pool spawn failed" in executor.fallback_reason

    def test_serial_degeneration_without_pool(self):
        executor = SharedMemoryExecutor(workers=1)
        assert executor.map(_sum_task, _big_tasks()) == [
            _sum_task(t) for t in _big_tasks()
        ]
        assert executor.payload["pool_spawns"] == 0  # never spawned

    def test_persistent_pool_spawns_once_across_maps(self):
        with scoped_registry() as registry:
            with SharedMemoryExecutor(workers=2) as executor:
                tasks = _big_tasks()
                for _ in range(3):
                    executor.map(_sum_task, tasks)
                assert executor.payload["maps"] == 3
                assert executor.payload["pool_spawns"] == 1
            assert registry.counter("executor.pool_spawns").value == 1
            assert registry.gauge("executor.pool_workers").value == 2

    def test_close_is_idempotent_and_map_respawns_after(self):
        executor = SharedMemoryExecutor(workers=2)
        tasks = _big_tasks()
        executor.map(_sum_task, tasks)
        executor.close()
        executor.close()
        assert executor.map(_sum_task, tasks) == [_sum_task(t) for t in tasks]
        assert executor.payload["pool_spawns"] == 2
        executor.close()

    def test_no_leak_warnings_under_dash_w_error(self):
        """All three exit paths in one `python -W error` subprocess."""
        script = """
import numpy as np
from repro.runtime import SharedMemoryExecutor
from tests.test_shm import _big_tasks, _explode_on_three, _sum_task

tasks = _big_tasks()
with SharedMemoryExecutor(workers=2) as executor:
    executor.map(_sum_task, tasks)                 # normal completion
    try:
        executor.map(_explode_on_three, tasks)     # worker exception
    except ValueError:
        pass
    executor.map(_sum_task, tasks)                 # pool reuse after error
print("SHM-CLEAN")
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC), str(SRC.parent)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        proc = subprocess.run(
            [sys.executable, "-W", "error", "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SHM-CLEAN" in proc.stdout
        assert "leaked" not in proc.stderr
        assert "resource_tracker" not in proc.stderr


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_engine_context_manager_closes_persistent_pool(self):
        with CampaignEngine(SharedMemoryExecutor(workers=2)) as engine:
            engine.run(_sum_task, _big_tasks(), label="a")
            engine.run(_sum_task, _big_tasks(), label="b")
            assert engine.executor.payload["pool_spawns"] == 1
            assert engine.executor._pool is not None
        assert engine.executor._pool is None
        engine.close()  # idempotent

    def test_engine_close_is_noop_for_serial_and_parallel(self):
        for executor in (SerialExecutor(), ParallelExecutor(workers=2)):
            with CampaignEngine(executor) as engine:
                engine.run(_sum_task, _big_tasks(), label="x")

    def test_shm_pool_delta_reaches_run_resources(self):
        with CampaignEngine(SharedMemoryExecutor(workers=2)) as engine:
            run = engine.run(_sum_task, _big_tasks(), label="shm")
        pool = run.metrics.resources["pool"]
        assert pool["shm_bytes"] >= _big_tasks()[0]["a"].nbytes
        assert pool["maps"] == 1
        assert "via shm" in run.metrics.report()


class TestDefaultEngineShm:
    def test_shm_env_selects_shared_memory_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHM", "1")
        engine = default_engine()
        assert isinstance(engine.executor, SharedMemoryExecutor)
        assert engine.executor.workers == 2
        engine.close()

    def test_shm_off_by_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert isinstance(default_engine().executor, ParallelExecutor)

    def test_shm_without_workers_warns_and_runs_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setenv("REPRO_SHM", "1")
        with pytest.warns(RuntimeWarning, match="REPRO_SHM"):
            engine = default_engine()
        assert isinstance(engine.executor, SerialExecutor)

    def test_garbage_shm_value_warns_and_stays_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHM", "maybe")
        with pytest.warns(RuntimeWarning, match="REPRO_SHM"):
            engine = default_engine()
        assert isinstance(engine.executor, ParallelExecutor)


# ---------------------------------------------------------------------------
# the acceptance bar: fig3 byte-identity across every dispatch tier
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fig3_serial_bytes():
    from repro.experiments import fig3

    return pickle.dumps(fig3.run(n_blocks=64, engine=CampaignEngine(SerialExecutor())))


class TestFig3ByteIdentity:
    def test_shm_batched_matches_serial(self, fig3_serial_bytes):
        from repro.experiments import fig3

        with CampaignEngine(SharedMemoryExecutor(workers=2), batched=True) as engine:
            result = fig3.run(n_blocks=64, engine=engine)
            assert engine.executor.fallback_reason is None
            assert engine.executor.payload["pool_spawns"] == 1
            assert engine.executor.payload["shm_bytes"] > 0
        assert pickle.dumps(result) == fig3_serial_bytes

    def test_shm_per_block_matches_serial(self, fig3_serial_bytes):
        from repro.experiments import fig3

        with CampaignEngine(SharedMemoryExecutor(workers=2), batched=False) as engine:
            result = fig3.run(n_blocks=64, engine=engine)
            assert engine.executor.fallback_reason is None
        assert pickle.dumps(result) == fig3_serial_bytes

    def test_parallel_matches_serial(self, fig3_serial_bytes):
        from repro.experiments import fig3

        engine = CampaignEngine(ParallelExecutor(workers=2))
        result = fig3.run(n_blocks=64, engine=engine)
        assert pickle.dumps(result) == fig3_serial_bytes
