"""Unit tests for the ground-truth usage generators."""

from __future__ import annotations

from datetime import date, datetime

import numpy as np
import pytest

from repro.net.events import Calendar, Holiday, WorkFromHome
from repro.net.usage import (
    BlockTruth,
    DynamicPoolUsage,
    FirewalledUsage,
    HomeEveningUsage,
    NatGatewayUsage,
    ServerFarmUsage,
    SparseUsage,
    WorkplaceUsage,
    round_grid,
)

EPOCH = datetime(2020, 1, 1)
WEEK = 7 * 86_400.0


def generate(usage, days=14, tz=0.0, events=(), seed=0):
    cal = Calendar(epoch=EPOCH, tz_hours=tz, events=tuple(events))
    return usage.generate(np.random.default_rng(seed), round_grid(days * 86_400.0), cal), cal


class TestBlockTruth:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            BlockTruth(
                addresses=np.arange(3, dtype=np.int16),
                active=np.zeros((2, 5), dtype=bool),
                col_times=np.arange(5) * 660.0,
            )

    def test_column_of_clamps(self):
        truth, _ = generate(NatGatewayUsage(n_routers=2), days=1)
        assert truth.column_of(-100.0) == 0
        assert truth.column_of(1e12) == truth.n_cols - 1

    def test_column_of_respects_origin(self):
        truth, _ = generate(NatGatewayUsage(n_routers=2), days=2)
        shifted = BlockTruth(
            addresses=truth.addresses,
            active=truth.active[:, 50:],
            col_times=truth.col_times[50:],
        )
        assert shifted.column_of(shifted.col_times[0]) == 0
        assert shifted.column_of(shifted.col_times[3] + 1.0) == 3

    def test_addresses_unique(self):
        truth, _ = generate(WorkplaceUsage(n_desktops=50))
        assert len(np.unique(truth.addresses)) == truth.n_addresses


class TestWorkplace:
    def test_active_during_work_hours_only(self):
        truth, cal = generate(WorkplaceUsage(n_desktops=40, n_servers=0, stale_addresses=0))
        counts = truth.counts()
        lsod = cal.local_second_of_day(truth.col_times)
        days = cal.local_day(truth.col_times)
        workdays = np.array([cal.is_workday(d) for d in days])
        midday = workdays & (np.abs(lsod - 13 * 3600) < 1800)
        night = np.abs(lsod - 3 * 3600) < 1800
        assert counts[midday].mean() > 20
        assert counts[night].max() == 0

    def test_weekends_are_quiet(self):
        truth, cal = generate(WorkplaceUsage(n_desktops=40, n_servers=1, stale_addresses=0))
        counts = truth.counts()
        days = cal.local_day(truth.col_times)
        weekend = np.array([cal.is_weekend(d) for d in days])
        assert counts[weekend].max() <= 1  # only the server

    def test_servers_always_on(self):
        truth, _ = generate(WorkplaceUsage(n_desktops=0, n_servers=3, stale_addresses=0))
        assert truth.counts().min() == 3

    def test_holiday_is_quiet(self):
        holiday = Holiday(first=date(2020, 1, 2))
        truth, cal = generate(
            WorkplaceUsage(n_desktops=30, n_servers=0, stale_addresses=0),
            events=[holiday],
        )
        days = cal.local_day(truth.col_times)
        assert truth.counts()[days == 1].max() == 0

    def test_wfh_reduces_occupancy(self):
        wfh = WorkFromHome(start=date(2020, 1, 8), work_factor=0.05, ramp_days=1)
        truth, cal = generate(
            WorkplaceUsage(n_desktops=40, n_servers=0, stale_addresses=0),
            events=[wfh],
        )
        counts = truth.counts()
        days = cal.local_day(truth.col_times)
        before = counts[(days >= 1) & (days <= 2)].max()
        after = counts[(days >= 8) & (days <= 9)].max()
        assert after < before * 0.4

    def test_stale_addresses_never_respond(self):
        usage = WorkplaceUsage(n_desktops=10, n_servers=0, stale_addresses=6)
        truth, _ = generate(usage)
        assert truth.n_addresses == 16
        never_active = (~truth.active.any(axis=1)).sum()
        assert never_active >= 6


class TestDynamicPool:
    def test_diurnal_swing(self):
        truth, cal = generate(
            DynamicPoolUsage(pool_size=100, peak=0.8, trough=0.1, quiet_week_probability=0)
        )
        counts = truth.counts()
        lsod = cal.local_second_of_day(truth.col_times)
        evening = np.abs(lsod - 21 * 3600) < 3600
        trough = np.abs(lsod - 9 * 3600) < 3600  # opposite the 21:00 peak
        assert counts[evening].mean() > 3 * counts[trough].mean()

    def test_timezone_shifts_peak(self):
        truth, cal = generate(
            DynamicPoolUsage(pool_size=100, quiet_week_probability=0), tz=8.0
        )
        counts = truth.counts()
        utc_sod = np.mod(truth.col_times, 86_400.0)
        # local 21:00 at UTC+8 is 13:00 UTC
        peak_utc = np.abs(utc_sod - 13 * 3600) < 3600
        trough_utc = np.abs(utc_sod - 1 * 3600) < 3600
        assert counts[peak_utc].mean() > counts[trough_utc].mean()

    def test_occupancy_fills_low_slots_first(self):
        truth, _ = generate(
            DynamicPoolUsage(pool_size=60, quiet_week_probability=0), days=7
        )
        # low-threshold slots should be active more often than high ones
        rates = truth.active.mean(axis=1)[:60]
        assert rates[:10].mean() > rates[-10:].mean()


class TestOtherModels:
    def test_server_farm_nearly_always_on(self):
        truth, _ = generate(ServerFarmUsage(n_servers=100))
        assert truth.active.mean() > 0.98

    def test_nat_gateways_always_on(self):
        truth, _ = generate(NatGatewayUsage(n_routers=4, stale_addresses=0))
        assert truth.active[:4].all()

    def test_sparse_not_diurnal(self):
        truth, _ = generate(SparseUsage(n_addresses=20), days=28)
        counts = truth.counts()
        from repro.timeseries.spectrum import diurnal_energy_ratio

        hourly = counts.reshape(-1)  # round-granularity is fine for the ratio
        assert diurnal_energy_ratio(hourly, 660.0) < 0.3

    def test_firewalled_never_responds(self):
        truth, _ = generate(FirewalledUsage(eb_addresses=12))
        assert truth.n_addresses == 12
        assert not truth.ever_responsive()

    def test_eb_size_capped_at_block_size(self):
        usage = ServerFarmUsage(n_servers=250, stale_addresses=20)
        assert usage.eb_size() == 256
