"""Property-based invariants of geographic coverage accounting."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregate import BlockRecord, GridAggregator
from repro.net.geo import GeoInfo


@st.composite
def block_records(draw, max_records=80):
    n = draw(st.integers(min_value=0, max_value=max_records))
    records = []
    for _ in range(n):
        lat = draw(st.floats(min_value=-60, max_value=70, allow_nan=False))
        lon = draw(st.floats(min_value=-179, max_value=179, allow_nan=False))
        cs = draw(st.booleans())
        records.append(
            BlockRecord(
                geo=GeoInfo(lat=lat, lon=lon, country="X", continent="Asia", city="Y"),
                responsive=draw(st.booleans()),
                change_sensitive=cs,
                downward_days=tuple(
                    draw(st.lists(st.integers(0, 30), max_size=3))
                )
                if cs
                else (),
            )
        )
    return records


class TestCoverageInvariants:
    @given(block_records(), st.integers(1, 10), st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_cell_partitions_sum(self, records, min_resp, min_cs):
        agg = GridAggregator().add_all(records)
        cov = agg.coverage(min_responsive=min_resp, min_change_sensitive=min_cs)
        assert cov.n_under_observed + cov.n_observed == cov.n_cells
        assert cov.n_under_represented + cov.n_represented == cov.n_observed

    @given(block_records(), st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_coverage_monotone_in_threshold(self, records, t):
        agg = GridAggregator().add_all(records)
        low = agg.coverage(min_responsive=t, min_change_sensitive=t)
        high = agg.coverage(min_responsive=t + 1, min_change_sensitive=t + 1)
        assert high.n_observed <= low.n_observed
        assert high.n_represented <= low.n_represented
        assert high.cs_blocks_represented <= low.cs_blocks_represented

    @given(block_records())
    @settings(max_examples=40, deadline=None)
    def test_block_sums_bounded(self, records):
        agg = GridAggregator().add_all(records)
        cov = agg.coverage()
        responsive = sum(r.responsive for r in records)
        cs = sum(r.change_sensitive and r.responsive for r in records)
        assert cov.responsive_blocks_total == responsive
        assert cov.cs_blocks_total == cs
        assert cov.cs_blocks_represented <= cov.cs_blocks_total
        assert cov.responsive_blocks_represented <= cov.responsive_blocks_observed

    @given(block_records(), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_daily_fractions_bounded(self, records, day):
        agg = GridAggregator().add_all(records)
        for cell in agg.cells:
            down, up = agg.cell_daily_fractions(cell, 0, 31)
            assert np.all(down >= 0) and np.all(down <= 1)
            assert np.all(up >= 0) and np.all(up <= 1)

    @given(block_records())
    @settings(max_examples=30, deadline=None)
    def test_continent_fractions_bounded(self, records):
        agg = GridAggregator().add_all(records)
        series = agg.continent_daily_fractions(0, 31, represented_only=False)
        for values in series.values():
            assert np.all(values >= 0) and np.all(values <= 1)
