"""Unit tests for the CUSUM change detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.timeseries.detect import detect_cusum


def step_series(n=400, at=200, levels=(0.0, -3.0), noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    y = np.where(np.arange(n) < at, levels[0], levels[1]).astype(float)
    return y + rng.normal(0, noise, n)


class TestDetection:
    def test_detects_downward_step(self):
        y = step_series()
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert len(result.downward) >= 1
        alarm = result.downward[0]
        assert 195 <= alarm.alarm <= 215

    def test_detects_upward_step(self):
        y = step_series(levels=(0.0, 3.0))
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert len(result.upward) >= 1

    def test_no_alarms_on_flat_series(self):
        result = detect_cusum(np.zeros(300), threshold=1.0, drift=0.001)
        assert len(result) == 0

    def test_no_alarms_on_small_noise(self):
        rng = np.random.default_rng(1)
        result = detect_cusum(rng.normal(0, 0.02, 500), threshold=1.0, drift=0.01)
        assert len(result) == 0

    def test_drift_suppresses_slow_ramp(self):
        # a ramp rising 2 units over 1000 samples: per-sample rise 0.002
        ramp = np.linspace(0, 2, 1000)
        tolerant = detect_cusum(ramp, threshold=1.0, drift=0.01)
        assert len(tolerant) == 0
        sensitive = detect_cusum(ramp, threshold=1.0, drift=0.0)
        assert len(sensitive) >= 1

    def test_onset_precedes_alarm(self):
        y = step_series(noise=0.2, levels=(0.0, -2.0))
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        for alarm in result.alarms:
            assert alarm.start <= alarm.alarm

    def test_ending_at_or_after_onset(self):
        y = step_series(noise=0.1)
        result = detect_cusum(y, threshold=1.0, drift=0.01, estimate_ending=True)
        for alarm in result.alarms:
            assert alarm.end >= alarm.start

    def test_amplitude_sign_matches_direction(self):
        y = step_series(noise=0.02, levels=(0.0, -3.0))
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        down = result.downward[0]
        assert down.amplitude < 0

    def test_two_changes_detected(self):
        y = np.concatenate([np.zeros(150), np.full(150, -3.0), np.zeros(150)])
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert len(result.downward) >= 1
        assert len(result.upward) >= 1


class TestRobustness:
    def test_all_nan_yields_no_alarms(self):
        result = detect_cusum(np.full(100, np.nan))
        assert len(result) == 0

    def test_leading_nans_forward_filled(self):
        y = step_series()
        y[:10] = np.nan
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert len(result.downward) >= 1

    def test_interior_nans_forward_filled(self):
        y = step_series()
        y[100:110] = np.nan
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert len(result.downward) >= 1

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            detect_cusum(np.zeros((3, 3)))

    def test_traces_have_input_length(self):
        y = step_series(n=123)
        result = detect_cusum(y)
        assert result.gp.size == 123
        assert result.gn.size == 123

    def test_cumulative_sums_nonnegative(self):
        y = step_series(noise=0.3)
        result = detect_cusum(y, threshold=1.0, drift=0.01)
        assert (result.gp >= 0).all()
        assert (result.gn >= 0).all()
