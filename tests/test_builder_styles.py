"""Tests for builder observer styles and observation-cache extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.builder import DatasetBuilder
from repro.net.world import WorldModel, scenario_covid2020


@pytest.fixture(scope="module")
def world():
    return WorldModel(scenario_covid2020(), n_blocks=30, seed=91, diurnal_boost=3.0)


class TestObserverStyles:
    def test_unknown_style_rejected(self, world):
        with pytest.raises(ValueError, match="observer_style"):
            DatasetBuilder(world, observer_style="psychic")

    def test_bayesian_style_builds_bayesian_observers(self, world):
        from repro.net.bayesian import BayesianTrinocularObserver

        builder = DatasetBuilder(world, observer_style="bayesian")
        assert all(
            isinstance(obs, BayesianTrinocularObserver)
            for obs in builder.observers.values()
        )

    def test_styles_agree_on_classification(self, world):
        """Adaptive and Bayesian probing classify blocks alike (the
        paper's simplification holds at the funnel level)."""
        spec = next(
            s for s in world.blocks if s.kind in ("pool", "workplace", "home")
        )
        adaptive = DatasetBuilder(world, observer_style="adaptive")
        bayes = DatasetBuilder(world, observer_style="bayesian")
        a = adaptive.analyze_block(spec, "2020m1-ejnw")
        b = bayes.analyze_block(spec, "2020m1-ejnw")
        assert a.classification.responsive == b.classification.responsive
        assert a.classification.is_diurnal == b.classification.is_diurnal

    def test_bayesian_probes_cheaper(self, world):
        spec = next(s for s in world.blocks if s.kind == "churn")
        adaptive = DatasetBuilder(world, observer_style="adaptive")
        bayes = DatasetBuilder(world, observer_style="bayesian")
        start = 92 * 86_400.0
        a = adaptive.observe(spec, "e", start, 7 * 86_400.0)
        b = bayes.observe(spec, "e", start, 7 * 86_400.0)
        assert len(b) <= len(a)


class TestCacheExtension:
    def test_cache_extends_backwards_and_forwards(self, world):
        builder = DatasetBuilder(world)
        spec = next(s for s in world.blocks if s.responsive_by_design)
        mid = builder.observe(spec, "e", 10 * 86_400.0, 5 * 86_400.0)
        # a wider request must re-simulate the union and still slice right
        wide = builder.observe(spec, "e", 8 * 86_400.0, 10 * 86_400.0)
        assert wide.times[0] >= 8 * 86_400.0
        assert wide.times[-1] < 18 * 86_400.0
        # the original narrow window remains a strict subset
        again = builder.observe(spec, "e", 10 * 86_400.0, 5 * 86_400.0)
        assert len(again) > 0
        assert again.times[0] >= 10 * 86_400.0
        assert again.times[-1] < 15 * 86_400.0

    def test_cached_slice_identical_to_fresh(self, world):
        builder = DatasetBuilder(world)
        spec = next(s for s in world.blocks if s.responsive_by_design)
        first = builder.observe(spec, "j", 0.0, 7 * 86_400.0)
        slice_again = builder.observe(spec, "j", 2 * 86_400.0, 3 * 86_400.0)
        manual = first.slice_time(2 * 86_400.0, 5 * 86_400.0)
        assert np.array_equal(slice_again.times, manual.times)
        assert np.array_equal(slice_again.results, manual.results)
