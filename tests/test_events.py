"""Unit tests for events and the per-block calendar."""

from __future__ import annotations

from datetime import date, datetime

import numpy as np
import pytest

from repro.net.events import (
    Calendar,
    Channel,
    Curfew,
    Holiday,
    Migration,
    Outage,
    Renumbering,
    ServiceWindow,
    WorkFromHome,
)

EPOCH = datetime(2020, 1, 1)  # a Wednesday


def make_calendar(tz=0.0, events=()):
    return Calendar(epoch=EPOCH, tz_hours=tz, events=tuple(events))


class TestCalendarTime:
    def test_rejects_non_midnight_epoch(self):
        with pytest.raises(ValueError, match="midnight"):
            Calendar(epoch=datetime(2020, 1, 1, 5))

    def test_local_day_utc(self):
        cal = make_calendar()
        assert cal.local_day(0.0) == 0
        assert cal.local_day(86_399.0) == 0
        assert cal.local_day(86_400.0) == 1

    def test_local_day_positive_tz(self):
        cal = make_calendar(tz=8.0)
        # 2020-01-01 20:00 UTC is already Jan 2 in UTC+8
        assert cal.local_day(20 * 3600.0) == 1

    def test_local_day_negative_tz(self):
        cal = make_calendar(tz=-8.0)
        # 2020-01-01 00:00 UTC is still Dec 31 in UTC-8
        assert cal.local_day(0.0) == -1

    def test_weekday_cycle(self):
        cal = make_calendar()
        assert cal.weekday(0) == 2  # 2020-01-01 was a Wednesday
        assert cal.weekday(3) == 5  # Saturday
        assert cal.is_weekend(3)
        assert cal.is_weekend(4)
        assert not cal.is_weekend(5)

    def test_date_day_roundtrip(self):
        cal = make_calendar()
        assert cal.day_of_date(date(2020, 3, 15)) == 74
        assert cal.date_of_day(74) == date(2020, 3, 15)

    def test_seconds_of_date_respects_tz(self):
        cal = make_calendar(tz=8.0)
        # local midnight of Jan 2 is 16:00 UTC Jan 1
        assert cal.seconds_of_date(date(2020, 1, 2)) == pytest.approx(16 * 3600.0)


class TestWorkFromHome:
    def test_no_effect_before_start(self):
        wfh = WorkFromHome(start=date(2020, 3, 15))
        assert wfh.activity_factor(date(2020, 3, 14), Channel.WORK) == 1.0

    def test_full_effect_after_ramp(self):
        wfh = WorkFromHome(start=date(2020, 3, 15), work_factor=0.1, ramp_days=4)
        assert wfh.activity_factor(date(2020, 3, 25), Channel.WORK) == pytest.approx(0.1)

    def test_ramp_is_monotone(self):
        wfh = WorkFromHome(start=date(2020, 3, 15), ramp_days=4)
        days = [date(2020, 3, 15 + k) for k in range(5)]
        factors = [wfh.activity_factor(d, Channel.WORK) for d in days]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_home_channel_increases(self):
        wfh = WorkFromHome(start=date(2020, 3, 15), home_factor=1.2)
        assert wfh.activity_factor(date(2020, 4, 1), Channel.HOME) > 1.0

    def test_end_date_restores(self):
        wfh = WorkFromHome(start=date(2020, 2, 1), end=date(2020, 2, 28))
        assert wfh.activity_factor(date(2020, 3, 5), Channel.WORK) == 1.0


class TestHolidayAndCurfew:
    def test_holiday_marks_days(self):
        h = Holiday(first=date(2020, 1, 24), days=8)
        assert h.is_holiday(date(2020, 1, 24))
        assert h.is_holiday(date(2020, 1, 31))
        assert not h.is_holiday(date(2020, 2, 1))

    def test_holiday_suppresses_pool(self):
        h = Holiday(first=date(2020, 1, 24), days=2, pool_factor=0.6)
        assert h.activity_factor(date(2020, 1, 24), Channel.POOL) == 0.6
        assert h.activity_factor(date(2020, 1, 26), Channel.POOL) == 1.0

    def test_calendar_workday_respects_holiday(self):
        cal = make_calendar(events=[Holiday(first=date(2020, 1, 20))])  # a Monday
        assert not cal.is_workday(19)
        assert cal.is_workday(20)

    def test_curfew_suppresses_all_channels(self):
        c = Curfew(first=date(2020, 3, 22), days=1, work_factor=0.1, pool_factor=0.5)
        assert c.activity_factor(date(2020, 3, 22), Channel.WORK) == 0.1
        assert c.activity_factor(date(2020, 3, 22), Channel.POOL) == 0.5
        assert c.activity_factor(date(2020, 3, 23), Channel.WORK) == 1.0

    def test_factors_multiply_across_events(self):
        cal = make_calendar(
            events=[
                WorkFromHome(start=date(2020, 1, 1), pool_factor=0.5, ramp_days=0),
                Curfew(first=date(2020, 2, 1), days=1, pool_factor=0.5),
            ]
        )
        day = cal.day_of_date(date(2020, 2, 1))
        assert cal.activity_factor(day, Channel.POOL) == pytest.approx(0.25)


class TestTruthTransforms:
    def setup_method(self):
        self.rng = np.random.default_rng(0)
        self.cols = np.arange(100) * 660.0
        self.truth = np.ones((8, 100), dtype=bool)

    def test_outage_zeroes_interval(self):
        ev = Outage(start_s=660.0 * 10, end_s=660.0 * 20)
        out = ev.transform(self.truth, self.cols, self.rng)
        assert not out[:, 10:20].any()
        assert out[:, :10].all() and out[:, 20:].all()

    def test_outage_does_not_mutate_input(self):
        ev = Outage(start_s=0.0, end_s=660.0 * 5)
        ev.transform(self.truth, self.cols, self.rng)
        assert self.truth.all()

    def test_renumbering_gap_then_shift(self):
        truth = np.zeros((8, 100), dtype=bool)
        truth[0, :] = True  # only address 0 active
        ev = Renumbering(time_s=660.0 * 50, gap_s=660.0 * 10, shift=3)
        out = ev.transform(truth, self.cols, self.rng)
        assert out[0, :50].all()
        assert not out[:, 50:60].any()  # the gap
        assert out[3, 60:].all()  # shifted identity
        assert not out[0, 60:].any()

    def test_service_window_restricts_activity(self):
        ev = ServiceWindow(start_s=660.0 * 30, end_s=660.0 * 70)
        out = ev.transform(self.truth, self.cols, self.rng)
        assert not out[:, :30].any()
        assert out[:, 30:70].all()
        assert not out[:, 70:].any()

    def test_migration_leaves_residual_only(self):
        ev = Migration(time_s=660.0 * 50, residual_fraction=0.0)
        out = ev.transform(self.truth, self.cols, self.rng)
        assert out[:, :50].all()
        assert not out[:, 50:].any()

    def test_calendar_applies_all_transforms(self):
        cal = make_calendar(
            events=[Outage(start_s=0.0, end_s=660.0), ServiceWindow(end_s=660.0 * 90)]
        )
        out = cal.apply_transforms(self.truth, self.cols, self.rng)
        assert not out[:, 0].any()
        assert not out[:, 95].any()
        assert out[:, 50].all()
