"""Tests for the bench trajectory, cProfile wrapper, and sink hardening."""

from __future__ import annotations

import json
import re
import warnings
from pathlib import Path

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    append_record,
    check_regression,
    load_history,
    machine_fingerprint,
    merge_latest_section,
)
from repro.obs.profiling import collapsed_stacks, profile_call, top_table, write_profile


# ---------------------------------------------------------------------------
# bench history document
# ---------------------------------------------------------------------------
def _record(machine: dict, sections: dict, t: float = 0.0) -> dict:
    return {"t_unix": t, "git": "test", "machine": machine, "sections": sections}


class TestBenchHistory:
    def test_load_missing_file_is_empty_document(self, tmp_path):
        doc = load_history(tmp_path / "nope.json")
        assert doc == {"schema": BENCH_SCHEMA, "history": []}

    def test_legacy_flat_snapshot_migrates_in_place(self, tmp_path):
        legacy = {
            "kernels": {"cusum": {"vectorized_s": 0.1, "reference_s": 1.0, "speedup": 10.0}},
            "batched": {"trend": {"batched_s": 0.2, "scalar_s": 1.0, "speedup": 5.0}},
        }
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(legacy))
        doc = load_history(path)
        assert doc["schema"] == BENCH_SCHEMA
        # old latest sections survive; no fabricated history records
        assert doc["kernels"] == legacy["kernels"]
        assert doc["batched"] == legacy["batched"]
        assert doc["history"] == []

    def test_append_record_updates_latest_and_history(self, tmp_path):
        path = tmp_path / "bench.json"
        sections = {"engine": {"scale": 8, "wall_s": 0.5, "blocks_per_sec": 16.0}}
        append_record(path, sections)
        doc = json.loads(path.read_text())
        assert doc["engine"] == sections["engine"]
        assert len(doc["history"]) == 1
        record = doc["history"][0]
        assert record["sections"] == sections
        assert record["machine"]["id"] == machine_fingerprint()["id"]
        assert record["t_unix"] > 0

        append_record(path, sections)
        assert len(load_history(path)["history"]) == 2

    def test_merge_latest_section_leaves_history_alone(self, tmp_path):
        path = tmp_path / "bench.json"
        append_record(path, {"engine": {"scale": 8, "blocks_per_sec": 16.0}})
        merge_latest_section(path, "kernels", {"cusum": {"vectorized_s": 0.1}})
        doc = load_history(path)
        assert doc["kernels"] == {"cusum": {"vectorized_s": 0.1}}
        assert len(doc["history"]) == 1  # artifact refresh appends nothing

    def test_machine_fingerprint_is_stable(self):
        a, b = machine_fingerprint(), machine_fingerprint()
        assert a == b
        assert re.fullmatch(r"[0-9a-f]{12}", a["id"])


class TestRegressionGate:
    MACHINE = {"id": "aaaaaaaaaaaa"}

    def _doc(self, *records):
        return {"schema": BENCH_SCHEMA, "history": list(records)}

    def test_no_history_is_a_note_not_a_failure(self):
        regs, notes = check_regression(self._doc())
        assert regs == [] and notes

    def test_injected_50pct_kernel_slowdown_is_detected(self):
        baseline = {"kernels": {"cusum": {"vectorized_s": 0.100, "speedup": 10.0}}}
        slowed = {"kernels": {"cusum": {"vectorized_s": 0.150, "speedup": 6.7}}}
        doc = self._doc(
            _record(self.MACHINE, baseline, 1.0),
            _record(self.MACHINE, baseline, 2.0),
            _record(self.MACHINE, slowed, 3.0),
        )
        regs, _ = check_regression(doc, threshold_pct=25.0)
        assert len(regs) == 1
        assert "kernels/cusum/vectorized_s" in regs[0]
        assert "+50%" in regs[0]

    def test_throughput_drop_is_detected(self):
        fast = {"engine": {"scale": 200, "blocks_per_sec": 100.0}}
        slow = {"engine": {"scale": 200, "blocks_per_sec": 40.0}}
        doc = self._doc(
            _record(self.MACHINE, fast, 1.0), _record(self.MACHINE, slow, 2.0)
        )
        regs, _ = check_regression(doc, threshold_pct=25.0)
        assert len(regs) == 1
        assert "engine/blocks_per_sec" in regs[0]

    def test_within_threshold_noise_passes(self):
        a = {"kernels": {"cusum": {"vectorized_s": 0.100}}}
        b = {"kernels": {"cusum": {"vectorized_s": 0.110}}}  # 10% < 25%
        doc = self._doc(_record(self.MACHINE, a, 1.0), _record(self.MACHINE, b, 2.0))
        regs, _ = check_regression(doc, threshold_pct=25.0)
        assert regs == []

    def test_other_machines_records_are_not_a_baseline(self):
        fast = {"kernels": {"cusum": {"vectorized_s": 0.010}}}
        slow = {"kernels": {"cusum": {"vectorized_s": 1.000}}}
        doc = self._doc(
            _record({"id": "bbbbbbbbbbbb"}, fast, 1.0),
            _record(self.MACHINE, slow, 2.0),
        )
        regs, notes = check_regression(doc, threshold_pct=25.0)
        assert regs == []
        assert any("no comparable" in note for note in notes)

    def test_different_engine_scale_is_not_comparable(self):
        big = {"engine": {"scale": 200, "blocks_per_sec": 100.0}}
        small = {"engine": {"scale": 16, "blocks_per_sec": 30.0}}
        doc = self._doc(
            _record(self.MACHINE, big, 1.0), _record(self.MACHINE, small, 2.0)
        )
        regs, notes = check_regression(doc, threshold_pct=25.0)
        assert regs == []
        assert any("no comparable" in note for note in notes)

    def test_median_baseline_shrugs_off_one_noisy_run(self):
        good = {"kernels": {"cusum": {"vectorized_s": 0.100}}}
        noisy = {"kernels": {"cusum": {"vectorized_s": 0.500}}}
        doc = self._doc(
            _record(self.MACHINE, good, 1.0),
            _record(self.MACHINE, noisy, 2.0),
            _record(self.MACHINE, good, 3.0),
            _record(self.MACHINE, good, 4.0),
        )
        regs, _ = check_regression(doc, threshold_pct=25.0)
        assert regs == []  # median of {0.1, 0.5, 0.1} is 0.1


class TestBenchCli:
    def test_bench_records_and_check_gates(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SCALE", "8")
        out = tmp_path / "bench.json"
        assert cli_main(["bench", "--sections", "engine", "--output", str(out)]) == 0
        doc = load_history(out)
        assert len(doc["history"]) == 1
        assert doc["engine"]["scale"] == 8

        # a second run gives --check a baseline; a fresh run of the same
        # code on the same machine must pass
        assert cli_main(["bench", "--sections", "engine", "--output", str(out)]) == 0
        assert cli_main(["bench", "--check", "--output", str(out)]) == 0

        # inject a 50% throughput collapse into the newest record
        doc = load_history(out)
        doc["history"][-1]["sections"]["engine"]["blocks_per_sec"] *= 0.5
        out.write_text(json.dumps(doc))
        assert cli_main(["bench", "--check", "--output", str(out)]) == 1
        assert (
            cli_main(["bench", "--check", "--warn-only", "--output", str(out)]) == 0
        )
        assert "REGRESSION" in capsys.readouterr().out

    def test_unknown_section_is_an_error(self, tmp_path):
        from repro.bench import run_sections

        with pytest.raises(ValueError, match="unknown bench section"):
            run_sections(["definitely-not-a-section"])


# ---------------------------------------------------------------------------
# cProfile wrapper
# ---------------------------------------------------------------------------
def _workload():
    total = 0
    for i in range(50_000):
        total += i * i
    return total


class TestProfiling:
    def test_profile_call_returns_result_and_stats(self):
        result, stats = profile_call(_workload)
        assert result == _workload()
        assert stats.stats  # type: ignore[attr-defined]

    def test_top_table_shape_and_no_absolute_paths(self):
        _, stats = profile_call(_workload)
        table = top_table(stats, n=10)
        lines = table.splitlines()
        assert lines[0].split() == ["ncalls", "tottime", "cumtime", "function"]
        assert any("_workload" in line for line in lines)
        assert "/" not in table  # labels are basename:name, machine-neutral

    def test_collapsed_stacks_format_and_determinism(self):
        _, stats = profile_call(_workload)
        first = collapsed_stacks(stats)
        second = collapsed_stacks(stats)
        assert first == second  # same stats, identical rendering
        assert first == sorted(first)
        for line in first:
            stack, count = line.rsplit(" ", 1)
            assert stack
            assert int(count) > 0

    def test_write_profile_artifacts(self, tmp_path):
        _, stats = profile_call(_workload)
        out = write_profile(stats, tmp_path / "prof")
        assert (out / "profile.pstats").is_file()
        assert (out / "profile.collapsed").is_file()

    def test_profile_cli_runs_an_experiment(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main as cli_main

        monkeypatch.setenv("REPRO_SCALE", "16")
        monkeypatch.chdir(tmp_path)
        assert cli_main(["profile", "fig3", "-o", str(tmp_path / "prof")]) == 0
        out = capsys.readouterr().out
        assert "cumtime" in out
        assert (tmp_path / "prof" / "profile.collapsed").is_file()


# ---------------------------------------------------------------------------
# sink hardening (satellite 1)
# ---------------------------------------------------------------------------
class TestSinkHardening:
    def _write(self, directory):
        import repro.obs.sinks as sinks
        from repro.obs.trace import Tracer

        tracer = Tracer()
        with tracer.span("run"):
            pass
        return sinks.write_run(directory, tracer=tracer, runs=[], label="t")

    def test_unwritable_directory_warns_once(self, tmp_path, monkeypatch):
        import repro.obs.sinks as sinks

        monkeypatch.setattr(sinks, "_SINK_WARNED", False)
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the trace dir should be")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._write(blocker / "trace")  # mkdir fails: parent is a file
            self._write(blocker / "trace")  # second failure stays silent
        sink_warnings = [w for w in caught if "trace sink" in str(w.message)]
        assert len(sink_warnings) == 1

    def test_manifest_publish_leaves_no_tmp_droppings(self, tmp_path):
        out = self._write(tmp_path / "trace")
        assert (out / "run.json").is_file()
        assert not list(Path(out).glob("*.tmp"))
        json.loads((out / "run.json").read_text())  # valid, complete JSON

    def test_healthy_write_does_not_warn(self, tmp_path, monkeypatch):
        import repro.obs.sinks as sinks

        monkeypatch.setattr(sinks, "_SINK_WARNED", False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            self._write(tmp_path / "trace")
        assert not [w for w in caught if "trace sink" in str(w.message)]
