"""Unit tests for the world model and scenarios."""

from __future__ import annotations

from datetime import date

import numpy as np
import pytest

from repro.net.events import Curfew, Holiday, ServiceWindow, WorkFromHome
from repro.net.world import (
    DIURNAL_KINDS,
    PROFILE_MIXES,
    WorldModel,
    scenario_baseline2023,
    scenario_covid2020,
)


class TestScenarios:
    def test_covid_scenario_dates(self):
        sc = scenario_covid2020()
        assert sc.epoch.year == 2019 and sc.epoch.month == 10
        # the paper's explicitly out-of-quarter lockdowns
        assert sc.wfh_dates["Russia"] == date(2020, 3, 30)
        assert sc.wfh_dates["Singapore"] == date(2020, 4, 7)
        assert sc.wfh_dates["Slovenia"] == date(2020, 3, 16)

    def test_covid_scenario_has_city_events(self):
        sc = scenario_covid2020()
        assert "Wuhan" in sc.city_events
        assert "New Delhi" in sc.city_events
        delhi = sc.city_events["New Delhi"]
        assert any("riot" in getattr(e, "name", "").lower() for e in delhi)

    def test_control_scenario_has_no_wfh(self):
        sc = scenario_baseline2023()
        assert not sc.wfh_dates
        assert "China" in sc.holidays

    def test_country_events_respect_compliance(self):
        sc = scenario_covid2020()
        from repro.net.geo import city_by_name

        city = city_by_name("Los Angeles")
        draws = [
            any(
                isinstance(e, WorkFromHome)
                for e in sc.country_events(city, np.random.default_rng(k))
            )
            for k in range(200)
        ]
        rate = sum(draws) / len(draws)
        assert 0.7 < rate < 0.95  # compliance is 0.85


class TestWorldModel:
    @pytest.fixture(scope="class")
    def world(self):
        return WorldModel(scenario_covid2020(), n_blocks=120, seed=11)

    def test_deterministic(self, world):
        clone = WorldModel(scenario_covid2020(), n_blocks=120, seed=11)
        assert [s.kind for s in clone.blocks] == [s.kind for s in world.blocks]
        assert [s.seed for s in clone.blocks] == [s.seed for s in world.blocks]

    def test_seed_changes_population(self, world):
        other = WorldModel(scenario_covid2020(), n_blocks=120, seed=12)
        assert [s.kind for s in other.blocks] != [s.kind for s in world.blocks]

    def test_block_count(self, world):
        assert len(world.blocks) == 120

    def test_unresponsive_fraction_about_right(self, world):
        frac = sum(not s.responsive_by_design for s in world.blocks) / 120
        assert 0.35 < frac < 0.70

    def test_geolocation_near_city(self, world):
        for spec in world.blocks[:30]:
            assert abs(spec.geo.lat - spec.city.lat) < 1.0
            assert abs(spec.geo.lon - spec.city.lon) < 1.0
            assert spec.geo.country == spec.city.country

    def test_truth_determinism(self, world):
        spec = next(s for s in world.blocks if s.responsive_by_design)
        a = world.truth(spec, 3 * 86_400.0)
        b = world.truth(spec, 3 * 86_400.0)
        assert np.array_equal(a.active, b.active)

    def test_truth_window_start(self, world):
        spec = next(s for s in world.blocks if s.responsive_by_design)
        full = world.truth(spec, 4 * 86_400.0)
        windowed = world.truth(spec, 2 * 86_400.0, start_s=2 * 86_400.0)
        # the first column is the round *covering* the window start
        assert windowed.col_times[0] >= 2 * 86_400.0 - 660.0
        offset = int(2 * 86_400.0 // 660.0)
        assert np.array_equal(windowed.active, full.active[:, offset:])

    def test_diurnal_boost_increases_diurnal_kinds(self):
        base = WorldModel(scenario_covid2020(), n_blocks=400, seed=13)
        boosted = WorldModel(
            scenario_covid2020(), n_blocks=400, seed=13, diurnal_boost=4.0
        )
        def count(world):
            return sum(s.kind in DIURNAL_KINDS for s in world.blocks)
        assert count(boosted) > count(base)

    def test_broken_observers_get_heavy_loss(self, world):
        spec = world.blocks[0]
        assert world.loss_model(spec, "c").max_probability() >= 0.4
        assert world.loss_model(spec, "e").max_probability() < 0.1

    def test_congested_path_applies_to_flagged_blocks(self, world):
        flagged = [s for s in world.blocks if "w" in s.lossy_observers]
        if flagged:
            model = world.loss_model(flagged[0], "w")
            assert model.max_probability() > 0.1
            assert flagged[0].city.country == "China"

    def test_china_blocks_have_spring_festival(self, world):
        chinese = [s for s in world.blocks if s.city.country == "China"]
        assert chinese
        for spec in chinese:
            assert any(isinstance(e, (Holiday, Curfew)) for e in spec.events)

    def test_service_churn_present(self, world):
        diurnal = [s for s in world.blocks if s.kind in DIURNAL_KINDS]
        churned = [
            s for s in diurnal if any(isinstance(e, ServiceWindow) for e in s.events)
        ]
        # the scenario's churn rate is 0.30; allow wide slack at n~small
        assert 0 <= len(churned) <= len(diurnal)
        if len(diurnal) >= 20:
            assert churned  # statistically near-certain


class TestProfileMixes:
    def test_mixes_sum_to_about_one(self):
        for name, mix in PROFILE_MIXES.items():
            assert sum(mix.values()) == pytest.approx(1.0, abs=0.05), name

    def test_asia_more_diurnal_than_nat_heavy(self):
        asia = sum(PROFILE_MIXES["asia_dynamic"][k] for k in DIURNAL_KINDS)
        west = sum(PROFILE_MIXES["nat_heavy"][k] for k in DIURNAL_KINDS)
        assert asia > 2 * west

    def test_university_is_workplace_heavy(self):
        assert PROFILE_MIXES["university"]["workplace"] > 0.15
